//! Bookshelf interoperability: write a placed design to the IBM-PLACE file
//! format and read it back.
//!
//! Real IBM-PLACE benchmarks drop into the same path: point
//! [`tvp_bookshelf::parse_aux`] at a downloaded `.aux` and assemble the
//! files with [`tvp_bookshelf::Design::assemble`].
//!
//! ```sh
//! cargo run --release --example bookshelf_roundtrip [outdir]
//! ```

use std::fs;
use std::path::PathBuf;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_bookshelf::{
    parse_nets, parse_nodes, parse_pl, parse_wts, write_aux, write_nets, write_nodes, write_pl,
    write_wts, AuxFile, Design, DesignBuilderOptions,
};
use tvp_core::{Placer, PlacerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outdir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/bookshelf_demo".to_string()),
    );
    fs::create_dir_all(&outdir)?;

    // Generate and place a small design.
    let netlist = generate(&SynthConfig::named("demo", 600, 3.0e-9))?;
    let result = Placer::new(PlacerConfig::new(2)).place(&netlist)?;
    let positions: Vec<(f64, f64, u32)> = (0..netlist.num_cells())
        .map(|i| {
            let c = tvp_netlist::CellId::new(i);
            let (x, y, l) = result.placement.position(c);
            (x, y, l as u32)
        })
        .collect();
    let design = Design {
        name: "demo".into(),
        netlist,
        positions,
        rows: Vec::new(),
    };

    // Export to Bookshelf text.
    let opts = DesignBuilderOptions::default();
    let (nodes, nets, wts, pl) = design.to_files(opts);
    let pl = pl.expect("positions were provided");
    fs::write(outdir.join("demo.nodes"), write_nodes(&nodes))?;
    fs::write(outdir.join("demo.nets"), write_nets(&nets))?;
    fs::write(outdir.join("demo.wts"), write_wts(&wts))?;
    fs::write(outdir.join("demo.pl"), write_pl(&pl))?;
    let aux = AuxFile {
        style: "RowBasedPlacement".into(),
        files: vec![
            "demo.nodes".into(),
            "demo.nets".into(),
            "demo.wts".into(),
            "demo.pl".into(),
        ],
    };
    fs::write(outdir.join("demo.aux"), write_aux(&aux))?;
    println!("wrote {}", outdir.display());

    // Read everything back and verify the round trip.
    let nodes2 = parse_nodes(&fs::read_to_string(outdir.join("demo.nodes"))?)?;
    let nets2 = parse_nets(&fs::read_to_string(outdir.join("demo.nets"))?)?;
    let wts2 = parse_wts(&fs::read_to_string(outdir.join("demo.wts"))?)?;
    let pl2 = parse_pl(&fs::read_to_string(outdir.join("demo.pl"))?)?;
    let design2 = Design::assemble("demo", &nodes2, &nets2, Some(&wts2), Some(&pl2), None, opts)?;

    assert_eq!(design.netlist.num_cells(), design2.netlist.num_cells());
    assert_eq!(design.netlist.num_nets(), design2.netlist.num_nets());
    assert_eq!(design.netlist.num_pins(), design2.netlist.num_pins());
    println!(
        "round trip ok: {} cells, {} nets, {} pins",
        design2.netlist.num_cells(),
        design2.netlist.num_nets(),
        design2.netlist.num_pins()
    );
    Ok(())
}
