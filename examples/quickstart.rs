//! Quickstart: generate a benchmark, place it on a 4-layer 3D IC, and
//! print the quality metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic circuit with IBM-PLACE-like statistics: 2,000
    // cells, 10,000 µm² of cell area.
    let netlist = generate(&SynthConfig::named("quickstart", 2_000, 1.0e-8))?;
    println!("netlist: {}", netlist.stats());

    // Table 2 defaults: 4 layers, α_ILV = 10 µm, thermal objective off.
    let config = PlacerConfig::new(4);
    let result = Placer::new(config).place(&netlist)?;

    println!(
        "chip:    {:.0} µm × {:.0} µm × {} layers, {} rows/layer",
        result.chip.width * 1e6,
        result.chip.depth * 1e6,
        result.chip.num_layers,
        result.chip.num_rows,
    );
    println!("quality: {}", result.metrics);
    println!(
        "runtime: global {:.0?} + coarse {:.0?} + detail {:.0?} = {:.0?}",
        result.timings.global, result.timings.coarse, result.timings.detail, result.timings.total,
    );

    // The placement is fully legal: every cell on a row, no overlaps.
    let mut per_layer = vec![0usize; result.chip.num_layers];
    for (_, _, _, layer) in result.placement.iter() {
        per_layer[layer as usize] += 1;
    }
    println!("cells per layer: {per_layer:?}");
    Ok(())
}
