//! Thermal-aware placement demonstration (the Fig. 9 workflow).
//!
//! Places the same circuit with the thermal objective off and on, then
//! compares temperatures, wirelength, via count, and the vertical power
//! distribution. With `α_TEMP > 0` the placer weights hot nets up and adds
//! thermal-resistance-reduction nets, pulling high-power cells toward the
//! heat sink.
//!
//! ```sh
//! cargo run --release --example thermal_aware [cells]
//! ```

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{PlacementResult, Placer, PlacerConfig};
use tvp_netlist::Netlist;

fn layer_power_profile(netlist: &Netlist, result: &PlacementResult) -> Vec<f64> {
    // Approximate per-layer power shares by counting driver cells per
    // layer, weighted by their driven net fanout (a cheap proxy that does
    // not need the internal power model).
    let mut shares = vec![0.0; result.chip.num_layers];
    for (cell, _) in netlist.iter_cells() {
        let drive: usize = netlist
            .driven_nets(cell)
            .map(|e| netlist.net(e).degree())
            .sum();
        shares[result.placement.layer(cell) as usize] += drive as f64;
    }
    let total: f64 = shares.iter().sum();
    shares.iter().map(|s| s / total * 100.0).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2_000);
    let netlist = generate(&SynthConfig::named(
        "thermal",
        cells,
        cells as f64 * 5.0e-12,
    ))?;

    let baseline = Placer::new(PlacerConfig::new(4)).place(&netlist)?;
    let thermal = Placer::new(PlacerConfig::new(4).with_alpha_temp(1.0e-4)).place(&netlist)?;

    println!(
        "{:>22}  {:>14}  {:>14}",
        "", "alpha_TEMP = 0", "alpha_TEMP = 1e-4"
    );
    let rows: [(&str, f64, f64); 5] = [
        (
            "wirelength (m)",
            baseline.metrics.wirelength,
            thermal.metrics.wirelength,
        ),
        (
            "interlayer vias",
            baseline.metrics.ilv_count,
            thermal.metrics.ilv_count,
        ),
        (
            "total power (W)",
            baseline.metrics.total_power,
            thermal.metrics.total_power,
        ),
        (
            "avg temperature (C)",
            baseline.metrics.avg_temperature,
            thermal.metrics.avg_temperature,
        ),
        (
            "max temperature (C)",
            baseline.metrics.max_temperature,
            thermal.metrics.max_temperature,
        ),
    ];
    for (name, base, therm) in rows {
        let change = (therm - base) / base * 100.0;
        println!("{name:>22}  {base:>14.5e}  {therm:>14.5e}  ({change:+.1}%)");
    }

    println!();
    println!("drive-strength share per layer (layer 0 = heat sink side):");
    println!(
        "  baseline: {:?}",
        round(layer_power_profile(&netlist, &baseline))
    );
    println!(
        "  thermal:  {:?}",
        round(layer_power_profile(&netlist, &thermal))
    );
    println!();
    println!("(thermal placement concentrates driving power near the sink)");
    Ok(())
}

fn round(v: Vec<f64>) -> Vec<f64> {
    v.into_iter().map(|x| (x * 10.0).round() / 10.0).collect()
}
