//! Stage-engine tour: observe a run's structured events, then stop a run
//! early with a cancellation token and still get a legal placement.
//!
//! ```sh
//! cargo run --release --example stage_events
//! ```

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{
    CancelToken, PlaceOptions, Placer, PlacerConfig, PlacerEvent, PlacerObserver, RecordingObserver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generate(&SynthConfig::named("events", 1_000, 5.0e-9))?;
    let mut config = PlacerConfig::new(4);
    config.post_opt_rounds = 1;
    let placer = Placer::new(config);

    // --- 1. Observe: record every event of a full run.
    let mut recorder = RecordingObserver::new();
    let result = placer.place_with_options(
        &netlist,
        &[],
        PlaceOptions {
            observer: Some(&mut recorder),
            ..PlaceOptions::default()
        },
    )?;
    println!("full run: {} events, stages:", recorder.events.len());
    for event in &recorder.events {
        if let PlacerEvent::StageEnd {
            stage,
            seconds,
            objective,
            ..
        } = event
        {
            println!("  {stage:<10} {seconds:>7.3}s  objective {objective:.4e}");
        }
    }
    println!(
        "  per-round: {:?}",
        result
            .timings
            .rounds
            .iter()
            .map(|r| (r.coarse, r.detail))
            .collect::<Vec<_>>()
    );

    // --- 2. Cancel: stop after global placement; the engine legalizes
    // what it has and returns a legal (if unrefined) placement.
    struct CancelAfterGlobal(CancelToken);
    impl PlacerObserver for CancelAfterGlobal {
        fn event(&mut self, event: &PlacerEvent) {
            if let PlacerEvent::StageEnd { stage, .. } = event {
                if stage == "global" {
                    self.0.cancel();
                }
            }
        }
    }
    let token = CancelToken::new();
    let mut canceller = CancelAfterGlobal(token.clone());
    let stopped = placer.place_with_options(
        &netlist,
        &[],
        PlaceOptions {
            observer: Some(&mut canceller),
            cancel: Some(token),
            ..PlaceOptions::default()
        },
    )?;
    assert!(stopped.stopped_early);
    println!(
        "cancelled run: stopped_early = {}, still legal, wirelength {:.3e} m \
         (full run: {:.3e} m)",
        stopped.stopped_early, stopped.metrics.wirelength, result.metrics.wirelength
    );
    Ok(())
}
