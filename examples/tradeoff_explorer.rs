//! Wirelength ↔ interlayer-via tradeoff exploration (the Fig. 3 workflow).
//!
//! Sweeps the interlayer via coefficient `α_ILV` over the paper's range and
//! prints one tradeoff point per value: as vias get more expensive the
//! placer uses fewer of them at the cost of longer wires. A designer picks
//! the point matching their process's via-density limit.
//!
//! ```sh
//! cargo run --release --example tradeoff_explorer [cells]
//! ```

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cells: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1_500);
    let netlist = generate(&SynthConfig::named(
        "tradeoff",
        cells,
        cells as f64 * 5.0e-12,
    ))?;
    println!(
        "circuit: {} cells, {} nets",
        netlist.num_cells(),
        netlist.num_nets()
    );
    println!();
    println!(
        "{:>10}  {:>12}  {:>10}  {:>16}",
        "alpha_ILV", "WL (m)", "ILVs", "ILV/m^2/layer"
    );

    // Paper range: 5e-9 … 5.2e-3, one point per decade-ish step.
    let mut alpha = 5.0e-9;
    while alpha < 6.0e-3 {
        let config = PlacerConfig::new(4).with_alpha_ilv(alpha);
        let result = Placer::new(config).place(&netlist)?;
        println!(
            "{:>10.1e}  {:>12.5e}  {:>10.0}  {:>16.3e}",
            alpha,
            result.metrics.wirelength,
            result.metrics.ilv_count,
            result.metrics.ilv_density_per_interlayer,
        );
        alpha *= 8.0;
    }
    println!();
    println!("(vias get scarcer and wires longer as alpha_ILV grows)");
    Ok(())
}
