//! The wirelength / interlayer-via tradeoff behaviour the paper's Figs 3–5
//! rest on, verified at test scale.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};

#[test]
fn raising_alpha_ilv_cuts_vias() {
    let netlist = generate(&SynthConfig::named("sweep", 400, 2.0e-9)).unwrap();
    let mut ilvs = Vec::new();
    for alpha in [5.0e-8, 5.0e-6, 5.0e-4] {
        let r = Placer::new(PlacerConfig::new(4).with_alpha_ilv(alpha))
            .place(&netlist)
            .unwrap();
        ilvs.push(r.metrics.ilv_count);
    }
    assert!(
        ilvs[2] < ilvs[0] * 0.7,
        "expensive vias must reduce the count substantially: {ilvs:?}"
    );
    assert!(
        ilvs[1] <= ilvs[0] * 1.05,
        "mid alpha should not exceed cheap-via count: {ilvs:?}"
    );
}

#[test]
fn via_starved_placement_pays_wirelength() {
    let netlist = generate(&SynthConfig::named("pay", 400, 2.0e-9)).unwrap();
    let cheap = Placer::new(PlacerConfig::new(4).with_alpha_ilv(5.0e-8))
        .place(&netlist)
        .unwrap();
    let dear = Placer::new(PlacerConfig::new(4).with_alpha_ilv(1.0e-3))
        .place(&netlist)
        .unwrap();
    // Fewer vias → less use of the third dimension → longer wires.
    assert!(dear.metrics.ilv_count < cheap.metrics.ilv_count);
    assert!(
        dear.metrics.wirelength > cheap.metrics.wirelength * 0.95,
        "via starvation should not shorten wires: {} vs {}",
        dear.metrics.wirelength,
        cheap.metrics.wirelength
    );
}

#[test]
fn more_layers_shorten_wirelength() {
    // Fig. 5: tradeoff curves shift toward shorter wirelength as layers
    // are added (at fixed α_ILV).
    let netlist = generate(&SynthConfig::named("layers", 500, 2.5e-9)).unwrap();
    let wl_of = |layers: usize| {
        Placer::new(PlacerConfig::new(layers))
            .place(&netlist)
            .unwrap()
            .metrics
            .wirelength
    };
    let wl1 = wl_of(1);
    let wl4 = wl_of(4);
    assert!(
        wl4 < wl1 * 0.85,
        "4 layers should clearly beat 1: {wl4} vs {wl1}"
    );
}

#[test]
fn objective_tracks_the_knob() {
    // The placer minimizes WL + α_ILV·ILV; a placement produced for one α
    // must score at least as well *under that α* as placements produced
    // for very different α values.
    let netlist = generate(&SynthConfig::named("score", 300, 1.5e-9)).unwrap();
    let alphas = [5.0e-8, 1.0e-5, 1.0e-3];
    let results: Vec<_> = alphas
        .iter()
        .map(|&a| {
            Placer::new(PlacerConfig::new(4).with_alpha_ilv(a))
                .place(&netlist)
                .unwrap()
        })
        .collect();
    for (i, &alpha) in alphas.iter().enumerate() {
        let own = results[i].metrics.wirelength + alpha * results[i].metrics.ilv_count;
        for (j, other) in results.iter().enumerate() {
            if i == j {
                continue;
            }
            let theirs = other.metrics.wirelength + alpha * other.metrics.ilv_count;
            assert!(
                own <= theirs * 1.15,
                "placement tuned for alpha={alpha} scores {own}, but the one tuned for {} scores {theirs}",
                alphas[j]
            );
        }
    }
}

#[test]
fn ilv_density_definition_matches_figure_axis() {
    let netlist = generate(&SynthConfig::named("axis", 200, 1.0e-9)).unwrap();
    let r = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
    let m = &r.metrics;
    let expected = m.ilv_count / 3.0 / r.chip.layer_area();
    assert!((m.ilv_density_per_interlayer - expected).abs() <= 1e-6 * expected);
}
