//! Thermal placement behaviour end-to-end: the mechanisms behind the
//! paper's Figs 6–9 at test scale.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{PlacementResult, Placer, PlacerConfig};
use tvp_netlist::Netlist;

fn place(netlist: &Netlist, alpha_temp: f64) -> PlacementResult {
    Placer::new(PlacerConfig::new(4).with_alpha_temp(alpha_temp))
        .place(netlist)
        .unwrap()
}

#[test]
fn thermal_placement_reduces_average_temperature() {
    let netlist = generate(&SynthConfig::named("therm", 600, 3.0e-9)).unwrap();
    let base = place(&netlist, 0.0);
    let thermal = place(&netlist, 1.0e-5);
    assert!(
        thermal.metrics.avg_temperature < base.metrics.avg_temperature,
        "thermal placement must cool: {} vs {}",
        thermal.metrics.avg_temperature,
        base.metrics.avg_temperature
    );
    // The paper's Fig 9 regime: modest wirelength cost.
    assert!(
        thermal.metrics.wirelength < base.metrics.wirelength * 1.15,
        "wirelength cost should be modest: {} vs {}",
        thermal.metrics.wirelength,
        base.metrics.wirelength
    );
}

#[test]
fn thermal_placement_moves_power_toward_the_sink() {
    let netlist = generate(&SynthConfig::named("sink", 600, 3.0e-9)).unwrap();
    let base = place(&netlist, 0.0);
    let thermal = place(&netlist, 1.0e-3);
    // Power-weighted mean layer (proxy: fanout-weighted driver layer).
    let centroid = |r: &PlacementResult| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (cell, _) in netlist.iter_cells() {
            let drive: usize = netlist
                .driven_nets(cell)
                .map(|e| netlist.net(e).degree())
                .sum();
            num += drive as f64 * r.placement.layer(cell) as f64;
            den += drive as f64;
        }
        num / den
    };
    // The fanout-weighted proxy understates the true power concentration
    // (activities vary per net); a clear directional move is the check.
    let base_centroid = centroid(&base);
    let thermal_centroid = centroid(&thermal);
    assert!(
        thermal_centroid < base_centroid - 0.02,
        "power centroid must move down: {thermal_centroid} vs {base_centroid}"
    );
}

#[test]
fn stronger_thermal_coefficient_degrades_the_tradeoff_curve() {
    // Fig 7: as α_TEMP grows the WL/ILV tradeoff moves toward higher
    // wirelengths and via counts.
    let netlist = generate(&SynthConfig::named("curve", 400, 2.0e-9)).unwrap();
    let mild = place(&netlist, 1.0e-6);
    let strong = place(&netlist, 1.0e-3);
    let mild_cost = mild.metrics.wirelength + 1.0e-5 * mild.metrics.ilv_count;
    let strong_cost = strong.metrics.wirelength + 1.0e-5 * strong.metrics.ilv_count;
    assert!(
        strong_cost > mild_cost,
        "paying more for heat must cost WL+ILV: {strong_cost} vs {mild_cost}"
    );
}

#[test]
fn temperature_reduction_works_on_single_layer_chips_too() {
    // Fig 8 includes a 1-layer series: no vertical redistribution exists,
    // so gains come from net-weighting power reduction; at minimum the
    // thermal run must not be substantially hotter.
    let netlist = generate(&SynthConfig::named("flat", 400, 2.0e-9)).unwrap();
    let base = Placer::new(PlacerConfig::new(1)).place(&netlist).unwrap();
    let thermal = Placer::new(PlacerConfig::new(1).with_alpha_temp(1.0e-5))
        .place(&netlist)
        .unwrap();
    assert!(
        thermal.metrics.avg_temperature <= base.metrics.avg_temperature * 1.05,
        "{} vs {}",
        thermal.metrics.avg_temperature,
        base.metrics.avg_temperature
    );
}

#[test]
fn more_layers_run_hotter_at_equal_power_budget() {
    // The core 3D-IC thermal motivation: stacking increases temperature.
    let netlist = generate(&SynthConfig::named("stackit", 400, 2.0e-9)).unwrap();
    let t2 = Placer::new(PlacerConfig::new(2))
        .place(&netlist)
        .unwrap()
        .metrics
        .avg_temperature;
    let t4 = Placer::new(PlacerConfig::new(4))
        .place(&netlist)
        .unwrap()
        .metrics
        .avg_temperature;
    assert!(t4 > t2, "4 layers ({t4}) must run hotter than 2 ({t2})");
}

#[test]
fn max_temperature_tracks_average() {
    let netlist = generate(&SynthConfig::named("maxavg", 300, 1.5e-9)).unwrap();
    let r = place(&netlist, 0.0);
    assert!(r.metrics.max_temperature >= r.metrics.avg_temperature);
    assert!(
        r.metrics.max_temperature < r.metrics.avg_temperature * 3.0,
        "max should be within a small factor of avg for spread placements"
    );
}
