//! Adversarial netlist shapes: degenerate topologies a robust placer must
//! survive (and stay legal on), even though no sane benchmark looks like
//! this.

use tvp_core::detail::check_legal;
use tvp_core::{validate, DiagnosticCode, PlaceError, Placer, PlacerConfig, ValidateOptions};
use tvp_netlist::{BuildNetlistError, CellId, CellKind, Netlist, NetlistBuilder, PinDirection};

fn place_and_check(netlist: &Netlist, layers: usize) {
    let result = Placer::new(PlacerConfig::new(layers))
        .place(netlist)
        .expect("placement succeeds");
    assert_eq!(
        check_legal(netlist, &result.chip, &result.placement),
        None,
        "placement must be legal"
    );
}

#[test]
fn one_giant_net_connecting_everything() {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..120)
        .map(|i| b.add_cell(format!("c{i}"), 2e-6, 1.6e-6))
        .collect();
    let net = b.add_net("everything");
    for (i, &c) in cells.iter().enumerate() {
        let dir = if i == 0 {
            PinDirection::Output
        } else {
            PinDirection::Input
        };
        b.connect(net, c, dir).unwrap();
    }
    place_and_check(&b.build().unwrap(), 2);
}

#[test]
fn completely_disconnected_cells() {
    let mut b = NetlistBuilder::new();
    for i in 0..100 {
        b.add_cell(format!("c{i}"), 2e-6, 1.6e-6);
    }
    place_and_check(&b.build().unwrap(), 4);
}

#[test]
fn single_cell_design() {
    let mut b = NetlistBuilder::new();
    b.add_cell("only", 2e-6, 1.6e-6);
    place_and_check(&b.build().unwrap(), 1);
    let mut b = NetlistBuilder::new();
    b.add_cell("only", 2e-6, 1.6e-6);
    place_and_check(&b.build().unwrap(), 4);
}

#[test]
fn chain_topology() {
    // A single long chain: pathological for balance-driven bisection.
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..150)
        .map(|i| b.add_cell(format!("c{i}"), 2e-6, 1.6e-6))
        .collect();
    for w in cells.windows(2) {
        let n = b.add_net(format!("n{}", w[0].index()));
        b.connect(n, w[0], PinDirection::Output).unwrap();
        b.connect(n, w[1], PinDirection::Input).unwrap();
    }
    let netlist = b.build().unwrap();
    place_and_check(&netlist, 2);
}

#[test]
fn one_enormous_cell_among_ants() {
    // One cell 30× wider than the rest: stresses row packing and the
    // capacity slack.
    let mut b = NetlistBuilder::new();
    let big = b.add_cell("whale", 60e-6, 1.6e-6);
    let mut prev = big;
    for i in 0..80 {
        let c = b.add_cell(format!("c{i}"), 2e-6, 1.6e-6);
        let n = b.add_net(format!("n{i}"));
        b.connect(n, prev, PinDirection::Output).unwrap();
        b.connect(n, c, PinDirection::Input).unwrap();
        prev = c;
    }
    let netlist = b.build().unwrap();
    let result = Placer::new(PlacerConfig::new(2)).place(&netlist).unwrap();
    assert_eq!(check_legal(&netlist, &result.chip, &result.placement), None);
    // The whale must fit inside the chip.
    let (x, _, _) = result.placement.position(big);
    let half = netlist.cell(big).area() / result.chip.row_height / 2.0;
    assert!(x - half >= -1e-9 && x + half <= result.chip.width + 1e-9);
}

#[test]
fn nets_with_single_pins_are_harmless() {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..60)
        .map(|i| b.add_cell(format!("c{i}"), 2e-6, 1.6e-6))
        .collect();
    // Half the nets are degenerate single-pin stubs.
    for (i, &c) in cells.iter().enumerate() {
        let n = b.add_net(format!("stub{i}"));
        b.connect(n, c, PinDirection::Output).unwrap();
        if i + 1 < cells.len() && i % 2 == 0 {
            let n2 = b.add_net(format!("pair{i}"));
            b.connect(n2, c, PinDirection::Input).unwrap();
            b.connect(n2, cells[i + 1], PinDirection::Output).unwrap();
        }
    }
    place_and_check(&b.build().unwrap(), 2);
}

#[test]
fn wildly_mixed_cell_sizes() {
    // Widths spanning a factor 20 with random-ish assignment.
    let mut b = NetlistBuilder::new();
    let mut cells = Vec::new();
    for i in 0..120 {
        let w = 1.0e-6 * (1.0 + (i % 20) as f64);
        cells.push(b.add_cell(format!("c{i}"), w, 1.6e-6));
    }
    for chunk in cells.chunks(5) {
        let n = b.add_net(format!("n{}", chunk[0].index()));
        for (j, &c) in chunk.iter().enumerate() {
            let dir = if j == 0 {
                PinDirection::Output
            } else {
                PinDirection::Input
            };
            b.connect(n, c, dir).unwrap();
        }
    }
    place_and_check(&b.build().unwrap(), 3);
}

#[test]
fn all_cells_fixed_never_panics_and_validate_flags_it() {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..40)
        .map(|i| b.add_cell_with_kind(format!("p{i}"), 2e-6, 1.6e-6, CellKind::Fixed))
        .collect();
    for w in cells.windows(2) {
        let n = b.add_net(format!("n{}", w[0].index()));
        b.connect(n, w[0], PinDirection::Output).unwrap();
        b.connect(n, w[1], PinDirection::Input).unwrap();
    }
    let netlist = b.build().unwrap();

    // Preflight names the problem precisely.
    let fixed: Vec<(CellId, f64, f64, u16)> = cells
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, 4e-6 * i as f64, 0.8e-6, 0))
        .collect();
    let report = validate(
        &netlist,
        &ValidateOptions {
            fixed_positions: &fixed,
            ..ValidateOptions::default()
        },
    );
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagnosticCode::NoMovableCells));
    assert!(!report.is_placeable());

    // The placer itself must end in a typed error or a legal placement —
    // never a panic.
    match Placer::new(PlacerConfig::new(2)).place_with_fixed(&netlist, &fixed) {
        Ok(result) => {
            assert_eq!(check_legal(&netlist, &result.chip, &result.placement), None);
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "typed error with a real message");
        }
    }
}

#[test]
fn zero_movable_area_never_panics() {
    // Movable cells exist but carry (almost) no area: whitespace math,
    // tolerances, and thermal power-per-area all divide by sums that
    // approach zero.
    let mut b = NetlistBuilder::new();
    let tiny = 1.0e-9; // 1 nm wide: area ~ 1e-15 of a normal cell
    let cells: Vec<_> = (0..50)
        .map(|i| b.add_cell(format!("c{i}"), tiny, tiny))
        .collect();
    for w in cells.windows(2) {
        let n = b.add_net(format!("n{}", w[0].index()));
        b.connect(n, w[0], PinDirection::Output).unwrap();
        b.connect(n, w[1], PinDirection::Input).unwrap();
    }
    let netlist = b.build().unwrap();
    match Placer::new(PlacerConfig::new(2)).place(&netlist) {
        Ok(result) => {
            assert_eq!(check_legal(&netlist, &result.chip, &result.placement), None);
        }
        Err(e) => assert!(!e.to_string().is_empty()),
    }
}

#[test]
fn single_cell_on_many_layers_stays_legal() {
    // One movable cell spread over deep stacks: every bisection level is
    // degenerate.
    for layers in [1usize, 2, 4, 8] {
        let mut b = NetlistBuilder::new();
        b.add_cell("only", 2e-6, 1.6e-6);
        place_and_check(&b.build().unwrap(), layers);
    }
}

#[test]
fn net_referencing_missing_cell_is_a_typed_build_error() {
    let mut b = NetlistBuilder::new();
    b.add_cell("real", 2e-6, 1.6e-6);
    let n = b.add_net("dangling");
    let ghost = CellId::new(999);
    let err = b
        .connect(n, ghost, PinDirection::Input)
        .expect_err("connecting a never-added cell must fail");
    assert!(matches!(err, BuildNetlistError::UnknownCell(c) if c == ghost));
    // The builder survives the rejected connection and still builds.
    let netlist = b.build().unwrap();
    assert_eq!(netlist.num_cells(), 1);
}

#[test]
fn validate_warns_on_degenerate_nets_and_disconnected_cells() {
    let mut b = NetlistBuilder::new();
    let a = b.add_cell("a", 2e-6, 1.6e-6);
    let c = b.add_cell("b", 2e-6, 1.6e-6);
    b.add_cell("loner", 2e-6, 1.6e-6);
    let pair = b.add_net("pair");
    b.connect(pair, a, PinDirection::Output).unwrap();
    b.connect(pair, c, PinDirection::Input).unwrap();
    let stub = b.add_net("stub");
    b.connect(stub, a, PinDirection::Input).unwrap();
    b.add_net("empty");
    let netlist = b.build().unwrap();

    let report = validate(&netlist, &ValidateOptions::default());
    let codes: Vec<DiagnosticCode> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&DiagnosticCode::SinglePinNet), "{codes:?}");
    assert!(codes.contains(&DiagnosticCode::EmptyNet), "{codes:?}");
    assert!(
        codes.contains(&DiagnosticCode::DisconnectedCell),
        "{codes:?}"
    );
    // All of those are warnings: the design still places.
    assert!(report.is_placeable());
    place_and_check(&netlist, 2);
}

#[test]
fn place_error_display_is_stable_for_empty_netlists() {
    let netlist = NetlistBuilder::new().build().unwrap();
    let err = Placer::new(PlacerConfig::new(2))
        .place(&netlist)
        .expect_err("empty netlist is a typed error");
    assert!(matches!(err, PlaceError::EmptyNetlist));
}

#[test]
fn thermal_objective_on_degenerate_designs() {
    // Thermal machinery must survive designs with no switching activity
    // signal (all activities equal) and stub nets.
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..80)
        .map(|i| b.add_cell(format!("c{i}"), 2e-6, 1.6e-6))
        .collect();
    for w in cells.windows(2) {
        let n = b.add_net(format!("n{}", w[0].index()));
        b.set_switching_activity(n, 0.15).unwrap();
        b.connect(n, w[0], PinDirection::Output).unwrap();
        b.connect(n, w[1], PinDirection::Input).unwrap();
    }
    let netlist = b.build().unwrap();
    let result = Placer::new(PlacerConfig::new(4).with_alpha_temp(1.0e-4))
        .place(&netlist)
        .unwrap();
    assert_eq!(check_legal(&netlist, &result.chip, &result.placement), None);
    assert!(result.metrics.avg_temperature > 0.0);
}
