//! Integration tests for the stage engine (DESIGN.md §9): observability,
//! cancellation, checkpoints/resume, and the JSONL trace format.

use std::time::Duration;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::detail::check_legal;
use tvp_core::{
    CancelToken, JsonlObserver, PlaceError, PlaceOptions, Placer, PlacerConfig, PlacerEvent,
    PlacerObserver, RecordingObserver,
};

fn netlist(cells: usize) -> tvp_netlist::Netlist {
    generate(&SynthConfig::named("se", cells, cells as f64 * 5.0e-12)).unwrap()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp_stage_engine_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A short tag for comparing event *sequences* while ignoring payloads
/// that legitimately vary between runs (wall-clock seconds).
fn event_tag(e: &PlacerEvent) -> String {
    match e {
        PlacerEvent::RunBegin { stages, .. } => format!("run_begin({})", stages.join(",")),
        PlacerEvent::StageSkipped { stage, .. } => format!("skip({stage})"),
        PlacerEvent::StageBegin { stage, .. } => format!("begin({stage})"),
        PlacerEvent::Pass { stage, .. } => format!("pass({stage})"),
        PlacerEvent::StageEnd {
            stage, interrupted, ..
        } => {
            format!("end({stage},interrupted={interrupted})")
        }
        PlacerEvent::ThermalSolved { snapshot } => format!("thermal({})", snapshot.stage),
        PlacerEvent::CheckpointWritten { stage, .. } => format!("checkpoint({stage})"),
        PlacerEvent::FaultInjected { kind, site } => format!("fault({kind}@{site})"),
        PlacerEvent::Degraded { kind, .. } => format!("degraded({kind})"),
        PlacerEvent::CheckpointQuarantined { .. } => "quarantined".to_string(),
        PlacerEvent::RunEnd { stopped_early, .. } => format!("run_end({stopped_early})"),
    }
}

/// Cancels a token the moment a specific stage reports `StageEnd`.
struct CancelAtStageEnd {
    stage: &'static str,
    token: CancelToken,
    events: Vec<PlacerEvent>,
}

impl PlacerObserver for CancelAtStageEnd {
    fn event(&mut self, event: &PlacerEvent) {
        if let PlacerEvent::StageEnd { stage, .. } = event {
            if stage == self.stage {
                self.token.cancel();
            }
        }
        self.events.push(event.clone());
    }
}

#[test]
fn observer_does_not_change_the_placement() {
    let netlist = netlist(250);
    let config = PlacerConfig::new(2);

    let baseline = Placer::new(config.clone()).place(&netlist).unwrap();

    for threads in [1usize, 4] {
        let mut rec = RecordingObserver::new();
        let observed = Placer::new(config.clone().with_threads(threads))
            .place_with_options(
                &netlist,
                &[],
                PlaceOptions {
                    observer: Some(&mut rec),
                    ..PlaceOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            observed.placement, baseline.placement,
            "observer must be a pure listener (threads = {threads})"
        );
        assert_eq!(observed.metrics.wirelength, baseline.metrics.wirelength);
        assert!(!rec.events.is_empty());
        assert!(matches!(
            rec.events.first(),
            Some(PlacerEvent::RunBegin { .. })
        ));
        assert!(matches!(
            rec.events.last(),
            Some(PlacerEvent::RunEnd { .. })
        ));
        assert_eq!(
            rec.completed_stages(),
            vec!["global", "coarse[0]", "detail[0]"]
        );
    }
}

#[test]
fn event_sequence_is_thread_count_independent() {
    let netlist = netlist(200);
    let config = PlacerConfig::new(2);
    let run = |threads: usize| -> Vec<String> {
        let mut rec = RecordingObserver::new();
        Placer::new(config.clone().with_threads(threads))
            .place_with_options(
                &netlist,
                &[],
                PlaceOptions {
                    observer: Some(&mut rec),
                    ..PlaceOptions::default()
                },
            )
            .unwrap();
        rec.events.iter().map(event_tag).collect()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn cancellation_mid_pipeline_returns_a_legal_placement() {
    let netlist = netlist(250);
    let config = PlacerConfig::new(2);

    // Cancel as soon as global placement ends: coarse[0] notices at its
    // first pass boundary, the engine runs the finalize legalization, and
    // the result must still be fully legal.
    let token = CancelToken::new();
    let mut obs = CancelAtStageEnd {
        stage: "global",
        token: token.clone(),
        events: Vec::new(),
    };
    let result = Placer::new(config.clone())
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                observer: Some(&mut obs),
                cancel: Some(token),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    assert!(result.stopped_early);
    assert_eq!(
        check_legal(&netlist, &result.chip, &result.placement),
        None,
        "a cancelled run must still return a legal placement"
    );
    let tags: Vec<String> = obs.events.iter().map(event_tag).collect();
    assert!(
        tags.contains(&"end(finalize,interrupted=false)".to_string()),
        "finalize stage must restore legality: {tags:?}"
    );
    assert!(tags.contains(&"run_end(true)".to_string()));

    // A cancelled run is a strict prefix + finalize, so it must be
    // cheaper in pipeline work than the full run (here: no detail[0]).
    assert!(!tags.contains(&"begin(detail[0])".to_string()));
}

#[test]
fn zero_time_budget_stops_before_any_stage() {
    let netlist = netlist(150);
    let result = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                time_budget: Some(Duration::ZERO),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    assert!(result.stopped_early);
    assert_eq!(check_legal(&netlist, &result.chip, &result.placement), None);
}

#[test]
fn interrupt_then_resume_matches_uninterrupted_run_bitwise() {
    let netlist = netlist(250);
    let config = PlacerConfig::new(2);
    let dir = tmpdir("resume");

    let reference = Placer::new(config.clone()).place(&netlist).unwrap();

    // Run 1: checkpoints on, cancelled right after coarse[0] completes
    // (its checkpoint is still written — checkpoints cover completed
    // stages).
    let token = CancelToken::new();
    let mut obs = CancelAtStageEnd {
        stage: "coarse[0]",
        token: token.clone(),
        events: Vec::new(),
    };
    let interrupted = Placer::new(config.clone())
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                observer: Some(&mut obs),
                cancel: Some(token),
                checkpoint_dir: Some(dir.clone()),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    assert!(interrupted.stopped_early);
    assert_eq!(
        check_legal(&netlist, &interrupted.chip, &interrupted.placement),
        None
    );
    let tags: Vec<String> = obs.events.iter().map(event_tag).collect();
    assert!(
        tags.contains(&"checkpoint(coarse[0])".to_string()),
        "coarse[0] completed, so its checkpoint must exist: {tags:?}"
    );

    // Run 2: same directory, no cancellation — resumes after coarse[0]
    // and must finish bitwise identical to the uninterrupted reference.
    let mut rec = RecordingObserver::new();
    let resumed = Placer::new(config.clone())
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                observer: Some(&mut rec),
                checkpoint_dir: Some(dir.clone()),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    assert_eq!(resumed.resumed_from.as_deref(), Some("coarse[0]"));
    assert!(!resumed.stopped_early);
    assert_eq!(
        resumed.placement, reference.placement,
        "resume must be bitwise identical to the uninterrupted run"
    );
    assert_eq!(resumed.metrics.wirelength, reference.metrics.wirelength);
    assert_eq!(resumed.metrics.ilv_count, reference.metrics.ilv_count);
    let tags: Vec<String> = rec.events.iter().map(event_tag).collect();
    assert!(tags.contains(&"skip(global)".to_string()));
    assert!(tags.contains(&"skip(coarse[0])".to_string()));
    assert!(tags.contains(&"begin(detail[0])".to_string()));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_different_configuration() {
    let netlist = netlist(120);
    let dir = tmpdir("mismatch");

    let config = PlacerConfig::new(2);
    Placer::new(config.clone())
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                checkpoint_dir: Some(dir.clone()),
                ..PlaceOptions::default()
            },
        )
        .unwrap();

    // Same directory, different seed: the checkpoint belongs to another
    // trajectory and must be refused, not silently mixed in.
    let err = Placer::new(config.with_seed(12345))
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                checkpoint_dir: Some(dir.clone()),
                ..PlaceOptions::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, PlaceError::Checkpoint { .. }), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jsonl_trace_replays_the_full_event_sequence() {
    let netlist = netlist(200);
    let mut config = PlacerConfig::new(2);
    config.post_opt_rounds = 1;

    let mut sink = JsonlObserver::new(Vec::new());
    Placer::new(config)
        .place_with_options(
            &netlist,
            &[],
            PlaceOptions {
                observer: Some(&mut sink),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    assert!(lines.first().unwrap().contains("\"event\":\"run_begin\""));
    assert!(lines.last().unwrap().contains("\"event\":\"run_end\""));
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line must be one JSON object: {line}"
        );
    }
    // Every planned stage begins and ends exactly once, in order, with at
    // least one pass event inside each coarse/detail stage.
    let expect_stage = |stage: &str, expect_passes: bool| {
        let begin = lines
            .iter()
            .position(|l| {
                l.contains("\"event\":\"stage_begin\",\"index\"")
                    && l.contains(&format!("\"stage\":\"{stage}\""))
            })
            .unwrap_or_else(|| panic!("missing stage_begin for {stage}"));
        let end = lines
            .iter()
            .position(|l| {
                l.contains("\"event\":\"stage_end\"")
                    && l.contains(&format!("\"stage\":\"{stage}\""))
            })
            .unwrap_or_else(|| panic!("missing stage_end for {stage}"));
        assert!(begin < end, "{stage} must begin before it ends");
        if expect_passes {
            let passes = lines[begin..end]
                .iter()
                .filter(|l| l.contains("\"event\":\"pass\""))
                .count();
            assert!(passes > 0, "{stage} should report pass progress");
        }
    };
    expect_stage("global", false);
    for stage in ["coarse[0]", "detail[0]", "coarse[1]", "detail[1]"] {
        expect_stage(stage, true);
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"thermal\""))
            .count(),
        3,
        "global, coarse, final"
    );
}
