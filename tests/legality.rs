//! Legality invariants of final placements, across configurations.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::detail::check_legal;
use tvp_core::{Placer, PlacerConfig};

fn assert_legal(cells: usize, config: PlacerConfig) {
    let netlist = generate(&SynthConfig::named("legal", cells, cells as f64 * 5.0e-12)).unwrap();
    let result = Placer::new(config.clone())
        .place(&netlist)
        .unwrap_or_else(|e| panic!("config {config:?} failed: {e}"));
    if let Some(violation) = check_legal(&netlist, &result.chip, &result.placement) {
        panic!("illegal placement under {config:?}: {violation}");
    }
    // No geometric overlaps by the independent sweep either.
    assert_eq!(
        result.placement.count_overlaps(&netlist),
        0,
        "overlap sweep disagrees with row checker"
    );
    assert!(result.placement.find_out_of_bounds(&result.chip).is_none());
}

#[test]
fn legal_across_layer_counts() {
    for layers in [1usize, 2, 3, 4, 8] {
        assert_legal(200, PlacerConfig::new(layers));
    }
}

#[test]
fn legal_across_alpha_ilv_extremes() {
    assert_legal(200, PlacerConfig::new(4).with_alpha_ilv(5.0e-9));
    assert_legal(200, PlacerConfig::new(4).with_alpha_ilv(5.2e-3));
}

#[test]
fn legal_with_thermal_objective() {
    assert_legal(200, PlacerConfig::new(4).with_alpha_temp(1.0e-4));
    assert_legal(
        200,
        PlacerConfig::new(4)
            .with_alpha_temp(1.3e-3)
            .with_alpha_ilv(5.0e-8),
    );
}

#[test]
fn legal_with_post_optimization() {
    let mut config = PlacerConfig::new(2);
    config.post_opt_rounds = 2;
    assert_legal(150, config);
}

#[test]
fn legal_at_high_utilization() {
    // Only 2% whitespace: the row packer and the FFD assignment must
    // still find room for everything.
    let mut config = PlacerConfig::new(2);
    config.whitespace = 0.02;
    assert_legal(250, config);
}

#[test]
fn legal_on_tiny_designs() {
    assert_legal(20, PlacerConfig::new(2));
    assert_legal(8, PlacerConfig::new(1));
}

#[test]
fn cells_per_layer_respect_capacity() {
    let cells = 400;
    let netlist = generate(&SynthConfig::named("cap", cells, cells as f64 * 5.0e-12)).unwrap();
    let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
    let capacity_per_layer =
        result.chip.num_rows as f64 * result.chip.row_height * result.chip.width;
    for layer in 0..4u16 {
        let area: f64 = netlist
            .iter_cells()
            .filter(|&(c, _)| result.placement.layer(c) == layer)
            .map(|(_, cell)| cell.area())
            .sum();
        assert!(
            area <= capacity_per_layer * (1.0 + 1e-9),
            "layer {layer} area {area} exceeds capacity {capacity_per_layer}"
        );
    }
}
