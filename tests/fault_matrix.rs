//! Fault-injection matrix: every injectable fault class must end in a
//! legal placement with the degradation recorded in the result and
//! reported through the observer — never a panic, never a silent wrong
//! answer. The injection is deterministic (seeded [`FaultPlan`]), so a
//! faulted run is as reproducible as a clean one.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::detail::check_legal;
use tvp_core::{
    Degradation, FaultKind, FaultPlan, PlaceError, PlaceOptions, PlacementResult, Placer,
    PlacerConfig, PlacerEvent, RecordingObserver,
};

fn netlist(cells: usize) -> tvp_netlist::Netlist {
    generate(&SynthConfig::named("fm", cells, cells as f64 * 5.0e-12)).unwrap()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp_fault_matrix_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the full pipeline with a fault plan attached. The run must
/// *degrade*, not fail: any `Err` here is a test failure.
fn run(
    netlist: &tvp_netlist::Netlist,
    faults: FaultPlan,
    ckpt: Option<&std::path::Path>,
) -> (PlacementResult, RecordingObserver) {
    let mut rec = RecordingObserver::new();
    let result = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            netlist,
            &[],
            PlaceOptions {
                observer: Some(&mut rec),
                checkpoint_dir: ckpt.map(std::path::Path::to_path_buf),
                faults: Some(faults),
                ..PlaceOptions::default()
            },
        )
        .expect("a faulted run must degrade gracefully, not fail");
    (result, rec)
}

fn assert_legal(netlist: &tvp_netlist::Netlist, result: &PlacementResult) {
    assert_eq!(
        check_legal(netlist, &result.chip, &result.placement),
        None,
        "degraded runs must still produce a legal placement"
    );
}

#[test]
fn nan_power_is_sanitized_and_flagged() {
    let nl = netlist(150);
    let plan = FaultPlan::new(3).inject(FaultKind::NanPower, "final");
    let (result, rec) = run(&nl, plan, None);
    assert_legal(&nl, &result);
    assert!(
        result.metrics.max_temperature.is_finite() && result.metrics.avg_temperature.is_finite(),
        "temperatures stay finite after NaN power deposits"
    );
    assert!(
        result
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::ThermalDegraded { stage, .. } if stage == "final")),
        "degradations: {:?}",
        result.degradations
    );
    assert!(rec.events.iter().any(|e| matches!(
        e,
        PlacerEvent::FaultInjected { kind, site } if kind == "nan-power" && site == "final"
    )));
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, PlacerEvent::Degraded { kind, .. } if kind == "thermal-degraded")));
}

#[test]
fn cg_breakdown_falls_back_to_jacobi_at_every_solve_site() {
    let nl = netlist(150);
    for site in ["global", "coarse", "final"] {
        let plan = FaultPlan::new(4).inject(FaultKind::CgBreakdown, site);
        let (result, rec) = run(&nl, plan, None);
        assert_legal(&nl, &result);
        assert!(
            result
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::ThermalDegraded { stage, .. } if stage == site)),
            "site {site}: degradations {:?}",
            result.degradations
        );
        assert!(
            rec.events.iter().any(|e| matches!(
                e,
                PlacerEvent::FaultInjected { kind, site: s } if kind == "cg-breakdown" && s == site
            )),
            "site {site}: missing fault event"
        );
        // The degraded snapshot still lands in the trajectory with finite
        // temperatures.
        let snap = result
            .thermal_trajectory
            .iter()
            .find(|s| s.stage == site)
            .expect("degraded snapshot still recorded");
        assert!(snap.avg_temperature.is_finite() && snap.max_temperature.is_finite());
        assert!(!snap.warm_started, "fallback solves never warm-start");
    }
}

#[test]
fn partition_imbalance_retries_with_relaxed_tolerance() {
    let nl = netlist(200);
    let plan = FaultPlan::new(5).inject(FaultKind::PartitionImbalance, "global");
    let (result, rec) = run(&nl, plan, None);
    assert_legal(&nl, &result);
    let retries = result
        .degradations
        .iter()
        .find_map(|d| match d {
            Degradation::PartitionRetried { retries } => Some(*retries),
            _ => None,
        })
        .expect("imbalance injection must surface as PartitionRetried");
    assert!(retries >= 1);
    assert!(rec.events.iter().any(|e| matches!(
        e,
        PlacerEvent::FaultInjected { kind, .. } if kind == "partition-imbalance"
    )));
}

#[test]
fn corrupt_checkpoint_is_quarantined_and_the_rerun_recovers() {
    let nl = netlist(150);
    let dir = tmpdir("corrupt");

    // Run 1 truncates its own final checkpoint after writing it.
    let plan = FaultPlan::new(1).inject(FaultKind::CorruptCheckpoint, "detail[0]");
    let (r1, _) = run(&nl, plan, Some(&dir));
    assert_legal(&nl, &r1);

    // Run 2 finds the damaged checkpoint: it must quarantine the files,
    // restart fresh, and still finish legally.
    let (r2, rec2) = run(&nl, FaultPlan::new(1), Some(&dir));
    assert_legal(&nl, &r2);
    assert_eq!(r2.resumed_from, None, "a damaged checkpoint never resumes");
    assert!(
        r2.degradations
            .iter()
            .any(|d| matches!(d, Degradation::CheckpointQuarantined { .. })),
        "degradations: {:?}",
        r2.degradations
    );
    assert!(rec2
        .events
        .iter()
        .any(|e| matches!(e, PlacerEvent::CheckpointQuarantined { .. })));
    let corrupt_files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().to_string_lossy().ends_with(".corrupt"))
        .collect();
    assert!(
        !corrupt_files.is_empty(),
        "damaged files are renamed, not deleted"
    );

    // Run 2 wrote healthy checkpoints alongside the quarantined ones, so
    // run 3 resumes normally.
    let (r3, _) = run(&nl, FaultPlan::new(1), Some(&dir));
    assert_eq!(r3.resumed_from.as_deref(), Some("detail[0]"));
    assert!(r3.degradations.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_fault_class_at_once_still_degrades_gracefully() {
    let nl = netlist(150);
    // Probability 1.0: every queried (kind, site) fires. No checkpoint
    // dir is attached, so the checkpoint-write sites (whose injected
    // failure is a *typed* error by design, not a degradation — see
    // `all_faults_with_checkpoints_surface_the_typed_write_error`) are
    // never queried; everything else must degrade gracefully at once.
    let (result, rec) = run(&nl, FaultPlan::with_probability(11, 1.0), None);
    assert_legal(&nl, &result);
    let kinds: Vec<&str> = result.degradations.iter().map(Degradation::kind).collect();
    assert!(kinds.contains(&"thermal-degraded"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"partition-retried"), "kinds: {kinds:?}");
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, PlacerEvent::FaultInjected { .. })));
}

#[test]
fn all_faults_with_checkpoints_surface_the_typed_write_error() {
    let nl = netlist(150);
    let dir = tmpdir("all_ck");
    // With checkpointing on, the probability-1.0 plan also fires
    // io-error:checkpoint-write at the first boundary: the run must fail
    // with the typed, retryable checkpoint error — not panic, not
    // silently succeed.
    let err = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            &nl,
            &[],
            PlaceOptions {
                checkpoint_dir: Some(dir.clone()),
                faults: Some(FaultPlan::with_probability(11, 1.0)),
                ..PlaceOptions::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, PlaceError::Checkpoint { .. }), "{err:?}");
    assert!(err.is_retryable());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_stage_stalls_without_touching_placement_bits() {
    let nl = netlist(150);
    let clean = Placer::new(PlacerConfig::new(2)).place(&nl).unwrap();
    let plan = FaultPlan::new(9).inject(FaultKind::SlowStage, "coarse[0]");
    let (result, rec) = run(&nl, plan, None);
    assert_legal(&nl, &result);
    assert_eq!(
        result.placement, clean.placement,
        "an injected stall must never change placement arithmetic"
    );
    assert!(result.degradations.is_empty());
    assert!(rec.events.iter().any(|e| matches!(
        e,
        PlacerEvent::FaultInjected { kind, site } if kind == "slow-stage" && site == "coarse[0]"
    )));
}

#[test]
fn time_budget_cancels_mid_global_and_returns_legal_best_so_far() {
    use tvp_core::engine::SLOW_STAGE_DELAY;
    let nl = netlist(400);
    // Slow-stage-style row for cancellation: the injected stall at
    // global's begin outlives the whole time budget, so the deadline has
    // already passed when the bisection kernels start. The budget is
    // noticed by their cooperative stop polls — between FM passes and
    // every ~1k heap pops *inside* a pass, with best-prefix rollback —
    // not at a stage boundary, proving the chunked kernels poll the
    // stop signal mid-work and still hand back a legal best-so-far.
    let budget = SLOW_STAGE_DELAY / 5;
    let plan = FaultPlan::new(9).inject(FaultKind::SlowStage, "global");
    let mut rec = RecordingObserver::new();
    let result = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            &nl,
            &[],
            PlaceOptions {
                observer: Some(&mut rec),
                faults: Some(plan),
                time_budget: Some(budget),
                ..PlaceOptions::default()
            },
        )
        .expect("an exhausted budget degrades gracefully, never fails");
    assert!(
        result.stopped_early,
        "a budget smaller than the injected stall must stop the run"
    );
    assert_legal(&nl, &result);
    // The global stage itself reported the interruption (the in-kernel
    // poll fired), and the run-end event carries the early stop.
    assert!(
        rec.events.iter().any(|e| matches!(
            e,
            PlacerEvent::StageEnd { stage, interrupted, .. }
                if stage == "global" && *interrupted
        )),
        "the global stage must surface the mid-kernel interruption"
    );
    assert!(rec.events.iter().any(|e| matches!(
        e,
        PlacerEvent::RunEnd {
            stopped_early: true,
            ..
        }
    )));
    // Sanity: an uncancelled run of the same design is unaffected by the
    // wiring (stop stays None when no budget is armed).
    let clean = Placer::new(PlacerConfig::new(2)).place(&nl).unwrap();
    assert!(!clean.stopped_early);
    assert_ne!(
        result.placement, clean.placement,
        "the cancelled run stopped before global placement finished"
    );
}

#[test]
fn checkpoint_write_io_error_is_typed_retryable_and_resumable() {
    let nl = netlist(150);
    let dir = tmpdir("io");
    // Attempt 1 fails while writing the detail[0] checkpoint; the
    // checkpoints for the completed earlier stages stay intact.
    let err = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            &nl,
            &[],
            PlaceOptions {
                checkpoint_dir: Some(dir.clone()),
                faults: Some(FaultPlan::new(2).inject(FaultKind::CheckpointWriteIo, "detail[0]")),
                ..PlaceOptions::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, PlaceError::Checkpoint { .. }), "{err:?}");
    assert!(
        err.is_retryable(),
        "supervisors must classify this as retry"
    );
    // The retry (attempt 2, fault not re-injected) resumes from the last
    // good checkpoint and reproduces an uninterrupted run bitwise.
    let retry = Placer::new(PlacerConfig::new(2))
        .place_with_options(
            &nl,
            &[],
            PlaceOptions {
                checkpoint_dir: Some(dir.clone()),
                ..PlaceOptions::default()
            },
        )
        .unwrap();
    assert_eq!(retry.resumed_from.as_deref(), Some("coarse[0]"));
    let clean = Placer::new(PlacerConfig::new(2)).place(&nl).unwrap();
    assert_eq!(retry.placement, clean.placement);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn faulted_runs_are_deterministic() {
    let nl = netlist(150);
    let plan = || {
        FaultPlan::new(7)
            .inject(FaultKind::NanPower, "global")
            .inject(FaultKind::CgBreakdown, "final")
            .inject(FaultKind::PartitionImbalance, "global")
    };
    let (a, _) = run(&nl, plan(), None);
    let (b, _) = run(&nl, plan(), None);
    assert_eq!(a.placement, b.placement, "same plan, same placement");
    assert_eq!(a.degradations, b.degradations);
}

#[test]
fn an_empty_fault_plan_changes_nothing() {
    let nl = netlist(150);
    let clean = Placer::new(PlacerConfig::new(2)).place(&nl).unwrap();
    let (planned, rec) = run(&nl, FaultPlan::new(0), None);
    assert_eq!(clean.placement, planned.placement);
    assert!(planned.degradations.is_empty());
    assert!(!rec
        .events
        .iter()
        .any(|e| matches!(e, PlacerEvent::FaultInjected { .. })));
}
