//! End-to-end pipeline integration tests spanning all crates.

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};

#[test]
fn pipeline_handles_a_range_of_sizes_and_layer_counts() {
    for &(cells, layers) in &[(60usize, 1usize), (200, 2), (350, 4), (150, 6)] {
        let netlist = generate(&SynthConfig::named("pipe", cells, cells as f64 * 5.0e-12)).unwrap();
        let result = Placer::new(PlacerConfig::new(layers))
            .place(&netlist)
            .unwrap_or_else(|e| panic!("{cells} cells / {layers} layers failed: {e}"));
        assert_eq!(result.legalize.placed, cells);
        assert!(result.metrics.wirelength > 0.0);
        assert!(result.metrics.avg_temperature > 0.0);
        if layers == 1 {
            assert_eq!(result.metrics.ilv_count, 0.0);
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let netlist = generate(&SynthConfig::named("det", 250, 1.25e-9)).unwrap();
    let config = PlacerConfig::new(4).with_seed(17);
    let a = Placer::new(config.clone()).place(&netlist).unwrap();
    let b = Placer::new(config).place(&netlist).unwrap();
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn different_seeds_give_different_placements_but_similar_quality() {
    let netlist = generate(&SynthConfig::named("seeds", 300, 1.5e-9)).unwrap();
    let a = Placer::new(PlacerConfig::new(2).with_seed(1))
        .place(&netlist)
        .unwrap();
    let b = Placer::new(PlacerConfig::new(2).with_seed(2))
        .place(&netlist)
        .unwrap();
    assert_ne!(a.placement, b.placement);
    let ratio = a.metrics.wirelength / b.metrics.wirelength;
    assert!(
        (0.7..1.4).contains(&ratio),
        "seeds should not change quality wildly: {ratio}"
    );
}

#[test]
fn metrics_totals_are_internally_consistent() {
    let netlist = generate(&SynthConfig::named("cons", 200, 1.0e-9)).unwrap();
    let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
    let m = &result.metrics;
    // Objective with α_TEMP = 0 is exactly WL + α_ILV·ILV.
    let expected = m.wirelength + 1.0e-5 * m.ilv_count;
    assert!(
        (m.objective - expected).abs() < 1e-9 * expected,
        "objective {} vs WL+αILV·ILV {}",
        m.objective,
        expected
    );
    assert!(m.max_temperature >= m.avg_temperature);
    assert!(m.ilv_density_per_interlayer > 0.0);
}

#[test]
fn more_partition_starts_do_not_hurt_quality_much() {
    let netlist = generate(&SynthConfig::named("starts", 250, 1.25e-9)).unwrap();
    let one = Placer::new(PlacerConfig::new(2).with_partition_starts(1))
        .place(&netlist)
        .unwrap();
    let four = Placer::new(PlacerConfig::new(2).with_partition_starts(4))
        .place(&netlist)
        .unwrap();
    // §7: more restarts buy quality; allow noise but catch regressions.
    assert!(
        four.metrics.objective < one.metrics.objective * 1.10,
        "4 starts: {}, 1 start: {}",
        four.metrics.objective,
        one.metrics.objective
    );
}

#[test]
fn bookshelf_design_places_like_a_generated_netlist() {
    // Export a synthetic design to Bookshelf text, reassemble it, and
    // verify the placer accepts the reassembled netlist.
    use tvp_bookshelf::{
        parse_nets, parse_nodes, write_nets, write_nodes, Design, DesignBuilderOptions,
    };
    let netlist = generate(&SynthConfig::named("bs", 150, 7.5e-10)).unwrap();
    let design = Design::from_netlist("bs", netlist);
    let (nodes, nets, _, _) = design.to_files(DesignBuilderOptions::default());
    let nodes = parse_nodes(&write_nodes(&nodes)).unwrap();
    let nets = parse_nets(&write_nets(&nets)).unwrap();
    let design2 = Design::assemble(
        "bs2",
        &nodes,
        &nets,
        None,
        None,
        None,
        DesignBuilderOptions::default(),
    )
    .unwrap();
    let result = Placer::new(PlacerConfig::new(2))
        .place(&design2.netlist)
        .unwrap();
    assert_eq!(result.legalize.placed, 150);
}
