//! Errors raised while building a netlist.

use std::error::Error;
use std::fmt;

/// Error returned by [`NetlistBuilder`](crate::NetlistBuilder) operations.
#[derive(Clone, PartialEq, Debug)]
pub enum BuildNetlistError {
    /// A cell was declared with a non-positive or non-finite dimension.
    InvalidCellSize {
        /// Offending cell's name.
        name: String,
        /// Declared width (meters).
        width: f64,
        /// Declared height (meters).
        height: f64,
    },
    /// `connect` referenced a cell ID that was never added.
    UnknownCell(crate::CellId),
    /// `connect` referenced a net ID that was never added.
    UnknownNet(crate::NetId),
    /// A net was given two output (driver) pins.
    MultipleDrivers {
        /// The net with more than one driver.
        net: String,
    },
    /// The same (cell, net) pair was connected twice.
    DuplicateConnection {
        /// Cell name of the duplicate connection.
        cell: String,
        /// Net name of the duplicate connection.
        net: String,
    },
    /// A net weight or switching activity was non-finite or negative.
    InvalidNetAttribute {
        /// Net whose attribute was rejected.
        net: String,
        /// Description of the bad attribute.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::InvalidCellSize {
                name,
                width,
                height,
            } => write!(
                f,
                "cell `{name}` has invalid dimensions {width} x {height}; both must be finite and positive"
            ),
            BuildNetlistError::UnknownCell(id) => write!(f, "unknown cell id {id}"),
            BuildNetlistError::UnknownNet(id) => write!(f, "unknown net id {id}"),
            BuildNetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has more than one output pin")
            }
            BuildNetlistError::DuplicateConnection { cell, net } => {
                write!(f, "cell `{cell}` is connected to net `{net}` more than once")
            }
            BuildNetlistError::InvalidNetAttribute { net, what, value } => {
                write!(f, "net `{net}` has invalid {what} {value}")
            }
        }
    }
}

impl Error for BuildNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = BuildNetlistError::InvalidCellSize {
            name: "bad".into(),
            width: -1.0,
            height: 2.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("bad"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildNetlistError>();
    }
}
