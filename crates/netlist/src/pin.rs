//! Pins: the cell-to-net incidence records.

use crate::{CellId, NetId};
use std::fmt;

/// Signal direction of a pin, seen from the cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PinDirection {
    /// The cell reads the net through this pin (a sink).
    #[default]
    Input,
    /// The cell drives the net through this pin (the driver).
    Output,
}

impl fmt::Display for PinDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PinDirection::Input => "input",
            PinDirection::Output => "output",
        })
    }
}

/// A single connection between a cell and a net.
///
/// The pin's physical offset from the cell origin is recorded so that
/// bounding-box wirelength can account for pin positions; IBM-PLACE
/// benchmarks place all pins at the cell center (offset zero).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Pin {
    cell: CellId,
    net: NetId,
    direction: PinDirection,
    offset_x: f64,
    offset_y: f64,
}

impl Pin {
    /// Creates a pin connecting `cell` to `net` at the cell center.
    pub fn new(cell: CellId, net: NetId, direction: PinDirection) -> Self {
        Self {
            cell,
            net,
            direction,
            offset_x: 0.0,
            offset_y: 0.0,
        }
    }

    /// Creates a pin with an explicit offset (meters) from the cell center.
    pub fn with_offset(
        cell: CellId,
        net: NetId,
        direction: PinDirection,
        offset_x: f64,
        offset_y: f64,
    ) -> Self {
        Self {
            cell,
            net,
            direction,
            offset_x,
            offset_y,
        }
    }

    /// The cell this pin belongs to.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// The net this pin connects to.
    pub fn net(&self) -> NetId {
        self.net
    }

    /// Signal direction of the pin.
    pub fn direction(&self) -> PinDirection {
        self.direction
    }

    /// Whether this pin drives its net.
    pub fn is_driver(&self) -> bool {
        self.direction == PinDirection::Output
    }

    /// Pin x offset from cell center, meters.
    pub fn offset_x(&self) -> f64 {
        self.offset_x
    }

    /// Pin y offset from cell center, meters.
    pub fn offset_y(&self) -> f64 {
        self.offset_y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_detection() {
        let p = Pin::new(CellId::new(0), NetId::new(1), PinDirection::Output);
        assert!(p.is_driver());
        let q = Pin::new(CellId::new(0), NetId::new(1), PinDirection::Input);
        assert!(!q.is_driver());
    }

    #[test]
    fn offsets_default_to_center() {
        let p = Pin::new(CellId::new(2), NetId::new(3), PinDirection::Input);
        assert_eq!(p.offset_x(), 0.0);
        assert_eq!(p.offset_y(), 0.0);
        assert_eq!(p.cell().index(), 2);
        assert_eq!(p.net().index(), 3);
    }

    #[test]
    fn direction_display() {
        assert_eq!(PinDirection::Input.to_string(), "input");
        assert_eq!(PinDirection::Output.to_string(), "output");
    }
}
