//! The immutable netlist arena and its builder.

use crate::error::BuildNetlistError;
use crate::hash::FxHashSet;
use crate::net::Net;
use crate::stats::NetlistStats;
use crate::{Cell, CellId, CellKind, NetId, Pin, PinDirection, PinId};

/// An immutable standard-cell netlist.
///
/// Stores cells, nets, and pins in flat arenas plus compressed (CSR)
/// incidence structures in both directions — cell→pin and net→pin —
/// so that "nets of this cell" and "pins of this net" queries walk
/// contiguous `u32` slices with no per-cell or per-net heap objects.
/// The placer's incremental objective evaluation and extreme tracking
/// depend on this layout staying allocation-free and cache-friendly at
/// million-cell scale.
///
/// Build one with [`NetlistBuilder`].
#[derive(Clone, PartialEq, Debug)]
pub struct Netlist {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    /// CSR offsets into `cell_pin_ids`: pins of cell `c` are
    /// `cell_pin_ids[cell_pin_offsets[c] .. cell_pin_offsets[c + 1]]`.
    cell_pin_offsets: Vec<u32>,
    cell_pin_ids: Vec<PinId>,
    /// CSR offsets into `net_pin_ids`: pins of net `n` are
    /// `net_pin_ids[net_pin_offsets[n] .. net_pin_offsets[n + 1]]`.
    net_pin_offsets: Vec<u32>,
    net_pin_ids: Vec<PinId>,
}

impl Netlist {
    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins (total connectivity records).
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The cell with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The pin with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// All cells, in ID order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, in ID order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins, in ID order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Iterator over `(CellId, &Cell)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId::new(i), c))
    }

    /// Iterator over `(NetId, &Net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::new(i), n))
    }

    /// The pins attached to a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for this netlist.
    pub fn cell_pins(&self, cell: CellId) -> &[PinId] {
        let lo = self.cell_pin_offsets[cell.index()] as usize;
        let hi = self.cell_pin_offsets[cell.index() + 1] as usize;
        &self.cell_pin_ids[lo..hi]
    }

    /// The pins attached to a net, in connection order.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for this netlist.
    pub fn net_pins(&self, net: NetId) -> &[PinId] {
        let lo = self.net_pin_offsets[net.index()] as usize;
        let hi = self.net_pin_offsets[net.index() + 1] as usize;
        &self.net_pin_ids[lo..hi]
    }

    /// Iterator over the nets incident to a cell. A net repeats if the
    /// cell connects to it through several pins — possible when the
    /// netlist was built with
    /// [`NetlistBuilder::allow_shared_net_pins`]; deduplicate when
    /// counting distinct nets.
    pub fn cell_nets(&self, cell: CellId) -> impl Iterator<Item = NetId> + '_ {
        self.cell_pins(cell).iter().map(|&p| self.pin(p).net())
    }

    /// Nets driven by (i.e. whose driver pin belongs to) the given cell.
    pub fn driven_nets(&self, cell: CellId) -> impl Iterator<Item = NetId> + '_ {
        self.cell_pins(cell).iter().filter_map(move |&p| {
            let pin = self.pin(p);
            pin.is_driver().then(|| pin.net())
        })
    }

    /// The cell driving a net, if the net has a driver pin.
    pub fn net_driver_cell(&self, net: NetId) -> Option<CellId> {
        self.net(net).driver().map(|p| self.pin(p).cell())
    }

    /// Total footprint area of all cells, square meters.
    pub fn total_cell_area(&self) -> f64 {
        self.cells.iter().map(Cell::area).sum()
    }

    /// Computes summary statistics for reporting and benchmark tables.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::compute(self)
    }
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use tvp_netlist::{NetlistBuilder, PinDirection};
///
/// # fn main() -> Result<(), tvp_netlist::BuildNetlistError> {
/// let mut b = NetlistBuilder::new();
/// let driver = b.add_cell("inv1", 1e-6, 2e-6);
/// let sink = b.add_cell("inv2", 1e-6, 2e-6);
/// let net = b.add_net("wire");
/// b.connect(net, driver, PinDirection::Output)?;
/// b.connect(net, sink, PinDirection::Input)?;
/// let netlist = b.build()?;
/// assert_eq!(netlist.net_driver_cell(net), Some(driver));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default, Debug)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    /// (cell, net) pairs already connected, to reject duplicates.
    /// Keyed `cell << 32 | net` with a fast non-cryptographic hasher:
    /// at a million cells this set sees several million inserts, where
    /// SipHash alone costs whole seconds.
    seen: FxHashSet<u64>,
    errors: Vec<BuildNetlistError>,
    /// When set, degenerate cell dimensions pass `build` so the netlist
    /// can be inspected and repaired instead of rejected outright.
    permissive: bool,
    /// When set, a cell may connect to the same net through several pins
    /// (e.g. a folded standard cell with both ends of a feedthrough on
    /// one signal). The single-driver-per-net check still applies.
    shared_net_pins: bool,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints for large benchmarks.
    pub fn with_capacity(cells: usize, nets: usize, pins: usize) -> Self {
        Self {
            cells: Vec::with_capacity(cells),
            nets: Vec::with_capacity(nets),
            pins: Vec::with_capacity(pins),
            seen: FxHashSet::with_capacity_and_hasher(pins, Default::default()),
            errors: Vec::new(),
            permissive: false,
            shared_net_pins: false,
        }
    }

    /// Lets [`build`](Self::build) accept cells with zero, negative, or
    /// non-finite dimensions instead of rejecting them.
    ///
    /// Intended for diagnostic and repair tooling (preflight validation
    /// reports such cells; repair clamps them): the placer itself must
    /// never be fed a permissively built netlist without validating it
    /// first.
    #[must_use]
    pub fn permissive(mut self) -> Self {
        self.permissive = true;
        self
    }

    /// Lets a cell connect to the same net through more than one pin
    /// (normally rejected as [`BuildNetlistError::DuplicateConnection`]).
    ///
    /// Real designs do this — a folded cell can touch one signal at two
    /// physical pins — and the objective evaluator prices each distinct
    /// (cell, net) incidence once regardless. The single-driver-per-net
    /// check is unaffected.
    #[must_use]
    pub fn allow_shared_net_pins(mut self) -> Self {
        self.shared_net_pins = true;
        self
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Adds a movable cell and returns its ID.
    ///
    /// Dimension validation is deferred to [`build`](Self::build) so that
    /// file parsers can report every bad record at once.
    pub fn add_cell(&mut self, name: impl Into<String>, width: f64, height: f64) -> CellId {
        self.add_cell_with_kind(name, width, height, CellKind::Movable)
    }

    /// Adds a cell with an explicit [`CellKind`] and returns its ID.
    pub fn add_cell_with_kind(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> CellId {
        let id = CellId::new(self.cells.len());
        let cell = Cell::with_kind(name, width, height, kind);
        if !self.permissive
            && (!cell.width().is_finite()
                || cell.width() <= 0.0
                || !cell.height().is_finite()
                || cell.height() <= 0.0)
        {
            self.errors.push(BuildNetlistError::InvalidCellSize {
                name: cell.name().to_string(),
                width: cell.width(),
                height: cell.height(),
            });
        }
        self.cells.push(cell);
        id
    }

    /// Adds an empty net and returns its ID.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::new(self.nets.len());
        self.nets.push(Net::new(name.into()));
        id
    }

    /// Sets a net's structural weight.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetlistError::UnknownNet`] for an out-of-range ID and
    /// [`BuildNetlistError::InvalidNetAttribute`] for a non-finite or
    /// negative weight.
    pub fn set_net_weight(&mut self, net: NetId, weight: f64) -> Result<(), BuildNetlistError> {
        let n = self
            .nets
            .get_mut(net.index())
            .ok_or(BuildNetlistError::UnknownNet(net))?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(BuildNetlistError::InvalidNetAttribute {
                net: n.name().to_string(),
                what: "weight",
                value: weight,
            });
        }
        n.set_weight(weight);
        Ok(())
    }

    /// Sets a net's switching activity (`a_i` in Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetlistError::UnknownNet`] for an out-of-range ID and
    /// [`BuildNetlistError::InvalidNetAttribute`] for an activity outside
    /// `[0, 1]`.
    pub fn set_switching_activity(
        &mut self,
        net: NetId,
        activity: f64,
    ) -> Result<(), BuildNetlistError> {
        let n = self
            .nets
            .get_mut(net.index())
            .ok_or(BuildNetlistError::UnknownNet(net))?;
        if !activity.is_finite() || !(0.0..=1.0).contains(&activity) {
            return Err(BuildNetlistError::InvalidNetAttribute {
                net: n.name().to_string(),
                what: "switching activity",
                value: activity,
            });
        }
        n.set_switching_activity(activity);
        Ok(())
    }

    /// Connects `cell` to `net` with a pin at the cell center.
    ///
    /// # Errors
    ///
    /// Returns an error if either ID is unknown, the (cell, net) pair is
    /// already connected, or the net already has a driver and `direction`
    /// is [`PinDirection::Output`].
    pub fn connect(
        &mut self,
        net: NetId,
        cell: CellId,
        direction: PinDirection,
    ) -> Result<PinId, BuildNetlistError> {
        self.connect_with_offset(net, cell, direction, 0.0, 0.0)
    }

    /// Connects `cell` to `net` with a pin at the given offset from the
    /// cell center.
    ///
    /// # Errors
    ///
    /// Same conditions as [`connect`](Self::connect).
    pub fn connect_with_offset(
        &mut self,
        net: NetId,
        cell: CellId,
        direction: PinDirection,
        offset_x: f64,
        offset_y: f64,
    ) -> Result<PinId, BuildNetlistError> {
        if cell.index() >= self.cells.len() {
            return Err(BuildNetlistError::UnknownCell(cell));
        }
        let n = self
            .nets
            .get_mut(net.index())
            .ok_or(BuildNetlistError::UnknownNet(net))?;
        let key = (cell.index() as u64) << 32 | net.index() as u64;
        if !self.seen.insert(key) && !self.shared_net_pins {
            return Err(BuildNetlistError::DuplicateConnection {
                cell: self.cells[cell.index()].name().to_string(),
                net: n.name().to_string(),
            });
        }
        let is_driver = direction == PinDirection::Output;
        if is_driver && n.driver().is_some() {
            return Err(BuildNetlistError::MultipleDrivers {
                net: n.name().to_string(),
            });
        }
        let pin_id = PinId::new(self.pins.len());
        self.pins
            .push(Pin::with_offset(cell, net, direction, offset_x, offset_y));
        n.note_pin(pin_id, is_driver);
        Ok(pin_id)
    }

    /// Freezes the builder into an immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first deferred validation error (currently only
    /// [`BuildNetlistError::InvalidCellSize`], since connection errors are
    /// reported eagerly by [`connect`](Self::connect)).
    pub fn build(self) -> Result<Netlist, BuildNetlistError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // Both CSR directions come from one counting sort over the pin
        // arena. Scattering in pin-ID order reproduces connection order
        // within each cell and each net exactly, so iteration order — and
        // therefore every downstream floating-point reduction — is bitwise
        // identical to an insertion-ordered build.
        let num_cells = self.cells.len();
        let num_nets = self.nets.len();
        let num_pins = self.pins.len();
        let mut cell_pin_offsets = vec![0u32; num_cells + 1];
        let mut net_pin_offsets = vec![0u32; num_nets + 1];
        for pin in &self.pins {
            cell_pin_offsets[pin.cell().index() + 1] += 1;
            net_pin_offsets[pin.net().index() + 1] += 1;
        }
        for i in 0..num_cells {
            cell_pin_offsets[i + 1] += cell_pin_offsets[i];
        }
        for i in 0..num_nets {
            net_pin_offsets[i + 1] += net_pin_offsets[i];
        }
        let mut cell_cursor: Vec<u32> = cell_pin_offsets[..num_cells].to_vec();
        let mut net_cursor: Vec<u32> = net_pin_offsets[..num_nets].to_vec();
        let mut cell_pin_ids = vec![PinId::new(0); num_pins];
        let mut net_pin_ids = vec![PinId::new(0); num_pins];
        for (i, pin) in self.pins.iter().enumerate() {
            let c = pin.cell().index();
            cell_pin_ids[cell_cursor[c] as usize] = PinId::new(i);
            cell_cursor[c] += 1;
            let e = pin.net().index();
            net_pin_ids[net_cursor[e] as usize] = PinId::new(i);
            net_cursor[e] += 1;
        }
        Ok(Netlist {
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            cell_pin_offsets,
            cell_pin_ids,
            net_pin_offsets,
            net_pin_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        // a --n1--> b --n2--> c, plus n3 = {a, c} driven by c.
        let mut b = NetlistBuilder::new();
        let ca = b.add_cell("a", 1.0, 1.0);
        let cb = b.add_cell("b", 2.0, 1.0);
        let cc = b.add_cell("c", 1.0, 3.0);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        let n3 = b.add_net("n3");
        b.connect(n1, ca, PinDirection::Output).unwrap();
        b.connect(n1, cb, PinDirection::Input).unwrap();
        b.connect(n2, cb, PinDirection::Output).unwrap();
        b.connect(n2, cc, PinDirection::Input).unwrap();
        b.connect(n3, cc, PinDirection::Output).unwrap();
        b.connect(n3, ca, PinDirection::Input).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let nl = tiny();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 6);
        assert_eq!(nl.total_cell_area(), 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn cell_pin_csr_is_consistent() {
        let nl = tiny();
        for (cid, _) in nl.iter_cells() {
            for &pid in nl.cell_pins(cid) {
                assert_eq!(nl.pin(pid).cell(), cid);
            }
        }
        let total: usize = (0..nl.num_cells())
            .map(|i| nl.cell_pins(CellId::new(i)).len())
            .sum();
        assert_eq!(total, nl.num_pins());
    }

    #[test]
    fn net_pin_csr_is_consistent() {
        let nl = tiny();
        for (nid, net) in nl.iter_nets() {
            let pins = nl.net_pins(nid);
            assert_eq!(pins.len(), net.degree());
            for &pid in pins {
                assert_eq!(nl.pin(pid).net(), nid);
            }
            // Connection order is preserved: pin IDs ascend within a net.
            assert!(pins.windows(2).all(|w| w[0].index() < w[1].index()));
        }
        let total: usize = (0..nl.num_nets())
            .map(|i| nl.net_pins(NetId::new(i)).len())
            .sum();
        assert_eq!(total, nl.num_pins());
    }

    #[test]
    fn driver_queries() {
        let nl = tiny();
        let n1 = NetId::new(0);
        assert_eq!(nl.net_driver_cell(n1), Some(CellId::new(0)));
        let driven: Vec<_> = nl.driven_nets(CellId::new(2)).collect();
        assert_eq!(driven, vec![NetId::new(2)]);
    }

    #[test]
    fn cell_nets_enumerates_incident_nets() {
        let nl = tiny();
        let mut nets: Vec<_> = nl.cell_nets(CellId::new(0)).collect();
        nets.sort();
        assert_eq!(nets, vec![NetId::new(0), NetId::new(2)]);
    }

    #[test]
    fn rejects_second_driver() {
        let mut b = NetlistBuilder::new();
        let c1 = b.add_cell("a", 1.0, 1.0);
        let c2 = b.add_cell("b", 1.0, 1.0);
        let n = b.add_net("n");
        b.connect(n, c1, PinDirection::Output).unwrap();
        let err = b.connect(n, c2, PinDirection::Output).unwrap_err();
        assert!(matches!(err, BuildNetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn rejects_duplicate_connection() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("a", 1.0, 1.0);
        let n = b.add_net("n");
        b.connect(n, c, PinDirection::Input).unwrap();
        let err = b.connect(n, c, PinDirection::Input).unwrap_err();
        assert!(matches!(err, BuildNetlistError::DuplicateConnection { .. }));
    }

    #[test]
    fn allow_shared_net_pins_accepts_multi_pin_same_net() {
        let mut b = NetlistBuilder::new().allow_shared_net_pins();
        let c = b.add_cell("a", 1.0, 1.0);
        let d = b.add_cell("b", 1.0, 1.0);
        let n = b.add_net("n");
        b.connect_with_offset(n, c, PinDirection::Output, -0.2, 0.0)
            .unwrap();
        b.connect_with_offset(n, c, PinDirection::Input, 0.2, 0.0)
            .unwrap();
        b.connect(n, d, PinDirection::Input).unwrap();
        // The single-driver check still fires even with sharing on.
        let err = b.connect(n, d, PinDirection::Output).unwrap_err();
        assert!(matches!(err, BuildNetlistError::MultipleDrivers { .. }));
        let netlist = b.build().unwrap();
        assert_eq!(netlist.cell_pins(c).len(), 2);
        assert_eq!(netlist.cell_nets(c).count(), 2, "net repeats per pin");
        assert_eq!(netlist.net_pins(n).len(), 3);
    }

    #[test]
    fn rejects_unknown_ids() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("a", 1.0, 1.0);
        let n = b.add_net("n");
        assert!(matches!(
            b.connect(NetId::new(5), c, PinDirection::Input),
            Err(BuildNetlistError::UnknownNet(_))
        ));
        assert!(matches!(
            b.connect(n, CellId::new(5), PinDirection::Input),
            Err(BuildNetlistError::UnknownCell(_))
        ));
    }

    #[test]
    fn build_reports_bad_cell_size() {
        let mut b = NetlistBuilder::new();
        b.add_cell("bad", 0.0, 1.0);
        assert!(matches!(
            b.build(),
            Err(BuildNetlistError::InvalidCellSize { .. })
        ));
    }

    #[test]
    fn permissive_build_accepts_bad_dims_for_repair_tooling() {
        let mut b = NetlistBuilder::new().permissive();
        b.add_cell("flat", 0.0, 1.0);
        b.add_cell("nan", f64::NAN, 1.0);
        let netlist = b.build().expect("permissive build succeeds");
        assert_eq!(netlist.num_cells(), 2);
        // Other validation (connections, attributes) still applies.
        let mut b = NetlistBuilder::new().permissive();
        let c = b.add_cell("c", 0.0, 1.0);
        let n = b.add_net("n");
        b.connect(n, c, PinDirection::Input).unwrap();
        assert!(matches!(
            b.connect(n, c, PinDirection::Input),
            Err(BuildNetlistError::DuplicateConnection { .. })
        ));
    }

    #[test]
    fn net_attribute_validation() {
        let mut b = NetlistBuilder::new();
        let n = b.add_net("n");
        assert!(b.set_net_weight(n, 2.5).is_ok());
        assert!(b.set_net_weight(n, -1.0).is_err());
        assert!(b.set_switching_activity(n, 0.3).is_ok());
        assert!(b.set_switching_activity(n, 1.5).is_err());
        assert!(b.set_switching_activity(NetId::new(9), 0.3).is_err());
    }

    #[test]
    fn netlist_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Netlist>();
    }
}
