//! Nets: multi-pin hyperedges with switching activity.

use crate::PinId;

/// A net (hyperedge) connecting two or more pins.
///
/// Besides connectivity, a net carries the electrical attributes the DAC'07
/// power model (Eq. 4) needs: a switching activity `a_i` and a structural
/// `weight` that file formats such as Bookshelf `.wts` may specify.
///
/// A `Net` is a fixed-size record: the pin list itself lives in the
/// [`Netlist`](crate::Netlist)'s flat net→pin CSR arena and is read with
/// [`Netlist::net_pins`](crate::Netlist::net_pins). Keeping nets
/// pointer-free makes the net arena one contiguous allocation that scales
/// to millions of nets without per-net heap traffic.
#[derive(Clone, PartialEq, Debug)]
pub struct Net {
    name: String,
    driver: Option<PinId>,
    num_pins: u32,
    num_input_pins: u32,
    weight: f64,
    switching_activity: f64,
}

/// Default switching activity used when a benchmark does not specify one.
///
/// 0.15 transitions per clock cycle is a common assumption for random-logic
/// nets in placement-stage power estimation.
pub(crate) const DEFAULT_SWITCHING_ACTIVITY: f64 = 0.15;

impl Net {
    pub(crate) fn new(name: String) -> Self {
        Self {
            name,
            driver: None,
            num_pins: 0,
            num_input_pins: 0,
            weight: 1.0,
            switching_activity: DEFAULT_SWITCHING_ACTIVITY,
        }
    }

    /// Records one more pin on the net; the pin itself is stored in the
    /// netlist's pin arena and indexed by the net→pin CSR.
    pub(crate) fn note_pin(&mut self, pin: PinId, is_driver: bool) {
        self.num_pins += 1;
        if is_driver {
            self.driver = Some(pin);
        } else {
            self.num_input_pins += 1;
        }
    }

    pub(crate) fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    pub(crate) fn set_switching_activity(&mut self, activity: f64) {
        self.switching_activity = activity;
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        self.num_pins as usize
    }

    /// The driving (output) pin, if the net has one.
    ///
    /// IBM-PLACE nets always have exactly one driver; synthetic nets built
    /// without direction information may have none.
    pub fn driver(&self) -> Option<PinId> {
        self.driver
    }

    /// Number of input (sink) pins on the net — `n_i^{input pins}` in Eq. 5.
    pub fn num_input_pins(&self) -> usize {
        self.num_input_pins as usize
    }

    /// Structural net weight (from `.wts` files; 1.0 by default).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Switching activity `a_i` (transitions per clock cycle) from Eq. 4.
    pub fn switching_activity(&self) -> f64 {
        self.switching_activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_driver_and_inputs() {
        let mut n = Net::new("n".into());
        n.note_pin(PinId::new(0), false);
        n.note_pin(PinId::new(1), true);
        n.note_pin(PinId::new(2), false);
        assert_eq!(n.degree(), 3);
        assert_eq!(n.driver(), Some(PinId::new(1)));
        assert_eq!(n.num_input_pins(), 2);
    }

    #[test]
    fn defaults() {
        let n = Net::new("n".into());
        assert_eq!(n.weight(), 1.0);
        assert_eq!(n.switching_activity(), DEFAULT_SWITCHING_ACTIVITY);
        assert!(n.driver().is_none());
        assert_eq!(n.degree(), 0);
    }
}
