//! Standard-cell netlist data model for 3D-IC placement.
//!
//! This crate provides the hypergraph netlist representation shared by every
//! stage of the thermal/via-aware 3D placement flow: cells with physical
//! dimensions, multi-pin nets with switching activities, and directed pins
//! (drivers vs. sinks) that the power model of the placer needs.
//!
//! The representation is arena-based: cells, nets, and pins live in flat
//! vectors indexed by the newtype IDs [`CellId`], [`NetId`], and [`PinId`].
//! A [`Netlist`] is immutable once built; construct one through
//! [`NetlistBuilder`], which validates the design before freezing it into
//! compact connectivity arrays.
//!
//! # Example
//!
//! ```
//! use tvp_netlist::{NetlistBuilder, PinDirection};
//!
//! # fn main() -> Result<(), tvp_netlist::BuildNetlistError> {
//! let mut b = NetlistBuilder::new();
//! let a = b.add_cell("a", 1.0e-6, 2.0e-6);
//! let c = b.add_cell("c", 1.0e-6, 2.0e-6);
//! let n = b.add_net("n1");
//! b.connect(n, a, PinDirection::Output)?;
//! b.connect(n, c, PinDirection::Input)?;
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_cells(), 2);
//! assert_eq!(netlist.net(n).degree(), 2);
//! # Ok(())
//! # }
//! ```

mod cell;
mod error;
pub mod hash;
mod ids;
mod net;
mod netlist;
mod pin;
mod stats;

pub use cell::{Cell, CellKind};
pub use error::BuildNetlistError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CellId, NetId, PinId};
pub use net::Net;
pub use netlist::{Netlist, NetlistBuilder};
pub use pin::{Pin, PinDirection};
pub use stats::NetlistStats;
