//! Summary statistics of a netlist, for benchmark tables and sanity checks.

use crate::Netlist;
use std::fmt;

/// Aggregate statistics of a [`Netlist`], as printed in Table 1 of the paper
/// (`name`, `cells`, `area`) plus the connectivity figures that drive the
/// synthetic benchmark generator.
#[derive(Clone, PartialEq, Debug)]
pub struct NetlistStats {
    /// Number of cells.
    pub num_cells: usize,
    /// Number of movable cells.
    pub num_movable: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Number of pins.
    pub num_pins: usize,
    /// Total cell area, square meters.
    pub total_cell_area: f64,
    /// Mean net degree (pins per net).
    pub avg_net_degree: f64,
    /// Largest net degree.
    pub max_net_degree: usize,
    /// Mean pins per cell.
    pub avg_pins_per_cell: f64,
    /// Nets with fewer than two pins (degenerate for placement).
    pub degenerate_nets: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn compute(netlist: &Netlist) -> Self {
        let num_cells = netlist.num_cells();
        let num_nets = netlist.num_nets();
        let num_pins = netlist.num_pins();
        let num_movable = netlist.cells().iter().filter(|c| c.is_movable()).count();
        let max_net_degree = netlist.nets().iter().map(|n| n.degree()).max().unwrap_or(0);
        let degenerate_nets = netlist.nets().iter().filter(|n| n.degree() < 2).count();
        Self {
            num_cells,
            num_movable,
            num_nets,
            num_pins,
            total_cell_area: netlist.total_cell_area(),
            avg_net_degree: if num_nets == 0 {
                0.0
            } else {
                num_pins as f64 / num_nets as f64
            },
            max_net_degree,
            avg_pins_per_cell: if num_cells == 0 {
                0.0
            } else {
                num_pins as f64 / num_cells as f64
            },
            degenerate_nets,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells={} (movable={}), nets={}, pins={}, area={:.3e} m^2, avg net degree={:.2}, max={}, pins/cell={:.2}",
            self.num_cells,
            self.num_movable,
            self.num_nets,
            self.num_pins,
            self.total_cell_area,
            self.avg_net_degree,
            self.max_net_degree,
            self.avg_pins_per_cell,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{NetlistBuilder, PinDirection};

    #[test]
    fn computes_basic_stats() {
        let mut b = NetlistBuilder::new();
        let c1 = b.add_cell("a", 1.0, 1.0);
        let c2 = b.add_cell("b", 1.0, 1.0);
        let c3 = b.add_cell("c", 1.0, 1.0);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("lonely");
        b.connect(n1, c1, PinDirection::Output).unwrap();
        b.connect(n1, c2, PinDirection::Input).unwrap();
        b.connect(n1, c3, PinDirection::Input).unwrap();
        b.connect(n2, c3, PinDirection::Output).unwrap();
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.num_cells, 3);
        assert_eq!(stats.num_nets, 2);
        assert_eq!(stats.num_pins, 4);
        assert_eq!(stats.max_net_degree, 3);
        assert_eq!(stats.degenerate_nets, 1);
        assert!((stats.avg_net_degree - 2.0).abs() < 1e-12);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn empty_netlist_stats_are_zero() {
        let stats = NetlistBuilder::new().build().unwrap().stats();
        assert_eq!(stats.num_cells, 0);
        assert_eq!(stats.avg_net_degree, 0.0);
        assert_eq!(stats.avg_pins_per_cell, 0.0);
    }
}
