//! Newtype indices for the netlist arenas.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an ID from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index exceeds u32::MAX"))
            }

            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Index of a [`Cell`](crate::Cell) within a [`Netlist`](crate::Netlist).
    CellId,
    "c"
);
define_id!(
    /// Index of a [`Net`](crate::Net) within a [`Netlist`](crate::Netlist).
    NetId,
    "n"
);
define_id!(
    /// Index of a [`Pin`](crate::Pin) within a [`Netlist`](crate::Netlist).
    PinId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn displays_with_tag() {
        assert_eq!(CellId::new(7).to_string(), "c7");
        assert_eq!(NetId::new(9).to_string(), "n9");
        assert_eq!(PinId::new(0).to_string(), "p0");
    }

    #[test]
    fn orders_by_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(PinId::new(3), PinId::new(3));
    }

    #[test]
    #[should_panic(expected = "arena index exceeds u32::MAX")]
    fn rejects_oversized_index() {
        let _ = CellId::new(u32::MAX as usize + 1);
    }
}
