//! Standard cells and their physical properties.

use std::fmt;

/// How a cell may be handled by the placer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CellKind {
    /// An ordinary standard cell the placer is free to move.
    #[default]
    Movable,
    /// A pre-placed block or macro the placer must not move.
    Fixed,
    /// An I/O pad; fixed, and usually on the chip boundary.
    Pad,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Movable => "movable",
            CellKind::Fixed => "fixed",
            CellKind::Pad => "pad",
        };
        f.write_str(s)
    }
}

/// A standard cell: a named rectangle with a placement kind.
///
/// Dimensions are in meters, matching the rest of the flow (the DAC'07
/// experiments use the MIT-LL 0.18um 3D process, where a typical cell
/// width/height is on the order of 1e-6 m).
#[derive(Clone, PartialEq, Debug)]
pub struct Cell {
    name: String,
    width: f64,
    height: f64,
    kind: CellKind,
}

impl Cell {
    /// Creates a movable cell.
    ///
    /// Prefer building cells through
    /// [`NetlistBuilder`](crate::NetlistBuilder), which also wires up
    /// connectivity.
    pub fn new(name: impl Into<String>, width: f64, height: f64) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            kind: CellKind::Movable,
        }
    }

    /// Creates a cell with an explicit [`CellKind`].
    pub fn with_kind(name: impl Into<String>, width: f64, height: f64, kind: CellKind) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            kind,
        }
    }

    /// The cell's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width in meters (x extent).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell height in meters (y extent).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Footprint area in square meters.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The placement kind of this cell.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Whether the placer may move this cell.
    pub fn is_movable(&self) -> bool {
        self.kind == CellKind::Movable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_width_times_height() {
        let c = Cell::new("x", 2.0, 3.0);
        assert_eq!(c.area(), 6.0);
        assert!(c.is_movable());
    }

    #[test]
    fn kind_controls_movability() {
        let c = Cell::with_kind("io", 1.0, 1.0, CellKind::Pad);
        assert!(!c.is_movable());
        assert_eq!(c.kind(), CellKind::Pad);
        assert_eq!(c.kind().to_string(), "pad");
    }
}
