//! A fast, non-cryptographic hasher for hot-path maps and sets.
//!
//! The std `HashMap` defaults to SipHash-1-3, whose per-insert cost
//! dominates million-entry builder workloads (duplicate-connection sets,
//! name→id maps during Bookshelf ingest). This is the well-known
//! Fx/FireFox hash: one multiply-rotate-xor round per 8 input bytes.
//! It is *not* DoS-resistant — use it only on trusted inputs such as
//! benchmark files and internally generated keys.

use std::hash::{BuildHasherDefault, Hasher};

/// One round of the Fx mix: rotate, xor the new word in, multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (xor-shift-multiply, as in splitmix64). The raw
        // Fx state is weak in its low bits — after the last multiply they
        // depend only on the low input bytes — and hashbrown selects
        // buckets from exactly those bits, which collapses key sets with
        // shared short prefixes ("c0".."c999999") into a handful of
        // buckets. One extra multiply per lookup fixes that for good.
        let h = self.hash;
        let h = (h ^ (h >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[..8]);
            self.mix(u64::from_le_bytes(word));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            // Fold the tail length in so "a" and "a\0" differ.
            word[7] = bytes.len() as u8;
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_basic_keys() {
        let mut set = FxHashSet::default();
        for i in 0..1000u32 {
            assert!(set.insert((i, i.wrapping_mul(7))));
        }
        for i in 0..1000u32 {
            assert!(!set.insert((i, i.wrapping_mul(7))));
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn string_keys_work_and_tails_differ() {
        let mut map = FxHashMap::default();
        map.insert("a".to_string(), 1);
        map.insert("a\0".to_string(), 2);
        map.insert("abcdefgh".to_string(), 3);
        map.insert("abcdefghi".to_string(), 4);
        assert_eq!(map.len(), 4);
        assert_eq!(map["a"], 1);
        assert_eq!(map["abcdefghi"], 4);
    }
}
