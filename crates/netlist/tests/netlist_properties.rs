//! Property-based tests for the netlist builder and arena invariants.

use proptest::prelude::*;
use tvp_netlist::{CellId, NetId, NetlistBuilder, PinDirection};

/// A random but always-valid construction plan: cell sizes plus a list of
/// (net, cells-on-net) with the first cell as driver.
fn construction_plan() -> impl Strategy<Value = (Vec<(f64, f64)>, Vec<Vec<usize>>)> {
    let cells = prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..40);
    cells.prop_flat_map(|cells| {
        let n = cells.len();
        let nets =
            prop::collection::vec(prop::collection::hash_set(0..n, 1..(n + 1).min(8)), 0..60)
                .prop_map(|nets| {
                    nets.into_iter()
                        .map(|s| s.into_iter().collect::<Vec<_>>())
                        .collect::<Vec<_>>()
                });
        (Just(cells), nets)
    })
}

proptest! {
    #[test]
    fn built_netlist_invariants((cells, nets) in construction_plan()) {
        let mut b = NetlistBuilder::new();
        let cell_ids: Vec<CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| b.add_cell(format!("c{i}"), w, h))
            .collect();
        let mut net_ids: Vec<NetId> = Vec::new();
        for (i, members) in nets.iter().enumerate() {
            let nid = b.add_net(format!("n{i}"));
            net_ids.push(nid);
            for (j, &m) in members.iter().enumerate() {
                let dir = if j == 0 { PinDirection::Output } else { PinDirection::Input };
                b.connect(nid, cell_ids[m], dir).unwrap();
            }
        }
        let nl = b.build().unwrap();

        // Pin count conservation: sum over nets == sum over cells == arena size.
        let by_net: usize = nl.nets().iter().map(|n| n.degree()).sum();
        let by_cell: usize = (0..nl.num_cells())
            .map(|i| nl.cell_pins(CellId::new(i)).len())
            .sum();
        prop_assert_eq!(by_net, nl.num_pins());
        prop_assert_eq!(by_cell, nl.num_pins());

        // Every net's pin points back at the net; exactly one driver when
        // the net is non-empty; inputs + driver == degree.
        for (nid, net) in nl.iter_nets() {
            let mut drivers = 0usize;
            for &pid in nl.net_pins(nid) {
                let pin = nl.pin(pid);
                prop_assert_eq!(pin.net(), nid);
                if pin.is_driver() {
                    drivers += 1;
                }
            }
            prop_assert_eq!(drivers, usize::from(net.degree() > 0));
            prop_assert_eq!(net.num_input_pins() + drivers, net.degree());
        }

        // Total area is the sum of declared areas.
        let expected_area: f64 = cells.iter().map(|&(w, h)| w * h).sum();
        prop_assert!((nl.total_cell_area() - expected_area).abs() <= 1e-9 * expected_area.max(1.0));

        // Stats agree with direct counts.
        let stats = nl.stats();
        prop_assert_eq!(stats.num_cells, cells.len());
        prop_assert_eq!(stats.num_nets, nets.len());
        prop_assert_eq!(stats.num_pins, nl.num_pins());
    }

    #[test]
    fn duplicate_connections_always_rejected(n_cells in 1usize..10, pairs in prop::collection::vec((0usize..10, 0usize..5), 1..30)) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<CellId> = (0..n_cells).map(|i| b.add_cell(format!("c{i}"), 1.0, 1.0)).collect();
        let nets: Vec<NetId> = (0..5).map(|i| b.add_net(format!("n{i}"))).collect();
        let mut seen = std::collections::HashSet::new();
        for (c, n) in pairs {
            let c = c % n_cells;
            let result = b.connect(nets[n], cells[c], PinDirection::Input);
            if seen.insert((c, n)) {
                prop_assert!(result.is_ok());
            } else {
                prop_assert!(result.is_err());
            }
        }
    }
}
