//! A vendored, dependency-free subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace routes
//! its `criterion` dev-dependency here (Cargo `package =` renaming) and
//! the `benches/*.rs` files compile unchanged.
//!
//! The statistical machinery is intentionally simple: each benchmark is
//! warmed up briefly, then timed for `sample_size` samples where every
//! sample runs enough iterations to cover a minimum measurable window.
//! Results (mean / median / min per iteration) print to stdout in a
//! stable, grep-friendly format. There are no HTML reports, baselines, or
//! outlier analysis.
//!
//! Like real criterion harnesses, a positional CLI argument filters
//! benchmarks by substring, and `--list` prints names without running —
//! both also swallow the flags `cargo bench`/`cargo test` pass to
//! `harness = false` targets.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
    /// Default sample count (overridable per group).
    sample_size: usize,
}

impl Criterion {
    fn from_args() -> Self {
        let mut filter = None;
        let mut list_only = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--list" => list_only = true,
                // Flags cargo's harness protocol passes; `--exact` and
                // `--nocapture` arrive from `cargo test --benches`.
                "--bench" | "--test" | "--exact" | "--nocapture" | "--quiet" | "-q" => {}
                "--format" | "--logfile" => {
                    args.next();
                }
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        // `cargo test` compiles harness=false bench targets and runs them
        // with `--test`: keep that invocation fast by only listing.
        if std::env::args().any(|a| a == "--test") {
            list_only = true;
        }
        Self {
            filter,
            list_only,
            sample_size: 20,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        run_benchmark(self, &name, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs `f` as the benchmark `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(self.criterion, &name, samples, f);
        self
    }

    /// Runs `f(bencher, input)` as the benchmark `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`group/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    /// Per-iteration times, one entry per sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value live via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapse (at least once) to fault in
        // caches and let the routine reach steady state.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Each sample runs enough iterations to cover ~5ms so that timer
        // granularity is negligible; slow routines run once per sample.
        let iters_per_sample =
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    samples: usize,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.list_only {
        println!("{name}: benchmark");
        return;
    }
    let mut bencher = Bencher {
        samples: samples.max(1),
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{name:<50} (no measurement: bencher.iter never called)");
        return;
    }
    bencher.results.sort_unstable();
    let min = bencher.results[0];
    let median = bencher.results[bencher.results.len() / 2];
    let mean = bencher.results.iter().sum::<Duration>() / bencher.results.len() as u32;
    println!(
        "{name:<50} median {:>12} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        bencher.results.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::__new_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

impl Criterion {
    /// Used by `criterion_main!`; not part of the public criterion API.
    #[doc(hidden)]
    pub fn __new_from_args() -> Self {
        Self::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("solve", "8x8").to_string(), "solve/8x8");
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 3,
            results: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn fmt_duration_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
