//! A vendored, dependency-free subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! The build environment has no crates.io access, so the workspace routes
//! its `proptest` dev-dependency here (Cargo `package =` renaming); the
//! property tests compile unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case number;
//!   re-running is fully deterministic (seeds derive from the test's
//!   module path and name), so failures reproduce exactly.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning a `TestCaseError`.
//! * Regex string strategies support the subset actually used here:
//!   character classes, literals, escapes, and `{m,n}`/`{m}`/`*`/`+`/`?`
//!   repetition.
//! * The default case count is 64 (vs 256) to keep tier-1 CI fast.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.random_range(0..2u32) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.random_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary + core::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `prop` namespace (`prop::collection::vec`, `prop::option::of`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy};
        use crate::test_runner::TestRng;
        use std::collections::HashSet;
        use std::hash::Hash;

        /// `Vec` of values from `element`, length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`](vec()).
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `HashSet` of values from `element`, cardinality drawn from
        /// `size`. Duplicates are redrawn (bounded); if the value space is
        /// too small the set may come up short of the minimum, like
        /// proptest under exhausted rejections.
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`hash_set`].
        #[derive(Clone, Debug)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.draw(rng);
                let mut out = HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while out.len() < target && attempts < 64 * (target + 1) {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngExt;

        /// `Option` that is `Some` with probability one half.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy { element }
        }

        /// Strategy returned by [`of`].
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.rng.random_range(0..2u32) == 1 {
                    Some(self.element.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case if the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each function runs its body once per case with
/// fresh strategy draws.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ( $( $pat, )+ ) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                // Allow prop_assume! to skip the case via `continue`.
                #[allow(clippy::redundant_closure_call)]
                { $body }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            x in 1usize..10,
            f in -1.0f64..1.0,
            v in prop::collection::vec((0u32..5, any::<bool>()), 2..6),
            s in prop::collection::hash_set(0usize..20, 1..8),
            o in prop::option::of(3u16..9),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&(a, _)| a < 5));
            prop_assert!(!s.is_empty() && s.len() < 8);
            if let Some(y) = o {
                prop_assert!((3..9).contains(&y));
            }
        }

        #[test]
        fn flat_map_and_just(
            (n, picks) in (2usize..10).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..n, 1..4))
            })
        ) {
            prop_assert!(picks.iter().all(|&p| p < n));
        }

        #[test]
        fn regex_strings(name in "[a-z][a-z0-9_]{0,8}", noise in "[ -~\n]{0,40}") {
            prop_assert!(!name.is_empty() && name.len() <= 9);
            let first = name.chars().next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(noise.len() <= 40);
            prop_assert!(noise.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::prop::collection::vec(0u32..1000, 5..20);
        let a = strat.generate(&mut TestRng::for_case("x", 3));
        let b = strat.generate(&mut TestRng::for_case("x", 3));
        let c = strat.generate(&mut TestRng::for_case("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
