//! Test-runner configuration and the deterministic per-case RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 to keep tier-1 fast.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies.
///
/// Seeding is a pure function of the fully qualified test name and the
/// case index, so every failure reproduces exactly on re-run — the
/// replacement for proptest's persistence file.
pub struct TestRng {
    /// The underlying generator (strategies sample through this).
    pub rng: SmallRng,
}

impl TestRng {
    /// The RNG for case `case` of the test named `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = fnv1a(test_name.as_bytes());
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            rng: SmallRng::seed_from_u64(h),
        }
    }
}

/// FNV-1a: tiny, stable across platforms and compiler versions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let mut a = TestRng::for_case("mod::test", 0);
        let mut a2 = TestRng::for_case("mod::test", 0);
        let mut b = TestRng::for_case("mod::test", 1);
        let mut c = TestRng::for_case("mod::other", 0);
        let wa: Vec<u64> = (0..4).map(|_| a.rng.next_u64()).collect();
        let wa2: Vec<u64> = (0..4).map(|_| a2.rng.next_u64()).collect();
        let wb: Vec<u64> = (0..4).map(|_| b.rng.next_u64()).collect();
        let wc: Vec<u64> = (0..4).map(|_| c.rng.next_u64()).collect();
        assert_eq!(wa, wa2);
        assert_ne!(wa, wb);
        assert_ne!(wa, wc);
    }
}
