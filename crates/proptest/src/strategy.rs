//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f` builds
    /// out of that value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 rejections: {}", self.whence);
    }
}

/// Always generates a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A collection-size specification: an exact count or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl SizeRange {
    pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// String strategies from a regex-like pattern (`&str` literals).
///
/// Supported: literals, `\n`/`\t`/`\\`-style escapes, character classes
/// with ranges (`[a-z0-9_]`, `[ -~\n]`), and postfix `{m}`, `{m,n}`, `*`,
/// `+`, `?` (star/plus cap at 8 repetitions). This covers every pattern in
/// the workspace's tests; unsupported syntax panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                rng.rng.random_range(*lo..=*hi)
            };
            for _ in 0..n {
                out.push(chars[rng.rng.random_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parses the mini-regex into `(alternatives, min_reps, max_reps)` atoms.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alternatives = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let class: Vec<char> = chars[i + 1..i + close].to_vec();
                i += close + 1;
                expand_class(&class, pattern)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars.get(i).copied(), pattern);
                i += 1;
                vec![c]
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        // Optional repetition postfix.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let spec: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((alternatives, lo, hi));
    }
    atoms
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        class.first() != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = if class[i] == '\\' {
            i += 1;
            unescape(class.get(i).copied(), pattern)
        } else {
            class[i]
        };
        // `a-z` range (a `-` in the last position is a literal).
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let end = if class[i + 2] == '\\' {
                i += 1;
                unescape(class.get(i + 2).copied(), pattern)
            } else {
                class[i + 2]
            };
            assert!(c <= end, "reversed class range in pattern {pattern:?}");
            for v in c..=end {
                out.push(v);
            }
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    assert!(
        !out.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    out
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(c) => c,
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}
