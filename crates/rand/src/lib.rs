//! A vendored, dependency-free implementation of the subset of the
//! [`rand`](https://crates.io/crates/rand) 0.10 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace routes its `rand` dependency at this crate (via Cargo's
//! `package =` renaming). Consumer code is unchanged: it still writes
//! `use rand::rngs::SmallRng` etc.
//!
//! Supported surface:
//!
//! * [`rngs::SmallRng`] — a fast, seedable, non-cryptographic generator
//!   (xoshiro256++ with SplitMix64 seed expansion).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`RngExt::random_range`] over integer and float ranges.
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism is part of the contract: the whole placer keys its
//! reproducibility guarantees off fixed seeds, so every method here is a
//! pure function of the generator state.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// distinct seeds give well-separated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed expander for xoshiro generators.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm `rand`'s `SmallRng` family uses on
    /// 64-bit platforms. Fast, 256-bit state, passes BigCrush.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // A xoshiro state must not be all zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                super::splitmix64(&mut sm),
                super::splitmix64(&mut sm),
                super::splitmix64(&mut sm),
                super::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers samplable through the blanket [`SampleRange`] impls.
///
/// A single blanket impl per range shape (rather than one impl per
/// integer type) matters for inference: it lets `rng.random_range(1..20)`
/// pick up the integer type from surrounding arithmetic, exactly as real
/// rand's generic `SampleUniform` impl does.
pub trait UniformInt: Copy + PartialOrd {
    /// Two's-complement image in `u64` (sign-extending for signed types).
    fn to_u64(self) -> u64;
    /// Truncating inverse of [`UniformInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    (unsigned: $($u:ty),*; signed: $($s:ty),*) => {
        $(impl UniformInt for $u {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $u }
        })*
        $(impl UniformInt for $s {
            #[inline]
            fn to_u64(self) -> u64 { self as i64 as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $s }
        })*
    };
}
impl_uniform_int!(unsigned: u8, u16, u32, u64, usize; signed: i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        // Lemire multiply-shift: unbiased enough for simulation use and,
        // crucially, deterministic with exactly one draw.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(self.start.to_u64().wrapping_add(hi))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.to_u64().wrapping_sub(start.to_u64());
        if span == u64::MAX {
            // Full 64-bit domain: every word is a valid draw.
            return T::from_u64(rng.next_u64());
        }
        let hi = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
        T::from_u64(start.to_u64().wrapping_add(hi))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Closed interval: scale by the full span; the top value is
        // reachable (with negligible probability mass, as in rand).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Types drawable uniformly over their standard domain by
/// [`RngExt::random`] (floats: `[0, 1)`; integers: full range).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods on any [`RngCore`] (the `rand` 0.10 name
/// for what earlier versions called `Rng`).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Standard-distribution draw (floats in `[0, 1)`, full-range ints).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling, Fisher–Yates.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(0..=4u16);
            assert!(i <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements: unmoved is ~impossible"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn float_unit_range_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let f = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
