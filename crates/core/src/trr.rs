//! Thermal resistance reduction nets (paper §3.2, Eq. 9–15).
//!
//! Each cell gets one virtual two-pin net connecting it to the bottom of
//! the chip (the heat sink), weighted by
//!
//! ```text
//! nw_j^cell = α_TEMP · P_j^cell · Rz_slope
//! ```
//!
//! so that min-cut partitioning in the z direction pulls high-power cells
//! toward layers with lower thermal resistance. Because every cell starts
//! at the chip center — where all wirelengths and via counts are zero —
//! `P_j^cell` would vanish; the paper substitutes PEKO-style *optimal*
//! lower bounds for each driven net's wirelength (Eq. 13–14) and via count
//! (Eq. 15), extended to 3D.

use crate::objective::{IncrementalObjective, ObjectiveModel};
use tvp_netlist::{CellId, NetId, Netlist};
use tvp_thermal::VerticalProfile;

/// The PEKO-3D lower bounds for one net (Eq. 13–15).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetLowerBounds {
    /// Optimal x-direction wirelength, meters.
    pub wl_x: f64,
    /// Optimal y-direction wirelength, meters.
    pub wl_y: f64,
    /// Optimal interlayer via count.
    pub ilv: f64,
}

/// Computes the Eq. 13–15 bounds for net `i`.
///
/// `w_ave`/`h_ave` are the mean width/height of the net's cells. The
/// derivation packs the net's `n` pins into the smallest cube (in the
/// objective's metric, where one via costs `α_ILV` meters of wire):
///
/// * volume per pin ≈ `w_ave · h_ave · α_ILV`, so the cube side is the cube
///   root of `α_ILV · w_ave · h_ave · n`;
/// * the optimal lateral span subtracts the cell's own extent, and
/// * the optimal via count is the cube side divided by `α_ILV`, minus one.
pub fn net_lower_bounds(netlist: &Netlist, net: NetId, alpha_ilv: f64) -> NetLowerBounds {
    let pins = netlist.net_pins(net);
    let n = pins.len();
    if n < 2 {
        return NetLowerBounds {
            wl_x: 0.0,
            wl_y: 0.0,
            ilv: 0.0,
        };
    }
    let mut w_sum = 0.0;
    let mut h_sum = 0.0;
    for &p in pins {
        let cell = netlist.cell(netlist.pin(p).cell());
        w_sum += cell.width();
        h_sum += cell.height();
    }
    let w_ave = w_sum / n as f64;
    let h_ave = h_sum / n as f64;
    let cube = (alpha_ilv * w_ave * h_ave * n as f64).cbrt();
    NetLowerBounds {
        wl_x: (cube - w_ave).max(0.0),
        wl_y: (cube - h_ave).max(0.0),
        ilv: (cube / alpha_ilv - 1.0).max(0.0),
    }
}

/// One thermal resistance reduction net: a virtual pull from `cell` toward
/// the bottom of the chip with strength `weight` (Eq. 12).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrrNet {
    /// The cell being pulled toward the heat sink.
    pub cell: CellId,
    /// Net weight `α_TEMP · P_j^cell · Rz_slope`.
    pub weight: f64,
}

/// All TRR nets for a design, rebuilt whenever cell powers change.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TrrNets {
    nets: Vec<TrrNet>,
}

impl TrrNets {
    /// No TRR nets (thermal placement off).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds one TRR net per movable cell from the current state of the
    /// objective evaluator.
    ///
    /// With `peko_floors`, `P_j^cell` uses the *floored* per-net geometry:
    /// if a driven net's current wirelength or via count is below its
    /// PEKO-3D optimum, the optimum is used instead (paper §3.2), so the
    /// weights are meaningful even when everything still sits at the chip
    /// center. Disabling the floors (ablation) makes the start-of-
    /// placement weights collapse to the pin-capacitance term only.
    pub fn build(
        netlist: &Netlist,
        model: &ObjectiveModel,
        objective: &IncrementalObjective<'_>,
        profile: &VerticalProfile,
        peko_floors: bool,
    ) -> Self {
        let alpha_temp = model.alpha_temp;
        if alpha_temp == 0.0 {
            return Self::none();
        }
        let alpha_ilv = model.alpha_ilv;
        let power = model.power();
        let mut nets = Vec::with_capacity(netlist.num_cells());
        for (cell_id, cell) in netlist.iter_cells() {
            if !cell.is_movable() {
                continue;
            }
            let mut p_cell = power.leakage_per_cell();
            for e in netlist.driven_nets(cell_id) {
                let g = objective.net_geometry(e);
                let (wl, ilv) = if peko_floors {
                    let bounds = net_lower_bounds(netlist, e, alpha_ilv);
                    (
                        g.wirelength().max(bounds.wl_x + bounds.wl_y),
                        g.ilv.max(bounds.ilv),
                    )
                } else {
                    (g.wirelength(), g.ilv)
                };
                p_cell += power.net_power(e, wl, ilv);
            }
            if p_cell > 0.0 {
                nets.push(TrrNet {
                    cell: cell_id,
                    weight: alpha_temp * p_cell * profile.slope,
                });
            }
        }
        Self { nets }
    }

    /// The TRR nets.
    pub fn nets(&self) -> &[TrrNet] {
        &self.nets
    }

    /// Whether there are no TRR nets.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Number of TRR nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chip, Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn fixture(alpha_temp: f64) -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 100, 5.0e-10)).unwrap();
        let config = PlacerConfig::new(4).with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    #[test]
    fn bounds_grow_with_fanout_and_alpha() {
        let (netlist, _, _) = fixture(0.0);
        // Find a high-fanout and a 2-pin net.
        let mut big = None;
        let mut small = None;
        for e in 0..netlist.num_nets() {
            let d = netlist.net(NetId::new(e)).degree();
            if d >= 6 && big.is_none() {
                big = Some(NetId::new(e));
            }
            if d == 2 && small.is_none() {
                small = Some(NetId::new(e));
            }
        }
        let (big, small) = (big.expect("fanout net"), small.expect("2-pin net"));
        // Large α_ILV: optimal packing is lateral, wirelength floors are
        // positive and grow with fanout.
        let b_big = net_lower_bounds(&netlist, big, 1e-4);
        let b_small = net_lower_bounds(&netlist, small, 1e-4);
        assert!(b_big.wl_x > b_small.wl_x);
        // Small α_ILV: optimal packing uses several layers, via floors are
        // positive and grow with fanout.
        let v_big = net_lower_bounds(&netlist, big, 1e-7);
        let v_small = net_lower_bounds(&netlist, small, 1e-7);
        assert!(v_big.ilv > v_small.ilv);
        // Larger α_ILV → optimal solution uses fewer vias.
        let b_cheap = net_lower_bounds(&netlist, big, 1e-7);
        let b_dear = net_lower_bounds(&netlist, big, 1e-3);
        assert!(b_cheap.ilv > b_dear.ilv);
        assert!(b_cheap.wl_x < b_dear.wl_x);
    }

    #[test]
    fn bounds_are_nonnegative_and_zero_for_degenerate_nets() {
        let (netlist, _, _) = fixture(0.0);
        for e in 0..netlist.num_nets() {
            let b = net_lower_bounds(&netlist, NetId::new(e), 1e-5);
            assert!(b.wl_x >= 0.0 && b.wl_y >= 0.0 && b.ilv >= 0.0);
        }
    }

    #[test]
    fn trr_weights_are_positive_at_centered_start() {
        // This is the whole point of the PEKO floors: the centered start
        // has zero WL everywhere, yet TRR weights must not vanish.
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let profile = model.resistance().vertical_profile(chip.avg_cell_area);
        let trr = TrrNets::build(&netlist, &model, &obj, &profile, true);
        assert!(!trr.is_empty());
        for net in trr.nets() {
            assert!(net.weight > 0.0, "cell {} weight 0", net.cell);
        }
        // Ablation: without the PEKO floors the centered start has zero
        // WL/ILV, leaving only the pin-capacitance power — strictly
        // smaller weights.
        let unfloored = TrrNets::build(&netlist, &model, &obj, &profile, false);
        let sum = |t: &TrrNets| t.nets().iter().map(|n| n.weight).sum::<f64>();
        assert!(sum(&unfloored) < sum(&trr));
    }

    #[test]
    fn zero_alpha_temp_builds_nothing() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let profile = model.resistance().vertical_profile(chip.avg_cell_area);
        let trr = TrrNets::build(&netlist, &model, &obj, &profile, true);
        assert!(trr.is_empty());
        assert_eq!(TrrNets::none().len(), 0);
    }

    #[test]
    fn high_power_cells_get_stronger_pull() {
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let profile = model.resistance().vertical_profile(chip.avg_cell_area);
        let trr = TrrNets::build(&netlist, &model, &obj, &profile, true);
        // Weight ordering must track the floored cell power ordering.
        let weights: Vec<(CellId, f64)> = trr.nets().iter().map(|t| (t.cell, t.weight)).collect();
        assert!(weights.len() > 2);
        let max = weights.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        let min = weights
            .iter()
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min);
        assert!(max > min, "weights must differentiate cells");
    }
}
