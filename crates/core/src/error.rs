//! Placement errors.

use std::error::Error;
use std::fmt;
use tvp_thermal::ThermalError;

/// Error returned by the placer.
#[derive(Clone, PartialEq, Debug)]
pub enum PlaceError {
    /// The configuration is inconsistent (non-positive coefficient, zero
    /// layers, ...).
    InvalidConfig {
        /// Which parameter was rejected.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The netlist cannot be placed (no movable cells).
    EmptyNetlist,
    /// The thermal model rejected the derived chip geometry.
    Thermal(ThermalError),
    /// Detailed legalization produced an illegal placement. This indicates
    /// an internal invariant violation, not bad input; please report it.
    LegalizationFailed {
        /// Human-readable description of the first violation found.
        violation: String,
    },
    /// A checkpoint could not be written, read, or matched to this run.
    Checkpoint {
        /// The checkpoint directory or file involved.
        path: String,
        /// What went wrong (I/O failure, corrupt manifest, or a manifest
        /// recorded by an incompatible netlist/config/stage plan).
        reason: String,
    },
}

impl PlaceError {
    /// Whether a fresh attempt of the same run could plausibly succeed.
    ///
    /// Supervisors (the `tvp serve` daemon, batch drivers) use this to
    /// split failures into *retry with backoff* versus *fail fast*:
    ///
    /// * [`LegalizationFailed`](Self::LegalizationFailed) and
    ///   [`Checkpoint`](Self::Checkpoint) are environmental or
    ///   state-dependent (internal invariant raced, disk hiccup, stale or
    ///   quarantined checkpoint) — a retry, possibly resuming from the
    ///   last good checkpoint, is worth attempting.
    /// * [`InvalidConfig`](Self::InvalidConfig),
    ///   [`EmptyNetlist`](Self::EmptyNetlist), and
    ///   [`Thermal`](Self::Thermal) are deterministic properties of the
    ///   input; retrying reproduces the same failure.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PlaceError::LegalizationFailed { .. } | PlaceError::Checkpoint { .. }
        )
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::InvalidConfig { name, value } => {
                write!(f, "invalid placer configuration: `{name}` = {value}")
            }
            PlaceError::EmptyNetlist => write!(f, "netlist has no movable cells"),
            PlaceError::Thermal(e) => write!(f, "thermal model error: {e}"),
            PlaceError::LegalizationFailed { violation } => {
                write!(
                    f,
                    "detailed legalization produced an illegal placement: {violation}"
                )
            }
            PlaceError::Checkpoint { path, reason } => {
                write!(f, "checkpoint error at `{path}`: {reason}")
            }
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for PlaceError {
    fn from(e: ThermalError) -> Self {
        PlaceError::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = PlaceError::InvalidConfig {
            name: "alpha_ilv",
            value: -1.0,
        };
        assert!(e.to_string().contains("alpha_ilv"));
        assert!(PlaceError::EmptyNetlist.to_string().contains("movable"));
    }

    #[test]
    fn legalization_and_checkpoint_errors_carry_context() {
        let e = PlaceError::LegalizationFailed {
            violation: "cell c17 overlaps c18 in row 3".into(),
        };
        assert!(e.to_string().contains("c17"));
        let e = PlaceError::Checkpoint {
            path: "/tmp/ckpt".into(),
            reason: "fingerprint mismatch".into(),
        };
        assert!(e.to_string().contains("/tmp/ckpt"));
        assert!(e.to_string().contains("fingerprint"));
    }

    #[test]
    fn retryability_splits_environmental_from_input_errors() {
        assert!(PlaceError::LegalizationFailed {
            violation: "overlap".into()
        }
        .is_retryable());
        assert!(PlaceError::Checkpoint {
            path: "/tmp/ckpt".into(),
            reason: "io".into()
        }
        .is_retryable());
        assert!(!PlaceError::EmptyNetlist.is_retryable());
        assert!(!PlaceError::InvalidConfig {
            name: "alpha_ilv",
            value: -1.0
        }
        .is_retryable());
        assert!(!PlaceError::Thermal(ThermalError::InvalidParameter {
            name: "conductivity",
            value: 0.0
        })
        .is_retryable());
    }

    #[test]
    fn wraps_thermal_errors() {
        let e = PlaceError::from(ThermalError::InvalidParameter {
            name: "conductivity",
            value: 0.0,
        });
        assert!(e.source().is_some());
    }
}
