//! Placement errors.

use std::error::Error;
use std::fmt;
use tvp_thermal::ThermalError;

/// Error returned by the placer.
#[derive(Clone, PartialEq, Debug)]
pub enum PlaceError {
    /// The configuration is inconsistent (non-positive coefficient, zero
    /// layers, ...).
    InvalidConfig {
        /// Which parameter was rejected.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The netlist cannot be placed (no movable cells).
    EmptyNetlist,
    /// The thermal model rejected the derived chip geometry.
    Thermal(ThermalError),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::InvalidConfig { name, value } => {
                write!(f, "invalid placer configuration: `{name}` = {value}")
            }
            PlaceError::EmptyNetlist => write!(f, "netlist has no movable cells"),
            PlaceError::Thermal(e) => write!(f, "thermal model error: {e}"),
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for PlaceError {
    fn from(e: ThermalError) -> Self {
        PlaceError::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = PlaceError::InvalidConfig {
            name: "alpha_ilv",
            value: -1.0,
        };
        assert!(e.to_string().contains("alpha_ilv"));
        assert!(PlaceError::EmptyNetlist.to_string().contains("movable"));
    }

    #[test]
    fn wraps_thermal_errors() {
        let e = PlaceError::from(ThermalError::InvalidParameter {
            name: "conductivity",
            value: 0.0,
        });
        assert!(e.source().is_some());
    }
}
