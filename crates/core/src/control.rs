//! Run control: cooperative cancellation and wall-clock time budgets.
//!
//! Both signals are checked only at stage and pass boundaries (DESIGN.md
//! §9 lists every point), so stopping is always graceful: the engine
//! finishes the move it is on, legalizes the best placement it has, and
//! returns `Ok` with [`stopped_early`](crate::PlacementResult::stopped_early)
//! set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation token, cloneable across threads.
///
/// Cancelling never aborts mid-move: the pipeline notices the token at
/// its next stage or pass boundary, legalizes what it has, and returns a
/// normal result marked `stopped_early`.
///
/// # Example
///
/// ```
/// use tvp_core::CancelToken;
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The engine-side view of one run's stop conditions: the user's token
/// (if any) plus the deadline derived from the time budget at run start.
#[derive(Clone, Debug, Default)]
pub(crate) struct StopCheck {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl StopCheck {
    /// Resolves the public options into concrete stop conditions, pinning
    /// the deadline to "now + budget".
    pub(crate) fn new(cancel: Option<CancelToken>, time_budget: Option<Duration>) -> Self {
        Self {
            cancel,
            deadline: time_budget.map(|b| Instant::now() + b),
        }
    }

    /// Whether any stop condition is attached at all. Unarmed runs hand
    /// `None` down to the parallel kernels so their hot loops skip the
    /// poll entirely.
    pub(crate) fn is_armed(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Whether the pipeline should stop at the next boundary.
    pub(crate) fn should_stop(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn stop_check_honors_token_and_deadline() {
        let none = StopCheck::new(None, None);
        assert!(!none.should_stop());

        let token = CancelToken::new();
        let check = StopCheck::new(Some(token.clone()), None);
        assert!(!check.should_stop());
        token.cancel();
        assert!(check.should_stop());

        let expired = StopCheck::new(None, Some(Duration::ZERO));
        assert!(expired.should_stop());
        let generous = StopCheck::new(None, Some(Duration::from_secs(3600)));
        assert!(!generous.should_stop());
    }
}
