//! Legality-preserving refinement of a placed design (paper §6: the
//! coarse/detailed machinery "can be repeated during a post-optimization
//! phase"; this pass keeps the placement legal the whole time).
//!
//! Three local move kinds, each priced with the exact objective delta and
//! executed only when strictly improving:
//!
//! 1. **Slide** — move a cell within the free gap between its row
//!    neighbors toward its optimal x.
//! 2. **Adjacent swap** — exchange two neighboring cells in a row (always
//!    legal: the pair re-packs inside its own span).
//! 3. **Gap hop** — move a cell into a free gap of a nearby row (same or
//!    adjacent layer) when the gap fits it.

use crate::objective::{CellMove, IncrementalObjective};
use crate::observer::PassEvent;
use crate::thermal_pricer::ThermalMovePricer;
use crate::Chip;
use std::ops::ControlFlow;
use tvp_netlist::{CellId, Netlist};

/// Row occupancy built from a legal placement: cells sorted by x per
/// (layer, row).
struct Rows {
    /// `(x_left, width, cell)` per (layer, row), sorted by `x_left`.
    cells: Vec<Vec<Vec<(f64, f64, CellId)>>>,
}

impl Rows {
    fn build(objective: &IncrementalObjective<'_>, netlist: &Netlist, chip: &Chip) -> Self {
        let mut cells = vec![vec![Vec::new(); chip.num_rows]; chip.num_layers];
        for (cell, x, y, layer) in objective.placement().iter() {
            if !netlist.cell(cell).is_movable() {
                continue;
            }
            let w = netlist.cell(cell).area() / chip.row_height;
            let row = chip.nearest_row(y);
            cells[(layer as usize).min(chip.num_layers - 1)][row].push((x - w / 2.0, w, cell));
        }
        for layer in &mut cells {
            for row in layer {
                row.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
        }
        Self { cells }
    }

    /// The free interval around entry `i` of a row: `(gap_left, gap_right)`
    /// bounds for the cell's left edge.
    fn slack(&self, layer: usize, row: usize, i: usize, chip: &Chip) -> (f64, f64) {
        let entries = &self.cells[layer][row];
        let (_, w, _) = entries[i];
        let lo = if i == 0 {
            0.0
        } else {
            entries[i - 1].0 + entries[i - 1].1
        };
        let hi = if i + 1 < entries.len() {
            entries[i + 1].0
        } else {
            chip.width
        } - w;
        (lo, hi)
    }
}

/// Statistics of one refinement run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct RefineStats {
    /// Slides executed.
    pub slides: usize,
    /// Adjacent swaps executed.
    pub swaps: usize,
    /// Gap hops executed.
    pub hops: usize,
    /// Total objective improvement (positive = better).
    pub improvement: f64,
}

/// Runs `passes` rounds of legality-preserving refinement. The placement
/// stays fully legal after every individual move.
pub fn refine_legal(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    passes: usize,
) -> RefineStats {
    let (stats, _interrupted) =
        refine_legal_observed(objective, netlist, chip, passes, &mut |_| {
            ControlFlow::Continue(())
        });
    stats
}

/// [`refine_legal`] with a pass-boundary probe: after every pass the probe
/// receives a [`PassEvent::RefinePass`] and may return
/// [`ControlFlow::Break`] to stop refinement there. Every move preserves
/// legality, so stopping between passes is always safe.
///
/// Returns the stats plus whether refinement was interrupted. The probe
/// never changes the moves made.
pub fn refine_legal_observed(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    passes: usize,
    probe: &mut dyn FnMut(PassEvent) -> ControlFlow<()>,
) -> (RefineStats, bool) {
    refine_legal_priced(objective, netlist, chip, passes, None, probe)
}

/// [`refine_legal_observed`] with optional per-move thermal pricing: an
/// armed pricer (compact tier + `alpha_temp > 0`) adds the frozen-field
/// thermal term to every slide and swap candidate's delta
/// (DESIGN.md §14). `None` is bit-identical to the unpriced refinement.
pub(crate) fn refine_legal_priced(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    passes: usize,
    mut pricer: Option<&mut ThermalMovePricer>,
    probe: &mut dyn FnMut(PassEvent) -> ControlFlow<()>,
) -> (RefineStats, bool) {
    const EPS: f64 = 1e-18;
    let mut stats = RefineStats::default();
    for pass in 0..passes {
        let before_pass = objective.total();
        let mut rows = Rows::build(objective, netlist, chip);
        let round_improved = refine_round(
            objective,
            chip,
            &mut rows,
            &mut stats,
            pricer.as_deref_mut(),
        );
        stats.improvement += before_pass - objective.total();
        let converged = !round_improved || stats.improvement < EPS;
        if probe(PassEvent::RefinePass {
            pass,
            improvement: stats.improvement,
        })
        .is_break()
        {
            // Interruption at convergence is indistinguishable from a
            // natural finish; only report it when work remained.
            return (stats, !converged && pass + 1 < passes);
        }
        if converged {
            break;
        }
    }
    (stats, false)
}

fn refine_round(
    objective: &mut IncrementalObjective<'_>,
    chip: &Chip,
    rows: &mut Rows,
    stats: &mut RefineStats,
    mut pricer: Option<&mut ThermalMovePricer>,
) -> bool {
    const EPS: f64 = 1e-18;
    let mut improved = false;
    for layer in 0..chip.num_layers {
        for row in 0..chip.num_rows {
            let yc = chip.row_center(row);
            let mut i = 0;
            while i < rows.cells[layer][row].len() {
                let (x_left, w, cell) = rows.cells[layer][row][i];
                let center = |left: f64| left + w / 2.0;

                // 1. Slide inside the free interval: probe the interval
                //    endpoints and the current spot; HPWL is piecewise
                //    linear in x, so an endpoint (or staying put) is
                //    optimal.
                let (lo, hi) = rows.slack(layer, row, i, chip);
                let cur_pos = objective.placement().position(cell);
                let mut best: Option<(f64, f64)> = None; // (delta, new_left)
                for cand in [lo, hi] {
                    if (cand - x_left).abs() > 1e-15 && cand >= -1e-12 {
                        let mut delta = objective.delta_move(cell, center(cand), yc, layer as u16);
                        if let Some(p) = pricer.as_deref_mut() {
                            delta += p.price(
                                objective.cell_power(cell),
                                cur_pos,
                                (center(cand), yc, layer as u16),
                            );
                        }
                        if delta < best.map_or(-EPS, |(d, _)| d) {
                            best = Some((delta, cand));
                        }
                    }
                }
                if let Some((_, new_left)) = best {
                    let watts = objective.cell_power(cell);
                    objective.apply_move(cell, center(new_left), yc, layer as u16);
                    if let Some(p) = pricer.as_deref_mut() {
                        p.commit(watts, cur_pos, (center(new_left), yc, layer as u16));
                    }
                    rows.cells[layer][row][i].0 = new_left;
                    stats.slides += 1;
                    improved = true;
                }

                // 2. Adjacent swap with the right neighbor: re-pack the
                //    pair inside its combined span, order exchanged. The
                //    pair is priced read-only in one staged sequence and
                //    committed only when it improves — no apply-and-revert
                //    round trip perturbing `total`.
                if i + 1 < rows.cells[layer][row].len() {
                    let (ax, aw, a) = rows.cells[layer][row][i];
                    let (_bx, bw, b) = rows.cells[layer][row][i + 1];
                    let span_left = ax;
                    // After the swap: b sits at span_left, a right after b.
                    let pair = [
                        CellMove {
                            cell: b,
                            x: span_left + bw / 2.0,
                            y: yc,
                            layer: layer as u16,
                        },
                        CellMove {
                            cell: a,
                            x: span_left + bw + aw / 2.0,
                            y: yc,
                            layer: layer as u16,
                        },
                    ];
                    let mut delta = objective.delta_moves(&pair);
                    let pos_a = objective.placement().position(a);
                    let pos_b = objective.placement().position(b);
                    if let Some(p) = pricer.as_deref_mut() {
                        delta += p.price(
                            objective.cell_power(b),
                            pos_b,
                            (pair[0].x, pair[0].y, pair[0].layer),
                        );
                        delta += p.price(
                            objective.cell_power(a),
                            pos_a,
                            (pair[1].x, pair[1].y, pair[1].layer),
                        );
                    }
                    if delta < -EPS {
                        let (wa, wb) = (objective.cell_power(a), objective.cell_power(b));
                        objective.apply_moves(&pair);
                        if let Some(p) = pricer.as_deref_mut() {
                            p.commit(wb, pos_b, (pair[0].x, pair[0].y, pair[0].layer));
                            p.commit(wa, pos_a, (pair[1].x, pair[1].y, pair[1].layer));
                        }
                        rows.cells[layer][row][i] = (span_left, bw, b);
                        rows.cells[layer][row][i + 1] = (span_left + bw, aw, a);
                        stats.swaps += 1;
                        improved = true;
                    }
                }
                i += 1;
            }
        }
    }
    improved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_legalize;
    use crate::detail::{check_legal, detail_legalize};
    use crate::global::global_place;
    use crate::objective::ObjectiveModel;
    use crate::{Placer, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn refinement_improves_and_stays_legal() {
        let netlist = generate(&SynthConfig::named("r", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = crate::Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = global_place(&netlist, &chip, &model, &config);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        coarse_legalize(&mut objective, &netlist, &chip, &config);
        detail_legalize(&mut objective, &netlist, &chip, config.detail_row_window);
        assert_eq!(check_legal(&netlist, &chip, objective.placement()), None);

        let before = objective.total();
        let stats = refine_legal(&mut objective, &netlist, &chip, 3);
        let after = objective.total();

        assert!(after <= before + 1e-12, "refinement must not regress");
        assert!(
            stats.slides + stats.swaps > 0,
            "a fresh legalization always leaves local slack"
        );
        assert!((before - after - stats.improvement).abs() < 1e-9 * before.max(1e-12));
        assert_eq!(
            check_legal(&netlist, &chip, objective.placement()),
            None,
            "legality preserved through every move"
        );
        // Objective caches stay consistent.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn refinement_is_a_fixed_point_eventually() {
        let netlist = generate(&SynthConfig::named("r", 150, 7.5e-10)).unwrap();
        let result = Placer::new(PlacerConfig::new(2)).place(&netlist).unwrap();
        let config = PlacerConfig::new(2);
        let chip = result.chip.clone();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut objective = IncrementalObjective::new(&netlist, &model, result.placement.clone());
        // Run to convergence, then one more round must do ~nothing.
        refine_legal(&mut objective, &netlist, &chip, 20);
        let settled = objective.total();
        let stats = refine_legal(&mut objective, &netlist, &chip, 1);
        assert!(
            (objective.total() - settled).abs() <= 1e-9 * settled.max(1e-12),
            "converged placement must be stable (extra improvement {})",
            stats.improvement
        );
    }
}
