//! Detailed legalization (paper §5).
//!
//! Cells are snapped into standard-cell rows with zero overlap. Per layer,
//! cells are processed in increasing x (so every row insertion happens at
//! the right end of its row packer); for each cell the candidate rows
//! inside a window around its current y are priced by the exact objective
//! delta of the snapped position plus the disruption inflicted on
//! already-placed cells (the §5 cost for shifting processed cells aside).
//! The window expands until a row with room is found; if a layer is
//! genuinely full the search continues on the nearest other layers, so
//! legalization always completes while the chip has capacity.
//!
//! Deviation from the paper, documented in DESIGN.md: the processing order
//! is x-sorted per layer (a requirement of the right-append row packer)
//! rather than derived from a surplus DAG; the bin-surplus information is
//! instead reflected in the expanding candidate window.

mod refine;
mod row;

pub(crate) use refine::refine_legal_priced;
pub use refine::{refine_legal, refine_legal_observed, RefineStats};
pub use row::{InsertionQuote, RowPacker};

use crate::objective::IncrementalObjective;
use crate::observer::PassEvent;
use crate::Chip;
use std::ops::ControlFlow;
use tvp_netlist::{CellId, Netlist};

/// Outcome statistics of detailed legalization.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LegalizeStats {
    /// Cells legalized.
    pub placed: usize,
    /// Total displacement applied while snapping, meters.
    pub total_displacement: f64,
    /// Largest single-cell displacement, meters.
    pub max_displacement: f64,
    /// Cells that had to change layer to find space.
    pub layer_changes: usize,
}

/// Legalizes the placement into rows. All movable cells end on row
/// centers with no overlaps; fixed cells are left untouched.
///
/// `row_window` is the number of rows above/below the target row tried
/// before the window expands.
pub fn detail_legalize(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    row_window: usize,
) -> LegalizeStats {
    detail_legalize_observed(objective, netlist, chip, row_window, &mut |_| {
        ControlFlow::Continue(())
    })
}

/// [`detail_legalize`] with a probe receiving one
/// [`PassEvent::DetailRows`] per packed layer.
///
/// Unlike the coarse and refinement probes, this one cannot interrupt the
/// stage: a partially legalized placement is worse than useless, so
/// legalization always runs to completion and `Break` is ignored. The
/// probe never changes what the stage does.
pub fn detail_legalize_observed(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    row_window: usize,
    probe: &mut dyn FnMut(PassEvent) -> ControlFlow<()>,
) -> LegalizeStats {
    let num_layers = chip.num_layers;
    let num_rows = chip.num_rows;

    let mut stats = LegalizeStats::default();
    // The effective width a cell occupies in a row: its area spread over
    // one row height, so multi-row-height cells still reserve their area.
    let effective_width = |cell: CellId| -> f64 { netlist.cell(cell).area() / chip.row_height };

    // --- Phase A: assign every cell to a (layer, row) with free capacity.
    //
    // Processing order implements §5's objective-sensitivity ordering:
    // cells whose placement matters most thermally (high power) go first
    // so they can claim the low-resistance layers before capacity runs
    // out. Within a sensitivity bucket, widest-first (first-fit-
    // decreasing) keeps the row bin-packing robust: when the chip is
    // nearly full, wide cells must claim rows while contiguous room still
    // exists and narrow cells fill the fragments.
    let mut order: Vec<CellId> = netlist
        .iter_cells()
        .filter(|(_, c)| c.is_movable())
        .map(|(id, _)| id)
        .collect();
    // Rank-based buckets: power is heavy-tailed, so normalizing by the
    // maximum would lump nearly everything into one bucket. Sixteen rank
    // buckets give hot cells strict priority while widths stay mostly
    // sorted within each bucket (preserving the first-fit-decreasing
    // robustness).
    let sensitivity_bucket: Vec<u32> = {
        // The objective's sensitivity to moving a cell one layer, in
        // objective meters: the thermal term changes by α_TEMP·P·slope per
        // meter of height (× one layer pitch), and each of the cell's pins
        // can gain or lose one α_ILV via. Both terms share units, so the
        // score degrades gracefully to pure via sensitivity as α_TEMP → 0.
        let model = objective.model();
        let slope = model
            .resistance()
            .vertical_profile(chip.avg_cell_area)
            .slope;
        let pitch = chip.stack.layer_pitch();
        let score = |i: usize| -> f64 {
            let cell = CellId::new(i);
            model.alpha_temp * objective.cell_power(cell) * slope * pitch
                + model.alpha_ilv * netlist.cell_pins(cell).len() as f64
        };
        let mut by_score: Vec<usize> = (0..netlist.num_cells()).collect();
        by_score.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n = by_score.len().max(1);
        let mut bucket = vec![0u32; netlist.num_cells()];
        for (rank, &i) in by_score.iter().enumerate() {
            bucket[i] = 15 - (rank * 16 / n) as u32; // most sensitive = 15
        }
        bucket
    };
    order.sort_by(|&a, &b| {
        sensitivity_bucket[b.index()]
            .cmp(&sensitivity_bucket[a.index()])
            .then(
                effective_width(b)
                    .partial_cmp(&effective_width(a))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });

    let mut used = vec![vec![0.0f64; num_rows]; num_layers];
    let mut assigned: Vec<Vec<Vec<CellId>>> = vec![vec![Vec::new(); num_rows]; num_layers];

    let mut queue: std::collections::VecDeque<CellId> = order.into();
    let mut rescues = 0usize;
    let rescue_limit = 16 * netlist.num_cells() + 64;

    while let Some(cell) = queue.pop_front() {
        let (x, y, layer) = objective.placement().position(cell);
        let layer = (layer as usize).min(num_layers - 1);
        let width = effective_width(cell);
        let target_row = chip.nearest_row(y);

        // Every layer is priced through the objective (layer changes cost
        // α_ILV vias and, with thermal placement on, α_TEMP·ΔR·P — so hot
        // cells gravitate down and cold cells fill the upper layers when
        // the lower ones run out of room). Each layer's row window expands
        // *independently* until that layer produces a candidate: a hot
        // cell must see "layer 0, a few rows away" even when a wrong-layer
        // spot exists right next to it.
        let mut best: Option<(f64, usize, usize)> = None; // (cost, layer, row)
        #[allow(clippy::needless_range_loop)]
        for cand_layer in 0..num_layers {
            let mut layer_best: Option<(f64, usize)> = None; // (cost, row)
            let mut window = row_window.max(1);
            loop {
                let lo = target_row.saturating_sub(window);
                let hi = (target_row + window).min(num_rows - 1);
                for r in lo..=hi {
                    if used[cand_layer][r] + width > chip.width + 1e-12 {
                        continue;
                    }
                    let snap_y = chip.row_center(r);
                    let delta = objective.delta_move(cell, x, snap_y, cand_layer as u16);
                    if layer_best.is_none_or(|(c, _)| delta < c) {
                        layer_best = Some((delta, r));
                    }
                }
                if layer_best.is_some() || (lo == 0 && hi == num_rows - 1) {
                    break;
                }
                window *= 2;
            }
            if let Some((cost, r)) = layer_best {
                if best.is_none_or(|(c, ..)| cost < c) {
                    best = Some((cost, cand_layer, r));
                }
            }
        }
        let (bl, br) = match best {
            Some((_, bl, br)) => (bl, br),
            None => {
                // Rescue: every row is too full for this cell, which can
                // happen when fragmentation spreads the whitespace thinly
                // across rows. Evict the narrowest residents of the row
                // with the most free width until the cell fits; evicted
                // cells are strictly narrower, so requeueing them
                // terminates.
                rescues += 1;
                assert!(
                    rescues <= rescue_limit,
                    "legalization livelock: cell area must exceed chip capacity"
                );
                let (bl, br) = (0..num_layers)
                    .flat_map(|l| (0..num_rows).map(move |r| (l, r)))
                    .min_by(|&(l1, r1), &(l2, r2)| {
                        used[l1][r1]
                            .partial_cmp(&used[l2][r2])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or((0, 0));
                // Evict narrowest-first: each evicted cell is strictly
                // narrower than the incoming one, so rescue chains shrink
                // monotonically and terminate.
                let residents = &mut assigned[bl][br];
                residents.sort_by(|&a, &b| {
                    effective_width(b)
                        .partial_cmp(&effective_width(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                while used[bl][br] + width > chip.width + 1e-12 {
                    // An empty row that still can't take the cell means the
                    // cell is wider than the row itself (preflight flags
                    // this as an error); place it anyway and let the legal
                    // check report the overlap.
                    let Some(evicted) = residents.pop() else {
                        break;
                    };
                    used[bl][br] -= effective_width(evicted);
                    stats.placed -= 1;
                    queue.push_back(evicted);
                }
                (bl, br)
            }
        };
        used[bl][br] += width;
        assigned[bl][br].push(cell);
        if bl != layer {
            stats.layer_changes += 1;
        }
        stats.placed += 1;
    }

    // --- Phase B: pack each row with the Abacus-style packer, inserting
    // in increasing desired-x order (the packer's invariant), then apply
    // the final positions through the objective.
    for (layer, layer_rows) in assigned.iter_mut().enumerate() {
        let mut layer_rows_used = 0usize;
        let mut layer_cells = 0usize;
        for (r, cells) in layer_rows.iter_mut().enumerate() {
            if cells.is_empty() {
                continue;
            }
            layer_rows_used += 1;
            layer_cells += cells.len();
            cells.sort_by(|&a, &b| {
                objective
                    .placement()
                    .x(a)
                    .partial_cmp(&objective.placement().x(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut packer = RowPacker::new();
            for &cell in cells.iter() {
                let width = effective_width(cell);
                let desired_left = objective.placement().x(cell) - width / 2.0;
                packer.insert(cell, width, desired_left, chip.width);
            }
            let yc = chip.row_center(r);
            for (cell, x_left) in packer.final_positions(chip.width) {
                let width = effective_width(cell);
                let (ox, oy, _) = objective.placement().position(cell);
                let nx = x_left + width / 2.0;
                objective.apply_move(cell, nx, yc, layer as u16);
                let d = ((nx - ox).powi(2) + (yc - oy).powi(2)).sqrt();
                stats.total_displacement += d;
                stats.max_displacement = stats.max_displacement.max(d);
            }
        }
        // Legalization must complete whatever the probe answers; a `Break`
        // here is simply noticed later at the stage boundary.
        let _ = probe(PassEvent::DetailRows {
            layer,
            rows: layer_rows_used,
            cells: layer_cells,
        });
    }
    stats
}

/// Checks full legality: every movable cell on a row center, inside the
/// chip, with no same-layer overlaps. Returns a human-readable violation
/// description, or `None` when legal.
pub fn check_legal(netlist: &Netlist, chip: &Chip, placement: &crate::Placement) -> Option<String> {
    const EPS: f64 = 1e-9;
    for (cell, x, y, layer) in placement.iter() {
        if !netlist.cell(cell).is_movable() {
            continue;
        }
        if (layer as usize) >= chip.num_layers {
            return Some(format!("cell {cell} on nonexistent layer {layer}"));
        }
        let row = chip.nearest_row(y);
        if (chip.row_center(row) - y).abs() > EPS {
            return Some(format!("cell {cell} not on a row center (y = {y})"));
        }
        let half = netlist.cell(cell).area() / chip.row_height / 2.0;
        if x - half < -EPS || x + half > chip.width + EPS {
            return Some(format!("cell {cell} outside the chip (x = {x})"));
        }
    }
    // Overlaps per (layer, row).
    type RowContents = Vec<(f64, f64, CellId)>;
    let mut per_row: std::collections::HashMap<(u16, usize), RowContents> =
        std::collections::HashMap::new();
    for (cell, x, y, layer) in placement.iter() {
        if !netlist.cell(cell).is_movable() {
            continue;
        }
        let w = netlist.cell(cell).area() / chip.row_height;
        per_row
            .entry((layer, chip.nearest_row(y)))
            .or_default()
            .push((x - w / 2.0, w, cell));
    }
    for ((layer, row), mut cells) in per_row {
        cells.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for pair in cells.windows(2) {
            let (x0, w0, c0) = pair[0];
            let (x1, _, c1) = pair[1];
            if x0 + w0 > x1 + EPS {
                return Some(format!(
                    "cells {c0} and {c1} overlap on layer {layer} row {row}"
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_legalize;
    use crate::global::global_place;
    use crate::objective::ObjectiveModel;
    use crate::{Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn legalized_fixture(
        cells: usize,
        layers: usize,
    ) -> (
        tvp_netlist::Netlist,
        Chip,
        PlacerConfig,
        f64,
        LegalizeStats,
        Placement,
    ) {
        let netlist = generate(&SynthConfig::named("t", cells, cells as f64 * 5.0e-12)).unwrap();
        let config = PlacerConfig::new(layers);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = global_place(&netlist, &chip, &model, &config);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        coarse_legalize(&mut objective, &netlist, &chip, &config);
        let before = objective.total();
        let stats = detail_legalize(&mut objective, &netlist, &chip, config.detail_row_window);
        let placement = objective.placement().clone();
        (netlist, chip, config, before, stats, placement)
    }

    #[test]
    fn produces_fully_legal_placement() {
        let (netlist, chip, _, _, stats, placement) = legalized_fixture(300, 2);
        assert_eq!(stats.placed, 300);
        assert_eq!(
            check_legal(&netlist, &chip, &placement),
            None,
            "placement must be legal"
        );
        assert_eq!(placement.find_out_of_bounds(&chip), None);
    }

    #[test]
    fn displacement_is_modest() {
        let (_, chip, _, _, stats, _) = legalized_fixture(300, 2);
        // Snapping after coarse legalization should move cells by bins,
        // not by chip widths.
        let avg = stats.total_displacement / stats.placed as f64;
        assert!(
            avg < chip.width / 4.0,
            "avg displacement {avg} vs chip width {}",
            chip.width
        );
    }

    #[test]
    fn single_layer_designs_legalize() {
        let (netlist, chip, _, _, stats, placement) = legalized_fixture(200, 1);
        assert_eq!(check_legal(&netlist, &chip, &placement), None);
        assert_eq!(stats.layer_changes, 0, "nowhere to change to");
    }

    #[test]
    fn four_layer_designs_legalize() {
        let (netlist, chip, _, _, _, placement) = legalized_fixture(400, 4);
        assert_eq!(check_legal(&netlist, &chip, &placement), None);
    }

    #[test]
    fn check_legal_catches_violations() {
        let (netlist, chip, _, _, _, mut placement) = legalized_fixture(100, 2);
        assert_eq!(check_legal(&netlist, &chip, &placement), None);
        // Push one cell off its row center.
        let c = CellId::new(0);
        let (x, y, l) = placement.position(c);
        placement.set(c, x, y + chip.row_height / 3.0, l);
        assert!(check_legal(&netlist, &chip, &placement).is_some());
        // Restore and create an overlap instead.
        placement.set(c, x, y, l);
        let d = CellId::new(1);
        placement.set(d, x, y, l);
        assert!(check_legal(&netlist, &chip, &placement).is_some());
    }
}
