//! Per-row packing with cluster collapse (Abacus-style).
//!
//! Cells are appended to a row in increasing desired-x order; overlapping
//! neighbors coalesce into clusters whose position minimizes total squared
//! displacement from the desired positions, clamped to the row extent.
//! This realizes §5's "already-processed cells are moved apart to legally
//! place the cell, with the effect of their movement included in the cost":
//! [`RowPacker::simulate`] prices an insertion (new cell displacement plus
//! neighbor disruption) without committing it.

use tvp_netlist::CellId;

#[derive(Clone, Debug)]
struct Cluster {
    /// Index of the first cell of this cluster in `cells`.
    first: usize,
    /// Optimal (unclamped) left edge: mean of `desired - offset`.
    q: f64,
    /// Total width.
    width: f64,
    /// Number of cells.
    count: usize,
}

impl Cluster {
    fn position(&self, row_width: f64) -> f64 {
        (self.q / self.count as f64).clamp(0.0, (row_width - self.width).max(0.0))
    }
}

/// One row of one layer during detailed legalization.
#[derive(Clone, Debug, Default)]
pub struct RowPacker {
    /// `(cell, width, desired_left)` in insertion order.
    cells: Vec<(CellId, f64, f64)>,
    clusters: Vec<Cluster>,
    used_width: f64,
}

/// Result of simulating an insertion into a row.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InsertionQuote {
    /// Final left edge the new cell would receive.
    pub x_left: f64,
    /// Total absolute displacement inflicted on already-placed cells.
    pub neighbor_disruption: f64,
}

impl RowPacker {
    /// Creates an empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cell width already placed in the row.
    pub fn used_width(&self) -> f64 {
        self.used_width
    }

    /// Number of cells in the row.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether a cell of `width` can fit at all.
    pub fn fits(&self, width: f64, row_width: f64) -> bool {
        self.used_width + width <= row_width + 1e-12
    }

    /// Prices inserting a cell with `width` whose desired left edge is
    /// `desired_left`. Returns `None` if the row cannot hold it.
    ///
    /// Insertions must arrive in non-decreasing desired order (the caller
    /// processes cells sorted by x), so the new cell always joins at the
    /// right end.
    pub fn simulate(
        &self,
        width: f64,
        desired_left: f64,
        row_width: f64,
    ) -> Option<InsertionQuote> {
        if !self.fits(width, row_width) {
            return None;
        }
        let before: Vec<f64> = self.cluster_positions(row_width);
        let mut clusters = self.clusters.clone();
        append_and_collapse(
            &mut clusters,
            self.cells.len(),
            width,
            desired_left,
            row_width,
        );
        // Position of the new cell: last cluster's position + offset of the
        // new cell inside it (it is the last cell).
        let last = clusters.last()?;
        let pos = last.position(row_width);
        let x_left = pos + last.width - width;
        // Neighbor disruption: how far existing clusters moved.
        let mut disruption = 0.0;
        for (idx, c) in clusters.iter().enumerate() {
            let new_pos = c.position(row_width);
            // Cells `first..first+count` moved from their old cluster
            // positions; compare against the old layout cell-by-cell.
            for cell_idx in c.first..c.first + c.count {
                if cell_idx >= self.cells.len() {
                    continue; // the new cell
                }
                let old_x = self.cell_position_from(&before, cell_idx, row_width);
                let new_x = new_pos + self.offset_within(idx, cell_idx, &clusters);
                disruption += (new_x - old_x).abs();
            }
        }
        Some(InsertionQuote {
            x_left,
            neighbor_disruption: disruption,
        })
    }

    /// Inserts a cell (same contract as [`simulate`](Self::simulate)).
    ///
    /// # Panics
    ///
    /// Panics if the cell cannot fit — check [`fits`](Self::fits) first.
    pub fn insert(&mut self, cell: CellId, width: f64, desired_left: f64, row_width: f64) {
        assert!(
            self.fits(width, row_width),
            "row overflow: {} + {width} > {row_width}",
            self.used_width
        );
        append_and_collapse(
            &mut self.clusters,
            self.cells.len(),
            width,
            desired_left,
            row_width,
        );
        self.cells.push((cell, width, desired_left));
        self.used_width += width;
    }

    /// Final `(cell, x_left)` positions of every cell in the row.
    pub fn final_positions(&self, row_width: f64) -> Vec<(CellId, f64)> {
        let mut out = Vec::with_capacity(self.cells.len());
        for (idx, c) in self.clusters.iter().enumerate() {
            let base = c.position(row_width);
            let mut x = base;
            for cell_idx in c.first..c.first + c.count {
                let (cell, width, _) = self.cells[cell_idx];
                out.push((cell, x));
                x += width;
                let _ = idx;
            }
        }
        out
    }

    fn cluster_positions(&self, row_width: f64) -> Vec<f64> {
        self.clusters
            .iter()
            .map(|c| c.position(row_width))
            .collect()
    }

    fn cell_position_from(&self, positions: &[f64], cell_idx: usize, _row_width: f64) -> f64 {
        // Find the (old) cluster containing cell_idx.
        for (c, pos) in self.clusters.iter().zip(positions) {
            if cell_idx >= c.first && cell_idx < c.first + c.count {
                let mut x = *pos;
                for i in c.first..cell_idx {
                    x += self.cells[i].1;
                }
                return x;
            }
        }
        unreachable!("cell index {cell_idx} not in any cluster");
    }

    fn offset_within(&self, cluster_idx: usize, cell_idx: usize, clusters: &[Cluster]) -> f64 {
        let c = &clusters[cluster_idx];
        let mut offset = 0.0;
        for i in c.first..cell_idx {
            offset += self.cells[i].1;
        }
        offset
    }
}

/// Appends a new single-cell cluster and merges from the right while the
/// *clamped* positions overlap (standard Abacus collapse; clamping must be
/// part of the overlap test or clusters squeezed against the row ends
/// would be missed).
fn append_and_collapse(
    clusters: &mut Vec<Cluster>,
    first: usize,
    width: f64,
    desired_left: f64,
    row_width: f64,
) {
    clusters.push(Cluster {
        first,
        q: desired_left,
        width,
        count: 1,
    });
    while clusters.len() >= 2 {
        let last = clusters.len() - 1;
        let prev_end = clusters[last - 1].position(row_width) + clusters[last - 1].width;
        let cur_start = clusters[last].position(row_width);
        if cur_start >= prev_end - 1e-15 {
            break;
        }
        // Merge `last` into `last - 1`: the merged optimal position
        // averages each cell's desired position minus its offset, which is
        // exactly q_prev + (q_last - count_last * width_prev) aggregated.
        let Some(tail) = clusters.pop() else { break };
        let Some(head) = clusters.last_mut() else {
            break;
        };
        head.q += tail.q - tail.count as f64 * head.width;
        head.width += tail.width;
        head.count += tail.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 100.0;

    fn id(i: usize) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn non_overlapping_cells_keep_desired_positions() {
        let mut row = RowPacker::new();
        row.insert(id(0), 10.0, 5.0, W);
        row.insert(id(1), 10.0, 30.0, W);
        row.insert(id(2), 10.0, 80.0, W);
        let pos = row.final_positions(W);
        assert_eq!(pos, vec![(id(0), 5.0), (id(1), 30.0), (id(2), 80.0)]);
        assert_eq!(row.used_width(), 30.0);
    }

    #[test]
    fn overlapping_cells_collapse_symmetrically() {
        let mut row = RowPacker::new();
        // Two cells both wanting x = 50: the cluster centers on 45..65,
        // i.e. positions 45 and 55 (means of desired minus offsets).
        row.insert(id(0), 10.0, 50.0, W);
        row.insert(id(1), 10.0, 50.0, W);
        let pos = row.final_positions(W);
        assert!((pos[0].1 - 45.0).abs() < 1e-9, "{pos:?}");
        assert!((pos[1].1 - 55.0).abs() < 1e-9, "{pos:?}");
    }

    #[test]
    fn clamps_to_row_extent() {
        let mut row = RowPacker::new();
        row.insert(id(0), 10.0, 95.0, W); // wants to stick out on the right
        let pos = row.final_positions(W);
        assert!((pos[0].1 - 90.0).abs() < 1e-9);
        let mut row = RowPacker::new();
        row.insert(id(0), 10.0, -5.0, W);
        assert!((row.final_positions(W)[0].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn positions_never_overlap() {
        let mut row = RowPacker::new();
        let widths = [7.0, 13.0, 5.0, 20.0, 9.0, 11.0];
        let desired = [10.0, 11.0, 12.0, 14.0, 30.0, 31.0];
        for (i, (&w, &d)) in widths.iter().zip(&desired).enumerate() {
            row.insert(id(i), w, d, W);
        }
        let pos = row.final_positions(W);
        // Verify pairwise: sorted by x and no overlap using the true widths.
        let mut with_width: Vec<(f64, f64)> =
            pos.iter().map(|&(c, x)| (x, widths[c.index()])).collect();
        with_width.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for pair in with_width.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 <= pair[1].0 + 1e-9,
                "overlap: {pair:?}"
            );
        }
        // Everything inside the row.
        for &(x, w) in &with_width {
            assert!(x >= -1e-9 && x + w <= W + 1e-9);
        }
    }

    #[test]
    fn simulate_matches_insert() {
        let mut row = RowPacker::new();
        row.insert(id(0), 10.0, 40.0, W);
        row.insert(id(1), 10.0, 45.0, W);
        let quote = row.simulate(10.0, 47.0, W).unwrap();
        row.insert(id(2), 10.0, 47.0, W);
        let pos = row.final_positions(W);
        let got = pos.iter().find(|p| p.0 == id(2)).unwrap().1;
        assert!(
            (quote.x_left - got).abs() < 1e-9,
            "{} vs {got}",
            quote.x_left
        );
        assert!(quote.neighbor_disruption > 0.0, "neighbors had to shift");
    }

    #[test]
    fn simulate_on_empty_row_has_no_disruption() {
        let row = RowPacker::new();
        let quote = row.simulate(10.0, 20.0, W).unwrap();
        assert_eq!(quote.x_left, 20.0);
        assert_eq!(quote.neighbor_disruption, 0.0);
    }

    #[test]
    fn full_row_rejects_insertion() {
        let mut row = RowPacker::new();
        row.insert(id(0), 60.0, 0.0, W);
        row.insert(id(1), 39.0, 60.0, W);
        assert!(row.simulate(5.0, 50.0, W).is_none());
        assert!(!row.fits(5.0, W));
        assert!(row.fits(1.0, W));
    }

    #[test]
    fn clamped_clusters_still_collapse() {
        // Without clamping in the overlap test these two clusters would
        // both be squeezed against the right end and overlap.
        let mut row = RowPacker::new();
        row.insert(id(0), 40.0, 50.0, W); // sits at 50..90
        row.insert(id(1), 40.0, 95.0, W); // unclamped 95 doesn't overlap 90, clamped 60 does
        let pos = row.final_positions(W);
        let mut xs: Vec<f64> = pos.iter().map(|p| p.1).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            xs[0] + 40.0 <= xs[1] + 1e-9,
            "clamped clusters overlap: {xs:?}"
        );
        assert!(xs[1] + 40.0 <= W + 1e-9);
    }

    #[test]
    fn overfull_cluster_is_left_clamped() {
        // Cells that total more than fits to the right are pushed left.
        let mut row = RowPacker::new();
        row.insert(id(0), 40.0, 70.0, W);
        row.insert(id(1), 40.0, 75.0, W);
        let pos = row.final_positions(W);
        let mut xs: Vec<f64> = pos.iter().map(|p| p.1).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] >= -1e-9);
        assert!(xs[1] + 40.0 <= W + 1e-9);
    }
}
