//! Thermal- and interlayer-via-aware placement of 3D ICs.
//!
//! A from-scratch reproduction of *Goplen & Sapatnekar, "Placement of 3D
//! ICs with Thermal and Interlayer Via Considerations," DAC 2007*. The flow
//! minimizes the paper's objective (Eq. 3)
//!
//! ```text
//! Σ_nets [ WL_i + α_ILV · ILV_i ]  +  α_TEMP · Σ_cells [ R_j · P_j ]
//! ```
//!
//! over three stages:
//!
//! 1. [`global`] — 3D recursive min-cut bisection with cut-direction
//!    selection, terminal propagation, thermal net weighting (§3.1), and
//!    thermal-resistance-reduction nets (§3.2).
//! 2. [`coarse`] — coarse legalization: cell shifting (§4.1) interleaved
//!    with objective-driven moves and swaps (§4.2).
//! 3. [`detail`] — detailed legalization into rows (§5).
//!
//! The one-call entry point is [`Placer`]:
//!
//! ```
//! use tvp_core::{Placer, PlacerConfig};
//! use tvp_bookshelf::synth::{SynthConfig, generate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generate(&SynthConfig::named("demo", 200, 1.0e-9))?;
//! let config = PlacerConfig::new(4).with_alpha_ilv(1.0e-5);
//! let result = Placer::new(config).place(&netlist)?;
//! println!("wirelength = {} m, ILVs = {}", result.metrics.wirelength, result.metrics.ilv_count);
//! # Ok(())
//! # }
//! ```

//! Runs are observable, cancellable, and resumable through the stage
//! engine (DESIGN.md §9): attach a [`PlacerObserver`] for structured
//! progress events, a [`CancelToken`] or time budget for graceful early
//! stops, and a checkpoint directory to resume interrupted runs — all via
//! [`Placer::place_with_options`].

pub mod checkpoint;
pub mod chip;
pub mod coarse;
pub mod config;
mod control;
pub mod detail;
pub mod engine;
mod error;
pub mod faults;
pub mod global;
pub mod metrics;
pub mod netweight;
pub mod objective;
pub mod observer;
pub mod placement;
mod placer;
pub mod power;
mod thermal_pricer;
pub mod trr;
pub mod validate;

pub use chip::Chip;
pub use config::{PlacerConfig, ShiftStrategy, TechnologyParams, ThermalTierPolicy};
pub use control::CancelToken;
pub use engine::{PlacerContext, Stage, StageKind, StageMonitor, StageStatus};
pub use error::PlaceError;
pub use faults::{Degradation, FaultKind, FaultPlan};
pub use metrics::PlacementMetrics;
pub use observer::{
    event_to_json, JsonlObserver, NopObserver, PassEvent, PlacerEvent, PlacerObserver,
    RecordingObserver,
};
pub use placement::Placement;
pub use placer::{
    PlaceOptions, PlacementResult, Placer, RoundTiming, StageTimings, ThermalSnapshot,
};
pub use tvp_thermal::{LayerSpec, PrecondKind, Preconditioner, ThermalTier};
pub use validate::{
    repair, validate, Diagnostic, DiagnosticCode, RepairAction, Severity, ValidateOptions,
    ValidationReport,
};
