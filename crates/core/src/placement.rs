//! Placement state: one 3D position per cell.

use crate::Chip;
use tvp_netlist::{CellId, Netlist};

/// Positions of all cells: continuous `(x, y)` in meters (cell centers)
/// plus a discrete device layer per cell.
#[derive(Clone, PartialEq, Debug)]
pub struct Placement {
    x: Vec<f64>,
    y: Vec<f64>,
    layer: Vec<u16>,
}

impl Placement {
    /// Creates a placement with every cell at the center of the chip on
    /// layer 0 — the paper's §6 starting state.
    pub fn centered(num_cells: usize, chip: &Chip) -> Self {
        Self {
            x: vec![chip.width / 2.0; num_cells],
            y: vec![chip.depth / 2.0; num_cells],
            layer: vec![0; num_cells],
        }
    }

    /// Creates a placement from explicit per-cell positions.
    ///
    /// # Panics
    ///
    /// Panics if the three vectors have different lengths.
    pub fn from_parts(x: Vec<f64>, y: Vec<f64>, layer: Vec<u16>) -> Self {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), layer.len());
        Self { x, y, layer }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// X coordinate (cell center) of `cell`, meters.
    #[inline]
    pub fn x(&self, cell: CellId) -> f64 {
        self.x[cell.index()]
    }

    /// Y coordinate (cell center) of `cell`, meters.
    #[inline]
    pub fn y(&self, cell: CellId) -> f64 {
        self.y[cell.index()]
    }

    /// Device layer of `cell`.
    #[inline]
    pub fn layer(&self, cell: CellId) -> u16 {
        self.layer[cell.index()]
    }

    /// Full position of `cell` as `(x, y, layer)`.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64, u16) {
        let i = cell.index();
        (self.x[i], self.y[i], self.layer[i])
    }

    /// Moves `cell` to `(x, y, layer)`.
    #[inline]
    pub fn set(&mut self, cell: CellId, x: f64, y: f64, layer: u16) {
        let i = cell.index();
        self.x[i] = x;
        self.y[i] = y;
        self.layer[i] = layer;
    }

    /// Iterator over `(CellId, x, y, layer)`.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, f64, f64, u16)> + '_ {
        (0..self.len()).map(move |i| (CellId::new(i), self.x[i], self.y[i], self.layer[i]))
    }

    /// Checks that no cell lies outside the chip and no layer is out of
    /// range. Returns the offending cell, if any.
    pub fn find_out_of_bounds(&self, chip: &Chip) -> Option<CellId> {
        const EPS: f64 = 1e-12;
        (0..self.len()).map(CellId::new).find(|&c| {
            let (x, y, l) = self.position(c);
            !(x >= -EPS
                && x <= chip.width + EPS
                && y >= -EPS
                && y <= chip.depth + EPS
                && (l as usize) < chip.num_layers)
        })
    }

    /// Counts pairwise overlaps between cells on the same layer — O(n log n)
    /// sweep, used by tests and the legality checker.
    pub fn count_overlaps(&self, netlist: &Netlist) -> usize {
        // Sort by (layer, x_left); sweep and compare against active cells.
        let mut order: Vec<usize> = (0..self.len()).collect();
        let left = |i: usize| self.x[i] - netlist.cells()[i].width() / 2.0;
        let right = |i: usize| self.x[i] + netlist.cells()[i].width() / 2.0;
        let bottom = |i: usize| self.y[i] - netlist.cells()[i].height() / 2.0;
        let top = |i: usize| self.y[i] + netlist.cells()[i].height() / 2.0;
        order.sort_by(|&a, &b| {
            (self.layer[a], left(a))
                .partial_cmp(&(self.layer[b], left(b)))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut overlaps = 0;
        let mut active: Vec<usize> = Vec::new();
        const EPS: f64 = 1e-12;
        for &i in &order {
            active.retain(|&j| self.layer[j] == self.layer[i] && right(j) > left(i) + EPS);
            for &j in &active {
                if bottom(i) + EPS < top(j) && bottom(j) + EPS < top(i) {
                    overlaps += 1;
                }
            }
            active.push(i);
        }
        overlaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacerConfig;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn setup() -> (Netlist, Chip) {
        let netlist = generate(&SynthConfig::named("t", 50, 2.5e-10)).unwrap();
        let chip = Chip::from_netlist(&netlist, &PlacerConfig::new(2)).unwrap();
        (netlist, chip)
    }

    #[test]
    fn centered_start() {
        let (netlist, chip) = setup();
        let p = Placement::centered(netlist.num_cells(), &chip);
        assert_eq!(p.len(), 50);
        let c = CellId::new(7);
        assert_eq!(p.x(c), chip.width / 2.0);
        assert_eq!(p.layer(c), 0);
        assert!(p.find_out_of_bounds(&chip).is_none());
    }

    #[test]
    fn set_and_get() {
        let (netlist, chip) = setup();
        let mut p = Placement::centered(netlist.num_cells(), &chip);
        let c = CellId::new(3);
        p.set(c, 1.0e-6, 2.0e-6, 1);
        assert_eq!(p.position(c), (1.0e-6, 2.0e-6, 1));
    }

    #[test]
    fn detects_out_of_bounds() {
        let (netlist, chip) = setup();
        let mut p = Placement::centered(netlist.num_cells(), &chip);
        p.set(CellId::new(0), -1.0, 0.0, 0);
        assert_eq!(p.find_out_of_bounds(&chip), Some(CellId::new(0)));
        p.set(CellId::new(0), 0.0, 0.0, 9);
        assert_eq!(p.find_out_of_bounds(&chip), Some(CellId::new(0)));
    }

    #[test]
    fn overlap_counting() {
        let (netlist, chip) = setup();
        let mut p = Placement::centered(netlist.num_cells(), &chip);
        // All cells stacked at the center on layer 0: n(n-1)/2 overlaps.
        let n = netlist.num_cells();
        assert_eq!(p.count_overlaps(&netlist), n * (n - 1) / 2);
        // Spread them far apart: zero overlaps.
        for i in 0..n {
            p.set(CellId::new(i), i as f64 * 1.0, 0.0, 0);
        }
        assert_eq!(p.count_overlaps(&netlist), 0);
        // Different layers never overlap.
        for i in 0..n {
            p.set(CellId::new(i), 0.0, 0.0, (i % 2) as u16);
        }
        let same_layer_pairs = (n / 2) * (n / 2 - 1) / 2 + (n - n / 2) * (n - n / 2 - 1) / 2;
        assert_eq!(p.count_overlaps(&netlist), same_layer_pairs);
    }

    #[test]
    fn iter_yields_all_cells() {
        let (netlist, chip) = setup();
        let p = Placement::centered(netlist.num_cells(), &chip);
        assert_eq!(p.iter().count(), netlist.num_cells());
    }
}
