//! Dynamic power model (Eq. 4–5, 10–11).
//!
//! The power of net `i` is `P_i = ½ f V_DD² a_i C_i^total` with
//! `C_i^total = C_wl·WL_i + C_ilv·ILV_i + C_pin·n_i^inputs`. Splitting per
//! driven net and dividing by the number of output pins gives the per-net
//! coefficients `s_i^wl`, `s_i^ilv`, `s_i^pins` used by both the net
//! weighting (§3.1) and the thermal-resistance-reduction nets (§3.2).

use crate::TechnologyParams;
use tvp_netlist::{CellId, NetId, Netlist};

/// Precomputed per-net power coefficients.
///
/// For net `i` with current wirelength `WL_i` (meters) and via count
/// `ILV_i`, the dynamic power dissipated in its driver is
/// `s_wl(i)·WL_i + s_ilv(i)·ILV_i + s_pins(i)` watts.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerModel {
    s_wl: Vec<f64>,
    s_ilv: Vec<f64>,
    s_pins: Vec<f64>,
    leakage_per_cell: f64,
}

impl PowerModel {
    /// Builds the model for a netlist.
    ///
    /// `layer_pitch` (meters) converts the per-length via capacitance of
    /// Table 2 into a per-via capacitance: a via crossing one interlayer
    /// boundary is one layer pitch long.
    pub fn new(netlist: &Netlist, tech: &TechnologyParams, layer_pitch: f64) -> Self {
        let prefactor = tech.power_prefactor();
        let cap_per_via = tech.cap_per_ilv_length * layer_pitch;
        let n = netlist.num_nets();
        let mut s_wl = Vec::with_capacity(n);
        let mut s_ilv = Vec::with_capacity(n);
        let mut s_pins = Vec::with_capacity(n);
        for net in netlist.nets() {
            // One driver per net in well-formed designs (Eq. 6 divides by
            // the output pin count; it is 1 here).
            let base = prefactor * net.switching_activity();
            s_wl.push(base * tech.cap_per_wirelength);
            s_ilv.push(base * cap_per_via);
            s_pins.push(base * tech.input_pin_cap * net.num_input_pins() as f64);
        }
        Self {
            s_wl,
            s_ilv,
            s_pins,
            leakage_per_cell: tech.leakage_per_cell,
        }
    }

    /// Static leakage power charged to every cell, W (§3.2's optional
    /// extension; 0 with the Table 2 defaults).
    #[inline]
    pub fn leakage_per_cell(&self) -> f64 {
        self.leakage_per_cell
    }

    /// Power per meter of wirelength for net `i`, W/m (Eq. 6).
    #[inline]
    pub fn s_wl(&self, net: NetId) -> f64 {
        self.s_wl[net.index()]
    }

    /// Power per interlayer via for net `i`, W (Eq. 6).
    #[inline]
    pub fn s_ilv(&self, net: NetId) -> f64 {
        self.s_ilv[net.index()]
    }

    /// Placement-independent pin-capacitance power of net `i`, W (Eq. 11,
    /// already multiplied by the input pin count).
    #[inline]
    pub fn s_pins(&self, net: NetId) -> f64 {
        self.s_pins[net.index()]
    }

    /// Dynamic power of net `i` at the given wirelength and via count, W
    /// (Eq. 4–5).
    #[inline]
    pub fn net_power(&self, net: NetId, wirelength: f64, ilv: f64) -> f64 {
        self.s_wl[net.index()] * wirelength
            + self.s_ilv[net.index()] * ilv
            + self.s_pins[net.index()]
    }

    /// Power dissipated in `cell` — the sum over its driven nets (Eq. 10).
    ///
    /// `net_geometry` must return `(wirelength, ilv)` for a net.
    pub fn cell_power(
        &self,
        netlist: &Netlist,
        cell: CellId,
        mut net_geometry: impl FnMut(NetId) -> (f64, f64),
    ) -> f64 {
        self.leakage_per_cell
            + netlist
                .driven_nets(cell)
                .map(|e| {
                    let (wl, ilv) = net_geometry(e);
                    self.net_power(e, wl, ilv)
                })
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_netlist::{NetlistBuilder, PinDirection};

    fn two_net_fixture() -> (Netlist, PowerModel) {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1e-6, 1e-6);
        let c = b.add_cell("c", 1e-6, 1e-6);
        let d = b.add_cell("d", 1e-6, 1e-6);
        let n0 = b.add_net("n0");
        b.connect(n0, a, PinDirection::Output).unwrap();
        b.connect(n0, c, PinDirection::Input).unwrap();
        b.connect(n0, d, PinDirection::Input).unwrap();
        b.set_switching_activity(n0, 0.2).unwrap();
        let n1 = b.add_net("n1");
        b.connect(n1, a, PinDirection::Output).unwrap();
        b.connect(n1, c, PinDirection::Input).unwrap();
        b.set_switching_activity(n1, 0.1).unwrap();
        let netlist = b.build().unwrap();
        let model = PowerModel::new(&netlist, &TechnologyParams::default(), 6.4e-6);
        (netlist, model)
    }

    #[test]
    fn coefficients_match_hand_computation() {
        let (_, model) = two_net_fixture();
        let tech = TechnologyParams::default();
        let pref = tech.power_prefactor();
        let n0 = NetId::new(0);
        assert!((model.s_wl(n0) - pref * 0.2 * 73.8e-12).abs() < 1e-12);
        assert!((model.s_ilv(n0) - pref * 0.2 * 1480e-12 * 6.4e-6).abs() < 1e-15);
        // Two input pins on n0.
        assert!((model.s_pins(n0) - pref * 0.2 * 0.35e-15 * 2.0).abs() < 1e-18);
    }

    #[test]
    fn net_power_is_affine_in_geometry() {
        let (_, model) = two_net_fixture();
        let n0 = NetId::new(0);
        let p0 = model.net_power(n0, 0.0, 0.0);
        let p1 = model.net_power(n0, 1e-4, 0.0);
        let p2 = model.net_power(n0, 2e-4, 0.0);
        assert!((p2 - p1 - (p1 - p0)).abs() < 1e-18, "linear in WL");
        assert!(p0 > 0.0, "pin term is placement-independent");
        assert!(model.net_power(n0, 1e-4, 3.0) > p1, "vias add power");
    }

    #[test]
    fn cell_power_sums_driven_nets() {
        let (netlist, model) = two_net_fixture();
        let a = CellId::new(0);
        let p = model.cell_power(&netlist, a, |_| (1.0e-4, 1.0));
        let expected = model.net_power(NetId::new(0), 1.0e-4, 1.0)
            + model.net_power(NetId::new(1), 1.0e-4, 1.0);
        assert!((p - expected).abs() < 1e-18);
        // Sink-only cells dissipate nothing in this model.
        let d = CellId::new(2);
        assert_eq!(model.cell_power(&netlist, d, |_| (1.0, 1.0)), 0.0);
    }

    #[test]
    fn leakage_adds_to_every_cell() {
        let (netlist, _) = two_net_fixture();
        let tech = TechnologyParams {
            leakage_per_cell: 1.0e-6,
            ..TechnologyParams::default()
        };
        let model = PowerModel::new(&netlist, &tech, 0.7e-6);
        assert_eq!(model.leakage_per_cell(), 1.0e-6);
        // Even a sink-only cell now dissipates its leakage.
        let d = CellId::new(2);
        assert!((model.cell_power(&netlist, d, |_| (0.0, 0.0)) - 1.0e-6).abs() < 1e-18);
    }

    #[test]
    fn higher_activity_means_more_power() {
        let (_, model) = two_net_fixture();
        let hot = model.net_power(NetId::new(0), 1e-4, 1.0); // a = 0.2
        let cold = model.net_power(NetId::new(1), 1e-4, 1.0); // a = 0.1
        assert!(hot > cold);
    }
}
