//! Deterministic fault injection and the degradation record.
//!
//! A [`FaultPlan`] attached to a run via
//! [`PlaceOptions::faults`](crate::PlaceOptions) makes the pipeline
//! *pretend* specific failures happened at specific stage boundaries —
//! the same (stage, pass) key space the observer events use — so the
//! recovery paths hardened into the engine can be exercised end to end
//! without building pathological inputs:
//!
//! * [`FaultKind::NanPower`] — poisons one power-map deposit with NaN
//!   before the thermal solve at the keyed stage boundary.
//! * [`FaultKind::CgBreakdown`] — makes the CG solve at the keyed stage
//!   boundary report non-convergence, forcing the damped-Jacobi fallback.
//! * [`FaultKind::PartitionImbalance`] — makes the root bisection of
//!   global placement report an imbalance failure, forcing the
//!   relaxed-tolerance retry path.
//! * [`FaultKind::CorruptCheckpoint`] — truncates the checkpoint file
//!   written after the keyed stage, so a later resume exercises the
//!   quarantine path.
//! * [`FaultKind::CheckpointWriteIo`] — makes the checkpoint write after
//!   the keyed stage fail with a typed
//!   [`PlaceError::Checkpoint`](crate::PlaceError), the retryable error
//!   class a supervising daemon must handle (retry with backoff, then
//!   dead-letter).
//! * [`FaultKind::SlowStage`] — injects a fixed wall-clock stall at the
//!   keyed stage's begin, without touching any placement arithmetic, so
//!   deadline/time-budget and queue-latency paths are exercisable.
//!
//! Injection is deterministic: a site either is armed explicitly with
//! [`FaultPlan::inject`], or arms itself when a seeded hash of
//! `(seed, kind, site)` falls below the configured probability
//! ([`FaultPlan::with_probability`]). Either way the decision depends
//! only on the plan, never on timing or thread count, and each armed
//! site fires at most once.
//!
//! Every recovery the run performs — injected or genuine — is recorded
//! as a [`Degradation`] in
//! [`PlacementResult::degradations`](crate::PlacementResult) and
//! reported through the observer as
//! [`PlacerEvent::Degraded`](crate::PlacerEvent).

use std::fmt;

/// One injectable fault class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Poison a power-map deposit with NaN before a thermal solve.
    NanPower,
    /// Make a CG thermal solve report non-convergence.
    CgBreakdown,
    /// Make the root bisection of global placement report an imbalance
    /// failure.
    PartitionImbalance,
    /// Truncate the checkpoint `.pl` written after the keyed stage.
    CorruptCheckpoint,
    /// Fail the checkpoint write after the keyed stage with a typed
    /// I/O error ([`PlaceError::Checkpoint`](crate::PlaceError)).
    CheckpointWriteIo,
    /// Stall the keyed stage's begin by a fixed wall-clock delay
    /// (placement bits are unaffected).
    SlowStage,
}

impl FaultKind {
    /// Stable machine-readable name (used in events and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::NanPower => "nan-power",
            FaultKind::CgBreakdown => "cg-breakdown",
            FaultKind::PartitionImbalance => "partition-imbalance",
            FaultKind::CorruptCheckpoint => "corrupt-checkpoint",
            FaultKind::CheckpointWriteIo => "io-error:checkpoint-write",
            FaultKind::SlowStage => "slow-stage",
        }
    }

    /// All injectable kinds, in declaration order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::NanPower,
        FaultKind::CgBreakdown,
        FaultKind::PartitionImbalance,
        FaultKind::CorruptCheckpoint,
        FaultKind::CheckpointWriteIo,
        FaultKind::SlowStage,
    ];

    /// Parses a stable name back into a kind.
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.as_str() == name)
    }

    /// The stage site a fault lands on when a spec names none.
    pub fn default_site(self) -> &'static str {
        match self {
            FaultKind::NanPower | FaultKind::CgBreakdown => "final",
            FaultKind::PartitionImbalance
            | FaultKind::CorruptCheckpoint
            | FaultKind::CheckpointWriteIo => "global",
            FaultKind::SlowStage => "coarse[0]",
        }
    }
}

/// Parses one `KIND[:SITE]` fault spec (the `--inject-fault` syntax,
/// shared by the CLI and the `tvp serve` job API). Kind names may
/// themselves contain `:` (`io-error:checkpoint-write`), so the known
/// names are matched longest-first before the remainder is read as a
/// site; an omitted site defaults to [`FaultKind::default_site`].
///
/// # Errors
///
/// Returns a human-readable message naming the valid kinds when `spec`
/// matches none of them.
pub fn parse_spec(spec: &str) -> Result<(FaultKind, String), String> {
    let matched = FaultKind::ALL
        .into_iter()
        .filter(|k| {
            spec == k.as_str()
                || spec
                    .strip_prefix(k.as_str())
                    .is_some_and(|rest| rest.starts_with(':'))
        })
        .max_by_key(|k| k.as_str().len());
    let Some(kind) = matched else {
        return Err(format!(
            "unknown fault kind in `{spec}` (expected one of: {})",
            FaultKind::ALL.map(FaultKind::as_str).join(", ")
        ));
    };
    let site = spec[kind.as_str().len()..]
        .strip_prefix(':')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| kind.default_site().to_string());
    Ok((kind, site))
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A deterministic, seeded plan of faults to inject into one run.
///
/// Sites are keyed by `(kind, site)` where `site` is a stage label
/// (`"global"`, `"coarse"`, `"detail[0]"`, `"final"`, ...) matching the
/// labels the observer events carry. The plan is consumed by the run it
/// is attached to.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Probability in `[0, 1]` that a queried site self-arms.
    probability: f64,
    /// Explicitly armed `(kind, site)` pairs.
    armed: Vec<(FaultKind, String)>,
    /// Sites that already fired (each fires at most once).
    fired: Vec<(FaultKind, String)>,
}

impl FaultPlan {
    /// An empty plan: nothing fires unless armed with
    /// [`inject`](Self::inject).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A plan where every queried site independently self-arms with the
    /// given probability, decided by a hash of `(seed, kind, site)` —
    /// deterministic for a given seed, independent of query order,
    /// timing, and thread count.
    pub fn with_probability(seed: u64, probability: f64) -> Self {
        Self {
            seed,
            probability: probability.clamp(0.0, 1.0),
            ..Self::default()
        }
    }

    /// Arms one `(kind, site)` pair explicitly.
    #[must_use]
    pub fn inject(mut self, kind: FaultKind, site: impl Into<String>) -> Self {
        self.armed.push((kind, site.into()));
        self
    }

    /// Whether `(kind, site)` should fire now. An armed site fires
    /// exactly once; unarmed sites never fire.
    pub fn should_fire(&mut self, kind: FaultKind, site: &str) -> bool {
        if self.fired.iter().any(|(k, s)| *k == kind && s == site) {
            return false;
        }
        let armed = self.armed.iter().any(|(k, s)| *k == kind && s == site)
            || (self.probability > 0.0
                && site_hash(self.seed, kind, site) < arm_threshold(self.probability));
        if armed {
            self.fired.push((kind, site.to_string()));
        }
        armed
    }

    /// Every `(kind, site)` that fired so far, in firing order.
    pub fn fired(&self) -> &[(FaultKind, String)] {
        &self.fired
    }
}

/// FNV-1a over the seed, kind, and site label.
fn site_hash(seed: u64, kind: FaultKind, site: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in seed.to_le_bytes() {
        eat(b);
    }
    for b in kind.as_str().bytes() {
        eat(b);
    }
    for b in site.bytes() {
        eat(b);
    }
    hash
}

fn arm_threshold(probability: f64) -> u64 {
    if probability >= 1.0 {
        u64::MAX
    } else {
        (probability * u64::MAX as f64) as u64
    }
}

/// One graceful degradation the pipeline performed instead of failing.
#[derive(Clone, PartialEq, Debug)]
pub enum Degradation {
    /// A thermal solve at `stage` could not run the normal path: NaN
    /// power deposits were zeroed and/or CG gave way to the damped-Jacobi
    /// fallback. Temperatures for that snapshot are approximate.
    ThermalDegraded {
        /// Stage label of the affected solve.
        stage: String,
        /// What happened (sanitized deposits, fallback residual, ...).
        detail: String,
    },
    /// Bisections exceeded the balance tolerance and were retried with a
    /// relaxed tolerance. Placement quality may be reduced.
    PartitionRetried {
        /// Total relaxed-tolerance retries across global placement.
        retries: usize,
    },
    /// A corrupted checkpoint was renamed to `*.corrupt` and the run
    /// restarted from scratch instead of resuming.
    CheckpointQuarantined {
        /// Path of the quarantined manifest.
        path: String,
        /// Why the checkpoint was rejected.
        reason: String,
    },
}

impl Degradation {
    /// Stable machine-readable name (used in events and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::ThermalDegraded { .. } => "thermal-degraded",
            Degradation::PartitionRetried { .. } => "partition-retried",
            Degradation::CheckpointQuarantined { .. } => "checkpoint-quarantined",
        }
    }

    /// Human-readable detail string.
    pub fn detail(&self) -> String {
        match self {
            Degradation::ThermalDegraded { stage, detail } => format!("{stage}: {detail}"),
            Degradation::PartitionRetried { retries } => {
                format!("{retries} relaxed-tolerance retries")
            }
            Degradation::CheckpointQuarantined { path, reason } => format!("{path}: {reason}"),
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_sites_fire_exactly_once() {
        let mut plan = FaultPlan::new(1).inject(FaultKind::NanPower, "global");
        assert!(!plan.should_fire(FaultKind::NanPower, "coarse"));
        assert!(!plan.should_fire(FaultKind::CgBreakdown, "global"));
        assert!(plan.should_fire(FaultKind::NanPower, "global"));
        assert!(!plan.should_fire(FaultKind::NanPower, "global"), "one-shot");
        assert_eq!(plan.fired().len(), 1);
    }

    #[test]
    fn probability_extremes() {
        let mut never = FaultPlan::with_probability(7, 0.0);
        let mut always = FaultPlan::with_probability(7, 1.0);
        for site in ["global", "coarse", "final"] {
            assert!(!never.should_fire(FaultKind::NanPower, site));
            assert!(always.should_fire(FaultKind::NanPower, site));
        }
    }

    #[test]
    fn probabilistic_arming_is_seed_deterministic() {
        let decide = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::with_probability(seed, 0.5);
            ["global", "coarse", "detail[0]", "final"]
                .iter()
                .map(|s| plan.should_fire(FaultKind::CgBreakdown, s))
                .collect()
        };
        assert_eq!(decide(3), decide(3));
        // Across many seeds, both outcomes occur.
        let any_fired = (0..32).any(|s| decide(s).iter().any(|&b| b));
        let any_skipped = (0..32).any(|s| decide(s).iter().any(|&b| !b));
        assert!(any_fired && any_skipped);
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(
            FaultKind::parse("io-error:checkpoint-write"),
            Some(FaultKind::CheckpointWriteIo)
        );
        assert_eq!(FaultKind::parse("slow-stage"), Some(FaultKind::SlowStage));
        assert_eq!(FaultKind::parse("io-error"), None);
        assert_eq!(FaultKind::parse("no-such-fault"), None);
    }

    #[test]
    fn degradations_render_kind_and_detail() {
        let d = Degradation::ThermalDegraded {
            stage: "global".into(),
            detail: "3 NaN deposits zeroed".into(),
        };
        assert_eq!(d.kind(), "thermal-degraded");
        assert!(d.to_string().contains("global"));
        let d = Degradation::PartitionRetried { retries: 2 };
        assert!(d.to_string().contains("2 relaxed"));
        let d = Degradation::CheckpointQuarantined {
            path: "/tmp/ck/manifest.tvp.corrupt".into(),
            reason: "placement hash mismatch".into(),
        };
        assert!(d.to_string().contains("hash mismatch"));
    }
}
