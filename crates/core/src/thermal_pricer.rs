//! Frozen-field per-move thermal pricing (DESIGN.md §14).
//!
//! When a stage's thermal tier is [`ThermalTier::Compact`] and
//! `alpha_temp > 0`, the legalization move loops add a thermal term to
//! every candidate's objective delta. The term is priced against a
//! *frozen* temperature field: the compact model evaluates the field once
//! per stage (microseconds), each candidate costs two O(1) field probes,
//! and every committed move re-superposes the moved cell's power so the
//! cached field tracks the placement without re-evaluating.
//!
//! The price of moving cell `j` from position `s` to position `d` is
//!
//! ```text
//! α_TEMP · (P_j / P̄) · (T(d) − T(s))
//! ```
//!
//! meters of wirelength-equivalent: `α_TEMP` (m/K) converts kelvins to
//! the objective's unit, and the `P_j / P̄` weight (cell power over the
//! mean cell power at the last refresh) makes relocating *hot* cells into
//! cool regions worth more than shuffling cold ones — exactly the
//! gradient the superposed field assigns them. For a swap the two
//! single-cell prices add; with equal weights they would cancel (the
//! frozen field is position-symmetric), so the power weighting is what
//! lets swaps see temperature at all.
//!
//! **`cell_power` maintenance contract** (see
//! [`IncrementalObjective::cell_power`]): the cached per-cell powers read
//! here are maintained incrementally only while the thermal objective
//! term is active (`alpha_temp > 0`). The pricer is only constructed
//! under that same condition, so every power it reads — at pricing and at
//! commit — is current.
//!
//! [`ThermalTier::Compact`]: tvp_thermal::ThermalTier::Compact

use crate::metrics::build_power_map;
use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::{Chip, PlaceError};
use tvp_netlist::Netlist;
use tvp_thermal::{CompactModel, TemperatureField, ThermalOracle};

/// Per-move thermal pricing against a compact-model frozen field.
#[derive(Clone, Debug)]
pub(crate) struct ThermalMovePricer {
    model: CompactModel,
    field: Option<TemperatureField>,
    alpha_temp: f64,
    /// Mean cell power at the last refresh (the `P̄` of the weight);
    /// zero disables pricing until the next refresh.
    mean_power: f64,
    width: f64,
    depth: f64,
    /// Candidate prices computed since construction (observability).
    pub priced: u64,
    /// Committed field updates since construction (observability).
    pub committed: u64,
}

impl ThermalMovePricer {
    /// Creates an inactive pricer; [`refresh`](Self::refresh) arms it.
    pub fn new(model: CompactModel, alpha_temp: f64) -> Self {
        let (width, depth) = model.footprint();
        Self {
            model,
            field: None,
            alpha_temp,
            mean_power: 0.0,
            width,
            depth,
            priced: 0,
            committed: 0,
        }
    }

    /// Re-grounds the frozen field on the current placement: deposits
    /// every cell's power at compact resolution and evaluates the model.
    ///
    /// # Errors
    ///
    /// Propagates a power-map/model dimension mismatch (a construction
    /// bug, never expected at runtime).
    pub fn refresh(
        &mut self,
        netlist: &Netlist,
        chip: &Chip,
        model: &ObjectiveModel,
        objective: &IncrementalObjective<'_>,
    ) -> Result<(), PlaceError> {
        let mut power_map = build_power_map(netlist, chip, model, objective, &self.model);
        power_map.sanitize();
        let total = power_map.total();
        let n_cells = objective.placement().len().max(1);
        self.mean_power = total / n_cells as f64;
        self.field = Some(self.model.evaluate(&power_map)?);
        Ok(())
    }

    /// Whether the pricer has a field to price against.
    pub fn armed(&self) -> bool {
        self.field.is_some() && self.mean_power > 0.0
    }

    /// The thermal delta (meters of wirelength-equivalent) of moving a
    /// cell with power `watts` from `from` to `to` on the frozen field.
    /// Zero until armed.
    pub fn price(&mut self, watts: f64, from: (f64, f64, u16), to: (f64, f64, u16)) -> f64 {
        if !self.armed() || watts <= 0.0 {
            return 0.0;
        }
        let Some(field) = self.field.as_ref() else {
            return 0.0;
        };
        self.priced += 1;
        let t_from = field.sample(from.0, from.1, from.2 as usize, self.width, self.depth);
        let t_to = field.sample(to.0, to.1, to.2 as usize, self.width, self.depth);
        self.alpha_temp * (watts / self.mean_power) * (t_to - t_from)
    }

    /// The thermal delta of swapping two cells' positions (each cell
    /// priced at the other's position).
    pub fn price_swap(
        &mut self,
        watts_a: f64,
        pos_a: (f64, f64, u16),
        watts_b: f64,
        pos_b: (f64, f64, u16),
    ) -> f64 {
        self.price(watts_a, pos_a, pos_b) + self.price(watts_b, pos_b, pos_a)
    }

    /// Commits a move to the frozen field: the cell's power is removed at
    /// `from` and re-superposed at `to`, two kernel accumulations.
    pub fn commit(&mut self, watts: f64, from: (f64, f64, u16), to: (f64, f64, u16)) {
        let Some(field) = &mut self.field else {
            return;
        };
        if watts <= 0.0 {
            return;
        }
        self.committed += 1;
        self.model
            .add_point_source(field, from.0, from.1, from.2 as usize, -watts);
        self.model
            .add_point_source(field, to.0, to.1, to.2 as usize, watts);
    }

    /// Commits a position swap of two cells.
    pub fn commit_swap(
        &mut self,
        watts_a: f64,
        pos_a: (f64, f64, u16),
        watts_b: f64,
        pos_b: (f64, f64, u16),
    ) {
        self.commit(watts_a, pos_a, pos_b);
        self.commit(watts_b, pos_b, pos_a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chip, Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_thermal::{CompactModel, Preconditioner, ThermalSimulator};

    fn pricer_fixture() -> (
        Netlist,
        Chip,
        PlacerConfig,
        ObjectiveModel,
        ThermalMovePricer,
    ) {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let config = PlacerConfig::new(4).with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, 8, 8).unwrap();
        let (compact, _) = CompactModel::fit(&sim, Preconditioner::default()).unwrap();
        let pricer = ThermalMovePricer::new(compact, config.alpha_temp);
        (netlist, chip, config, model, pricer)
    }

    #[test]
    fn unarmed_pricer_prices_everything_at_zero() {
        let (_, chip, _, _, mut pricer) = pricer_fixture();
        assert!(!pricer.armed());
        let p = pricer.price(1.0, (0.0, 0.0, 0), (chip.width, chip.depth, 3));
        assert_eq!(p, 0.0);
        assert_eq!(pricer.priced, 0);
    }

    #[test]
    fn moving_power_toward_the_hotspot_costs_and_back_saves() {
        let (netlist, chip, _, model, mut pricer) = pricer_fixture();
        // Pile every cell into one corner of the top layer: a hotspot.
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                0.05 * chip.width,
                0.05 * chip.depth,
                3,
            );
        }
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        pricer.refresh(&netlist, &chip, &model, &objective).unwrap();
        assert!(pricer.armed());

        let hot = (0.05 * chip.width, 0.05 * chip.depth, 3u16);
        let cool = (0.95 * chip.width, 0.95 * chip.depth, 0u16);
        let w = 1.0e-4;
        let away = pricer.price(w, hot, cool);
        let toward = pricer.price(w, cool, hot);
        assert!(away < 0.0, "leaving the hotspot must be priced negative");
        assert!((away + toward).abs() < 1e-18, "pricing is antisymmetric");
        // Hotter cells pay proportionally more.
        let away2 = pricer.price(2.0 * w, hot, cool);
        assert!((away2 - 2.0 * away).abs() <= 1e-12 * away.abs());
        assert_eq!(pricer.priced, 3);
    }

    #[test]
    fn commit_keeps_field_consistent_with_fresh_refresh() {
        let (netlist, chip, _, model, mut pricer) = pricer_fixture();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                (i as f64 / netlist.num_cells() as f64) * chip.width,
                chip.depth / 2.0,
                (i % 4) as u16,
            );
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        pricer.refresh(&netlist, &chip, &model, &objective).unwrap();

        // Move one powered cell across the chip; commit the relocation.
        let cell = (0..netlist.num_cells())
            .map(tvp_netlist::CellId::new)
            .find(|&c| objective.cell_power(c) > 0.0)
            .expect("synthetic netlists always have driving cells");
        let from = objective.placement().position(cell);
        let to = (0.9 * chip.width, 0.9 * chip.depth, 2u16);
        let watts = objective.cell_power(cell);
        objective.apply_move(cell, to.0, to.1, to.2);
        pricer.commit(watts, from, to);

        // An independently refreshed pricer on the moved placement must
        // agree closely (only the moved cell's power changed through the
        // geometry change of its nets).
        let mut fresh = pricer.clone();
        fresh.refresh(&netlist, &chip, &model, &objective).unwrap();
        let probe = (0.9 * chip.width, 0.9 * chip.depth, 2u16);
        let a = pricer.field.as_ref().unwrap().sample(
            probe.0,
            probe.1,
            probe.2 as usize,
            chip.width,
            chip.depth,
        );
        let b = fresh.field.as_ref().unwrap().sample(
            probe.0,
            probe.1,
            probe.2 as usize,
            chip.width,
            chip.depth,
        );
        let scale = b.abs().max(1e-12);
        assert!(
            (a - b).abs() / scale < 0.05,
            "committed field drifted from fresh evaluation: {a} vs {b}"
        );
        assert_eq!(pricer.committed, 1);
    }
}
