//! Thermal-aware net weighting (paper §3.1, Eq. 6–8).
//!
//! Rewriting the objective per net (Eq. 7) yields one weight for the
//! lateral (x/y) wirelength component and one for the vertical (ILV)
//! component of every net:
//!
//! ```text
//! nw_lat(i)  = 1 + α_TEMP · R_i^net · s_i^wl
//! nw_vert(i) = 1 + α_TEMP · R_i^net · s_i^ilv / α_ILV
//! ```
//!
//! where `R_i^net` is the thermal resistance at the net's driver cell.
//! Nets that drive power into a hot (high-resistance) environment are
//! weighted up, so min-cut partitioning shortens them preferentially —
//! which reduces power exactly where it hurts most.

use crate::objective::ObjectiveModel;
use crate::Placement;
use tvp_netlist::{NetId, Netlist};

/// Minimum nets per parallel chunk (the per-net work is one resistance
/// query; smaller batches are not worth scheduling).
const NETWEIGHT_MIN_CHUNK: usize = 512;

/// Below this many nets the whole weighting runs inline — pool dispatch
/// costs more than it saves on small designs (BENCH_hotpaths.json showed
/// threading *regressing* 0.021 → 0.040 ms). The inline path runs the
/// identical chunks, so results stay bitwise equal.
const NETWEIGHT_SERIAL_BELOW: usize = 4096;

/// Per-net lateral and vertical weights.
#[derive(Clone, PartialEq, Debug)]
pub struct NetWeights {
    lateral: Vec<f64>,
    vertical: Vec<f64>,
}

impl NetWeights {
    /// Uniform unit weights (thermal weighting off).
    pub fn unit(num_nets: usize) -> Self {
        Self {
            lateral: vec![1.0; num_nets],
            vertical: vec![1.0; num_nets],
        }
    }

    /// Computes Eq. 8 weights at the current placement.
    ///
    /// `R_i^net` is evaluated with the full 3D straight-path model at each
    /// driver's current position (§3.2 notes the weights use all three
    /// dimensions). Driverless nets keep weight 1. The structural net
    /// weight from the benchmark multiplies both components.
    pub fn thermal(netlist: &Netlist, model: &ObjectiveModel, placement: &Placement) -> Self {
        let n = netlist.num_nets();
        let mut lateral = vec![0.0; n];
        let mut vertical = vec![0.0; n];
        let alpha_temp = model.alpha_temp;
        let alpha_ilv = model.alpha_ilv;
        // One weight pair per net, each a pure function of that net's
        // driver position: chunk-parallel and bitwise identical for any
        // thread count.
        tvp_parallel::for_each_chunk_mut2_cutoff(
            &mut lateral,
            &mut vertical,
            NETWEIGHT_MIN_CHUNK,
            NETWEIGHT_SERIAL_BELOW,
            |start, lats, verts| {
                for (off, (l, v)) in lats.iter_mut().zip(verts.iter_mut()).enumerate() {
                    let net_id = NetId::new(start + off);
                    let structural = netlist.net(net_id).weight();
                    let (mut lat, mut vert) = (1.0, 1.0);
                    if alpha_temp > 0.0 {
                        if let Some(driver) = netlist.net_driver_cell(net_id) {
                            let (x, y, layer) = placement.position(driver);
                            let r_net =
                                model.cell_resistance(x, y, layer, netlist.cell(driver).area());
                            lat += alpha_temp * r_net * model.power().s_wl(net_id);
                            vert += alpha_temp * r_net * model.power().s_ilv(net_id) / alpha_ilv;
                        }
                    }
                    *l = structural * lat;
                    *v = structural * vert;
                }
            },
        );
        Self { lateral, vertical }
    }

    /// Weight of net `i` for x/y-direction cuts.
    #[inline]
    pub fn lateral(&self, net: NetId) -> f64 {
        self.lateral[net.index()]
    }

    /// Weight of net `i` for z-direction cuts.
    #[inline]
    pub fn vertical(&self, net: NetId) -> f64 {
        self.vertical[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chip, Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_netlist::CellId;

    fn fixture(alpha_temp: f64) -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 80, 4.0e-10)).unwrap();
        let config = PlacerConfig::new(4).with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    #[test]
    fn zero_alpha_temp_gives_structural_weights() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = Placement::centered(netlist.num_cells(), &chip);
        let w = NetWeights::thermal(&netlist, &model, &placement);
        for e in 0..netlist.num_nets() {
            let id = NetId::new(e);
            assert_eq!(w.lateral(id), netlist.net(id).weight());
            assert_eq!(w.vertical(id), netlist.net(id).weight());
        }
    }

    #[test]
    fn thermal_weights_exceed_one() {
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = Placement::centered(netlist.num_cells(), &chip);
        let w = NetWeights::thermal(&netlist, &model, &placement);
        let mut some_above = false;
        for e in 0..netlist.num_nets() {
            let id = NetId::new(e);
            assert!(w.lateral(id) >= netlist.net(id).weight());
            assert!(w.vertical(id) >= netlist.net(id).weight());
            if w.lateral(id) > netlist.net(id).weight() {
                some_above = true;
            }
        }
        assert!(some_above, "thermal term must raise some weights");
    }

    #[test]
    fn drivers_higher_in_the_stack_get_heavier_nets() {
        let (netlist, chip, config) = fixture(1.0e-3);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        let low = NetWeights::thermal(&netlist, &model, &placement);
        // Raise every cell to the top layer: all resistances grow.
        for i in 0..netlist.num_cells() {
            let c = CellId::new(i);
            let (x, y, _) = placement.position(c);
            placement.set(c, x, y, (chip.num_layers - 1) as u16);
        }
        let high = NetWeights::thermal(&netlist, &model, &placement);
        for e in 0..netlist.num_nets() {
            let id = NetId::new(e);
            if netlist.net_driver_cell(id).is_some() && netlist.net(id).switching_activity() > 0.0 {
                assert!(
                    high.lateral(id) >= low.lateral(id),
                    "net {e}: {} < {}",
                    high.lateral(id),
                    low.lateral(id)
                );
            }
        }
    }

    #[test]
    fn vertical_weight_scales_with_inverse_alpha_ilv() {
        let (netlist, chip, _) = fixture(1.0e-4);
        let config_small = PlacerConfig::new(4)
            .with_alpha_temp(1.0e-4)
            .with_alpha_ilv(1.0e-6);
        let config_large = PlacerConfig::new(4)
            .with_alpha_temp(1.0e-4)
            .with_alpha_ilv(1.0e-4);
        let model_small = ObjectiveModel::new(&netlist, &chip, &config_small).unwrap();
        let model_large = ObjectiveModel::new(&netlist, &chip, &config_large).unwrap();
        let placement = Placement::centered(netlist.num_cells(), &chip);
        let w_small = NetWeights::thermal(&netlist, &model_small, &placement);
        let w_large = NetWeights::thermal(&netlist, &model_large, &placement);
        // Smaller α_ILV → vias are cheap in the base objective → thermal
        // term dominates the vertical weight more strongly.
        let driven = (0..netlist.num_nets())
            .map(NetId::new)
            .find(|&e| {
                netlist.net_driver_cell(e).is_some() && netlist.net(e).switching_activity() > 0.0
            })
            .unwrap();
        assert!(w_small.vertical(driven) > w_large.vertical(driven));
    }

    #[test]
    fn unit_weights_are_all_one() {
        let w = NetWeights::unit(5);
        assert_eq!(w.lateral(NetId::new(4)), 1.0);
        assert_eq!(w.vertical(NetId::new(0)), 1.0);
    }
}
