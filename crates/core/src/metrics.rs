//! Placement quality metrics: the quantities every figure of the paper's
//! evaluation reports.

use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::{Chip, PlaceError};
use std::fmt;
use tvp_netlist::Netlist;
use tvp_thermal::{
    CgStats, FallbackStats, PowerMap, ThermalError, ThermalSimulator, ThermalSolveContext,
};

/// Quality metrics of one placement.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PlacementMetrics {
    /// Total half-perimeter wirelength, meters.
    pub wirelength: f64,
    /// Total interlayer via count (sum of net layer spans).
    pub ilv_count: f64,
    /// Via count per interlayer boundary per unit footprint area, m⁻²
    /// (the Fig. 3 y-axis). Zero for single-layer chips.
    pub ilv_density_per_interlayer: f64,
    /// Total dynamic power, watts (Eq. 4–5 summed over nets).
    pub total_power: f64,
    /// Mean cell temperature from the finite-volume simulation, °C.
    pub avg_temperature: f64,
    /// Maximum device temperature, °C.
    pub max_temperature: f64,
    /// Objective value (Eq. 3) the placer was minimizing.
    pub objective: f64,
}

impl fmt::Display for PlacementMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WL = {:.4e} m, ILV = {:.0}, power = {:.4e} W, T_avg = {:.2} °C, T_max = {:.2} °C",
            self.wirelength,
            self.ilv_count,
            self.total_power,
            self.avg_temperature,
            self.max_temperature
        )
    }
}

/// Computes all metrics for the placement held by `objective`.
///
/// Temperatures come from the finite-volume simulator on a
/// `thermal_grid.0 × thermal_grid.1` lateral grid; the power map deposits
/// each cell's Eq. 10 power at its placed position. The average
/// temperature is the mean over *cells* (cell temperatures are what the
/// Eq. 1 objective weighs), the maximum over all device nodes.
///
/// # Errors
///
/// Propagates thermal simulator construction/solve failures.
pub fn compute(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    thermal_grid: (usize, usize),
) -> Result<PlacementMetrics, PlaceError> {
    let (nx, ny) = thermal_grid;
    let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, nx, ny)?;
    let mut context = sim.context();
    compute_with(netlist, chip, model, objective, &sim, &mut context)
}

/// [`compute`] on a caller-owned simulator and solve context, so a
/// placement loop that evaluates temperature repeatedly reuses the
/// cached preconditioner and warm-starts CG from the previous field.
///
/// # Errors
///
/// Propagates thermal solve failures.
pub fn compute_with(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    sim: &ThermalSimulator,
    context: &mut ThermalSolveContext,
) -> Result<PlacementMetrics, PlaceError> {
    compute_with_guarded(
        netlist,
        chip,
        model,
        objective,
        sim,
        context,
        ThermalGuard::default(),
    )
    .map(|(metrics, _)| metrics)
}

/// [`compute_with`] plus the [`ThermalOutcome`] of the solve, so the
/// engine can record degradations (and inject faults).
pub(crate) fn compute_with_guarded(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    sim: &ThermalSimulator,
    context: &mut ThermalSolveContext,
    guard: ThermalGuard,
) -> Result<(PlacementMetrics, ThermalOutcome), PlaceError> {
    let wirelength = objective.total_wirelength();
    let ilv_count = objective.total_ilv();
    let total_power = objective.total_power();

    let interlayers = chip.num_layers.saturating_sub(1);
    let ilv_density_per_interlayer = if interlayers == 0 {
        0.0
    } else {
        ilv_count / interlayers as f64 / chip.layer_area()
    };

    let (avg_temperature, max_temperature, outcome) =
        solve_temperatures(netlist, chip, model, objective, sim, context, guard)?;

    Ok((
        PlacementMetrics {
            wirelength,
            ilv_count,
            ilv_density_per_interlayer,
            total_power,
            avg_temperature,
            max_temperature,
            objective: objective.total(),
        },
        outcome,
    ))
}

/// Fault injections for one guarded thermal solve (all off in normal
/// operation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct ThermalGuard {
    /// Poison one power-map deposit with NaN before the solve.
    pub inject_nan: bool,
    /// Pretend CG reported non-convergence, forcing the fallback.
    pub inject_cg_failure: bool,
}

/// What a guarded thermal solve actually did. Anything non-default means
/// the result is approximate and the run should flag
/// [`Degradation::ThermalDegraded`](crate::Degradation).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub(crate) struct ThermalOutcome {
    /// Non-finite power deposits zeroed before the solve.
    pub sanitized: usize,
    /// CG convergence record when the normal path ran.
    pub cg: Option<CgStats>,
    /// Damped-Jacobi record when CG was bypassed or diverged.
    pub fallback: Option<FallbackStats>,
}

impl ThermalOutcome {
    /// Whether anything other than the normal clean CG solve happened.
    pub fn degraded(&self) -> bool {
        self.sanitized > 0 || self.fallback.is_some()
    }

    /// Iterations the solve (CG or fallback) consumed.
    pub fn iterations(&self) -> usize {
        match (self.cg, self.fallback) {
            (Some(cg), _) => cg.iterations,
            (None, Some(fb)) => fb.iterations,
            (None, None) => 0,
        }
    }

    /// Whether the solve warm-started (the fallback never does).
    pub fn warm_started(&self) -> bool {
        self.cg.is_some_and(|s| s.warm_started)
    }

    /// Stable name of the preconditioner (or fallback solver) that
    /// produced the field.
    pub fn preconditioner(&self) -> &'static str {
        match (self.cg, self.fallback) {
            (Some(cg), _) => cg.preconditioner.as_str(),
            (None, Some(_)) => "damped-jacobi",
            (None, None) => "none",
        }
    }

    /// Relative residual before the first iteration (1.0 when the solve
    /// ran cold or through the fallback).
    pub fn initial_residual(&self) -> f64 {
        self.cg.map_or(1.0, |s| s.initial_residual)
    }

    /// Human-readable summary of the degradations, for the event stream.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.sanitized > 0 {
            parts.push(format!(
                "{} non-finite power deposit(s) zeroed",
                self.sanitized
            ));
        }
        if let Some(fb) = self.fallback {
            parts.push(format!(
                "CG gave way to damped Jacobi ({} sweeps, residual {:.3e})",
                fb.iterations, fb.residual
            ));
        }
        parts.join("; ")
    }
}

/// Solves the thermal field of the current placement through `context`
/// (warm-starting from its previous solution, if any) and returns the
/// `(cell-average, max)` temperatures plus the solve's
/// [`ThermalOutcome`].
///
/// This is the hardened path every stage boundary uses: non-finite power
/// deposits (injected or genuine) are zeroed before the solve, and a CG
/// breakdown (injected or a genuine [`ThermalError::SolverDiverged`])
/// falls back to the unconditionally-convergent damped-Jacobi solver
/// instead of failing the run.
pub(crate) fn solve_temperatures(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    sim: &ThermalSimulator,
    context: &mut ThermalSolveContext,
    guard: ThermalGuard,
) -> Result<(f64, f64, ThermalOutcome), PlaceError> {
    let (nx, ny, _) = sim.grid_dims();
    let mut power_map = PowerMap::new(nx, ny, chip.num_layers);
    for (cell, x, y, layer) in objective.placement().iter() {
        let p = model.power().cell_power(netlist, cell, |e| {
            let g = objective.net_geometry(e);
            (g.wirelength(), g.ilv)
        });
        if p > 0.0 {
            power_map.deposit(
                x,
                y,
                (layer as usize).min(chip.num_layers - 1),
                p,
                chip.width,
                chip.depth,
            );
        }
    }
    if guard.inject_nan {
        if let Some(v) = power_map.values_mut().first_mut() {
            *v = f64::NAN;
        }
    }

    let mut outcome = ThermalOutcome {
        sanitized: power_map.sanitize(),
        ..ThermalOutcome::default()
    };

    let field = if guard.inject_cg_failure {
        let (field, stats) = sim.solve_fallback(&power_map)?;
        // The fallback bypasses the context; drop the stale warm start so
        // the next CG solve runs cold instead of from an unrelated field.
        context.reset();
        outcome.fallback = Some(stats);
        field
    } else {
        match sim.solve_with(&power_map, context) {
            Ok(field) => {
                outcome.cg = context.last_stats();
                field
            }
            Err(ThermalError::SolverDiverged { .. }) => {
                let (field, stats) = sim.solve_fallback(&power_map)?;
                context.reset();
                outcome.fallback = Some(stats);
                field
            }
            Err(e) => return Err(e.into()),
        }
    };

    let mut t_sum = 0.0;
    let mut n_cells = 0usize;
    for (_, x, y, layer) in objective.placement().iter() {
        t_sum += field.sample(x, y, layer as usize, chip.width, chip.depth);
        n_cells += 1;
    }
    let avg_temperature = if n_cells == 0 {
        field.ambient()
    } else {
        t_sum / n_cells as f64
    };
    Ok((avg_temperature, field.max_temperature(), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_netlist::CellId;

    fn fixture() -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    #[test]
    fn metrics_are_consistent_with_objective() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                CellId::new(i),
                (i as f64 / netlist.num_cells() as f64) * chip.width,
                chip.depth / 2.0,
                (i % 4) as u16,
            );
        }
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        let metrics = compute(&netlist, &chip, &model, &objective, (8, 8)).unwrap();
        assert!((metrics.wirelength - objective.total_wirelength()).abs() < 1e-15);
        assert!((metrics.ilv_count - objective.total_ilv()).abs() < 1e-15);
        assert!(metrics.total_power > 0.0);
        assert!(
            metrics.avg_temperature > 0.0,
            "powered chip is above ambient"
        );
        assert!(metrics.max_temperature >= metrics.avg_temperature);
        let expected_density = metrics.ilv_count / 3.0 / chip.layer_area();
        assert!((metrics.ilv_density_per_interlayer - expected_density).abs() < 1e-6);
        assert!(!metrics.to_string().is_empty());
    }

    #[test]
    fn single_layer_has_zero_ilv_density() {
        let netlist = generate(&SynthConfig::named("t", 80, 4.0e-10)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let metrics = compute(&netlist, &chip, &model, &objective, (4, 4)).unwrap();
        assert_eq!(metrics.ilv_count, 0.0);
        assert_eq!(metrics.ilv_density_per_interlayer, 0.0);
    }

    #[test]
    fn guarded_solve_survives_injected_nan_and_cg_breakdown() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, 8, 8).unwrap();
        let mut context = sim.context();
        let clean = compute_with(&netlist, &chip, &model, &objective, &sim, &mut context).unwrap();

        for guard in [
            ThermalGuard {
                inject_nan: true,
                inject_cg_failure: false,
            },
            ThermalGuard {
                inject_nan: false,
                inject_cg_failure: true,
            },
            ThermalGuard {
                inject_nan: true,
                inject_cg_failure: true,
            },
        ] {
            let mut context = sim.context();
            let (metrics, outcome) = compute_with_guarded(
                &netlist,
                &chip,
                &model,
                &objective,
                &sim,
                &mut context,
                guard,
            )
            .unwrap();
            assert!(outcome.degraded(), "{guard:?}");
            assert_eq!(outcome.sanitized > 0, guard.inject_nan);
            assert_eq!(outcome.fallback.is_some(), guard.inject_cg_failure);
            assert!(!outcome.describe().is_empty());
            assert!(
                metrics.avg_temperature.is_finite() && metrics.avg_temperature > 0.0,
                "degraded solve still produces a usable field"
            );
            // The degraded answer is approximate (damped Jacobi stops on
            // an iteration cap; a zeroed deposit removes some power) but
            // must stay the same order of magnitude as the clean solve.
            let rel =
                (metrics.avg_temperature - clean.avg_temperature).abs() / clean.avg_temperature;
            assert!(rel < 0.75, "guard {guard:?} drifted {rel}");
        }
    }

    #[test]
    fn concentrating_power_on_top_layer_heats_the_chip() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let temp_with_all_on = |layer: u16| -> f64 {
            let mut placement = Placement::centered(netlist.num_cells(), &chip);
            for i in 0..netlist.num_cells() {
                let (x, y, _) = placement.position(CellId::new(i));
                placement.set(CellId::new(i), x, y, layer);
            }
            let objective = IncrementalObjective::new(&netlist, &model, placement);
            compute(&netlist, &chip, &model, &objective, (8, 8))
                .unwrap()
                .avg_temperature
        };
        let bottom = temp_with_all_on(0);
        let top = temp_with_all_on(3);
        assert!(
            top > bottom,
            "top-layer power ({top}) must run hotter than bottom ({bottom})"
        );
    }
}
