//! Placement quality metrics: the quantities every figure of the paper's
//! evaluation reports.

use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::{Chip, PlaceError};
use std::fmt;
use tvp_netlist::Netlist;
use tvp_thermal::{
    CgStats, FallbackStats, GridOracle, PowerMap, Preconditioner, TemperatureField, ThermalOracle,
    ThermalSimulator,
};

/// Quality metrics of one placement.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PlacementMetrics {
    /// Total half-perimeter wirelength, meters.
    pub wirelength: f64,
    /// Total interlayer via count (sum of net layer spans).
    pub ilv_count: f64,
    /// Via count per interlayer boundary per unit footprint area, m⁻²
    /// (the Fig. 3 y-axis). Zero for single-layer chips.
    pub ilv_density_per_interlayer: f64,
    /// Total dynamic power, watts (Eq. 4–5 summed over nets).
    pub total_power: f64,
    /// Mean cell temperature from the finite-volume simulation, °C.
    pub avg_temperature: f64,
    /// Maximum device temperature, °C.
    pub max_temperature: f64,
    /// Objective value (Eq. 3) the placer was minimizing.
    pub objective: f64,
}

impl fmt::Display for PlacementMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WL = {:.4e} m, ILV = {:.0}, power = {:.4e} W, T_avg = {:.2} °C, T_max = {:.2} °C",
            self.wirelength,
            self.ilv_count,
            self.total_power,
            self.avg_temperature,
            self.max_temperature
        )
    }
}

/// Computes all metrics for the placement held by `objective`.
///
/// Temperatures come from the finite-volume simulator on a
/// `thermal_grid.0 × thermal_grid.1` lateral grid; the power map deposits
/// each cell's Eq. 10 power at its placed position. The average
/// temperature is the mean over *cells* (cell temperatures are what the
/// Eq. 1 objective weighs), the maximum over all device nodes.
///
/// # Errors
///
/// Propagates thermal simulator construction/solve failures.
pub fn compute(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    thermal_grid: (usize, usize),
) -> Result<PlacementMetrics, PlaceError> {
    let (nx, ny) = thermal_grid;
    let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, nx, ny)?;
    let mut oracle = GridOracle::full_grid(sim, Preconditioner::default());
    compute_with(netlist, chip, model, objective, &mut oracle)
}

/// [`compute`] through a caller-owned [`ThermalOracle`], so a placement
/// loop that evaluates temperature repeatedly reuses the oracle's cached
/// state (preconditioner setup and CG warm starts for the grid-backed
/// tiers) and controls the accuracy/speed tier.
///
/// # Errors
///
/// Propagates thermal solve failures.
pub fn compute_with(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    oracle: &mut dyn ThermalOracle,
) -> Result<PlacementMetrics, PlaceError> {
    compute_with_guarded(
        netlist,
        chip,
        model,
        objective,
        oracle,
        ThermalGuard::default(),
    )
    .map(|(metrics, _, _)| metrics)
}

/// [`compute_with`] plus the [`ThermalOutcome`] and the solved field, so
/// the engine can record degradations, inject faults, and compare the
/// field against the full-grid reference.
pub(crate) fn compute_with_guarded(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    oracle: &mut dyn ThermalOracle,
    guard: ThermalGuard,
) -> Result<(PlacementMetrics, ThermalOutcome, TemperatureField), PlaceError> {
    let wirelength = objective.total_wirelength();
    let ilv_count = objective.total_ilv();
    let total_power = objective.total_power();

    let interlayers = chip.num_layers.saturating_sub(1);
    let ilv_density_per_interlayer = if interlayers == 0 {
        0.0
    } else {
        ilv_count / interlayers as f64 / chip.layer_area()
    };

    let (field, outcome) = solve_field(netlist, chip, model, objective, oracle, guard)?;
    let (avg_temperature, max_temperature) = sample_cells(chip, objective, &field);

    Ok((
        PlacementMetrics {
            wirelength,
            ilv_count,
            ilv_density_per_interlayer,
            total_power,
            avg_temperature,
            max_temperature,
            objective: objective.total(),
        },
        outcome,
        field,
    ))
}

/// Fault injections for one guarded thermal solve (all off in normal
/// operation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct ThermalGuard {
    /// Poison one power-map deposit with NaN before the solve.
    pub inject_nan: bool,
    /// Pretend CG reported non-convergence, forcing the fallback.
    pub inject_cg_failure: bool,
}

/// What a guarded thermal solve actually did. Anything non-default means
/// the result is approximate and the run should flag
/// [`Degradation::ThermalDegraded`](crate::Degradation).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub(crate) struct ThermalOutcome {
    /// Non-finite power deposits zeroed before the solve.
    pub sanitized: usize,
    /// CG convergence record when the normal path ran.
    pub cg: Option<CgStats>,
    /// Damped-Jacobi record when CG was bypassed or diverged.
    pub fallback: Option<FallbackStats>,
}

impl ThermalOutcome {
    /// Whether anything other than the normal clean CG solve happened.
    pub fn degraded(&self) -> bool {
        self.sanitized > 0 || self.fallback.is_some()
    }

    /// Iterations the solve (CG or fallback) consumed.
    pub fn iterations(&self) -> usize {
        match (self.cg, self.fallback) {
            (Some(cg), _) => cg.iterations,
            (None, Some(fb)) => fb.iterations,
            (None, None) => 0,
        }
    }

    /// Whether the solve warm-started (the fallback never does).
    pub fn warm_started(&self) -> bool {
        self.cg.is_some_and(|s| s.warm_started)
    }

    /// Stable name of the preconditioner (or fallback solver) that
    /// produced the field.
    pub fn preconditioner(&self) -> &'static str {
        match (self.cg, self.fallback) {
            (Some(cg), _) => cg.preconditioner.as_str(),
            (None, Some(_)) => "damped-jacobi",
            (None, None) => "none",
        }
    }

    /// Relative residual before the first iteration (1.0 when the solve
    /// ran cold or through the fallback).
    pub fn initial_residual(&self) -> f64 {
        self.cg.map_or(1.0, |s| s.initial_residual)
    }

    /// Human-readable summary of the degradations, for the event stream.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.sanitized > 0 {
            parts.push(format!(
                "{} non-finite power deposit(s) zeroed",
                self.sanitized
            ));
        }
        if let Some(fb) = self.fallback {
            parts.push(format!(
                "CG gave way to damped Jacobi ({} sweeps, residual {:.3e})",
                fb.iterations, fb.residual
            ));
        }
        parts.join("; ")
    }
}

/// Deposits each placed cell's Eq. 10 power into a power map matching
/// `oracle`'s evaluation grid. Physical-coordinate addressing makes this
/// resolution-agnostic: the same placement deposits consistently at full,
/// coarse, or compact resolution.
pub(crate) fn build_power_map(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    oracle: &dyn ThermalOracle,
) -> PowerMap {
    let (nx, ny, _) = oracle.grid_dims();
    let mut power_map = PowerMap::new(nx, ny, chip.num_layers);
    for (cell, x, y, layer) in objective.placement().iter() {
        let p = model.power().cell_power(netlist, cell, |e| {
            let g = objective.net_geometry(e);
            (g.wirelength(), g.ilv)
        });
        if p > 0.0 {
            power_map.deposit(
                x,
                y,
                (layer as usize).min(chip.num_layers - 1),
                p,
                chip.width,
                chip.depth,
            );
        }
    }
    power_map
}

/// Solves the thermal field of the current placement through `oracle`
/// (warm-starting from its previous solution on grid-backed tiers) and
/// returns the field plus the solve's [`ThermalOutcome`].
///
/// This is the hardened path every stage boundary uses: non-finite power
/// deposits (injected or genuine) are zeroed before the solve, and a CG
/// breakdown (injected via `guard.inject_cg_failure`, or a genuine
/// divergence inside the oracle) falls back to the
/// unconditionally-convergent damped-Jacobi solver instead of failing
/// the run.
pub(crate) fn solve_field(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    oracle: &mut dyn ThermalOracle,
    guard: ThermalGuard,
) -> Result<(TemperatureField, ThermalOutcome), PlaceError> {
    let mut power_map = build_power_map(netlist, chip, model, objective, oracle);
    if guard.inject_nan {
        if let Some(v) = power_map.values_mut().first_mut() {
            *v = f64::NAN;
        }
    }

    let sanitized = power_map.sanitize();
    let (field, stats) = oracle.solve(&power_map, guard.inject_cg_failure)?;
    Ok((
        field,
        ThermalOutcome {
            sanitized,
            cg: stats.cg,
            fallback: stats.fallback,
        },
    ))
}

/// Samples `field` at every placed cell and returns the
/// `(cell-average, max)` temperatures: the average is over *cells* (cell
/// temperatures are what the Eq. 1 objective weighs), the maximum over
/// all device nodes.
pub(crate) fn sample_cells(
    chip: &Chip,
    objective: &IncrementalObjective<'_>,
    field: &TemperatureField,
) -> (f64, f64) {
    let mut t_sum = 0.0;
    let mut n_cells = 0usize;
    for (_, x, y, layer) in objective.placement().iter() {
        t_sum += field.sample(x, y, layer as usize, chip.width, chip.depth);
        n_cells += 1;
    }
    let avg_temperature = if n_cells == 0 {
        field.ambient()
    } else {
        t_sum / n_cells as f64
    };
    (avg_temperature, field.max_temperature())
}

/// Per-cell `(max, avg)` absolute temperature difference between a
/// cheaper tier's field and the full-grid reference. The fields may live
/// on different grids, so the comparison samples both at each placed
/// cell's physical position (the temperatures the objective actually
/// consumes).
pub(crate) fn cross_model_error(
    chip: &Chip,
    objective: &IncrementalObjective<'_>,
    field: &TemperatureField,
    reference: &TemperatureField,
) -> (f64, f64) {
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    let mut n_cells = 0usize;
    for (_, x, y, layer) in objective.placement().iter() {
        let t = field.sample(x, y, layer as usize, chip.width, chip.depth);
        let r = reference.sample(x, y, layer as usize, chip.width, chip.depth);
        let err = (t - r).abs();
        max_err = max_err.max(err);
        sum_err += err;
        n_cells += 1;
    }
    if n_cells == 0 {
        (0.0, 0.0)
    } else {
        (max_err, sum_err / n_cells as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_netlist::CellId;

    fn fixture() -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    #[test]
    fn metrics_are_consistent_with_objective() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                CellId::new(i),
                (i as f64 / netlist.num_cells() as f64) * chip.width,
                chip.depth / 2.0,
                (i % 4) as u16,
            );
        }
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        let metrics = compute(&netlist, &chip, &model, &objective, (8, 8)).unwrap();
        assert!((metrics.wirelength - objective.total_wirelength()).abs() < 1e-15);
        assert!((metrics.ilv_count - objective.total_ilv()).abs() < 1e-15);
        assert!(metrics.total_power > 0.0);
        assert!(
            metrics.avg_temperature > 0.0,
            "powered chip is above ambient"
        );
        assert!(metrics.max_temperature >= metrics.avg_temperature);
        let expected_density = metrics.ilv_count / 3.0 / chip.layer_area();
        assert!((metrics.ilv_density_per_interlayer - expected_density).abs() < 1e-6);
        assert!(!metrics.to_string().is_empty());
    }

    #[test]
    fn single_layer_has_zero_ilv_density() {
        let netlist = generate(&SynthConfig::named("t", 80, 4.0e-10)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let metrics = compute(&netlist, &chip, &model, &objective, (4, 4)).unwrap();
        assert_eq!(metrics.ilv_count, 0.0);
        assert_eq!(metrics.ilv_density_per_interlayer, 0.0);
    }

    #[test]
    fn guarded_solve_survives_injected_nan_and_cg_breakdown() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, 8, 8).unwrap();
        let mut oracle = GridOracle::full_grid(sim.clone(), Preconditioner::default());
        let clean = compute_with(&netlist, &chip, &model, &objective, &mut oracle).unwrap();

        for guard in [
            ThermalGuard {
                inject_nan: true,
                inject_cg_failure: false,
            },
            ThermalGuard {
                inject_nan: false,
                inject_cg_failure: true,
            },
            ThermalGuard {
                inject_nan: true,
                inject_cg_failure: true,
            },
        ] {
            let mut oracle = GridOracle::full_grid(sim.clone(), Preconditioner::default());
            let (metrics, outcome, _field) =
                compute_with_guarded(&netlist, &chip, &model, &objective, &mut oracle, guard)
                    .unwrap();
            assert!(outcome.degraded(), "{guard:?}");
            assert_eq!(outcome.sanitized > 0, guard.inject_nan);
            assert_eq!(outcome.fallback.is_some(), guard.inject_cg_failure);
            assert!(!outcome.describe().is_empty());
            assert!(
                metrics.avg_temperature.is_finite() && metrics.avg_temperature > 0.0,
                "degraded solve still produces a usable field"
            );
            // The degraded answer is approximate (damped Jacobi stops on
            // an iteration cap; a zeroed deposit removes some power) but
            // must stay the same order of magnitude as the clean solve.
            let rel =
                (metrics.avg_temperature - clean.avg_temperature).abs() / clean.avg_temperature;
            assert!(rel < 0.75, "guard {guard:?} drifted {rel}");
        }
    }

    #[test]
    fn compact_oracle_tracks_full_grid_through_solve_field() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                CellId::new(i),
                (i as f64 / netlist.num_cells() as f64) * chip.width,
                ((i * 7 % 13) as f64 / 13.0) * chip.depth,
                (i % 4) as u16,
            );
        }
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, 8, 8).unwrap();
        let mut full = GridOracle::full_grid(sim.clone(), Preconditioner::default());
        let (mut compact, report) =
            tvp_thermal::CompactModel::fit(&sim, Preconditioner::default()).unwrap();
        assert!(report.max_rel_error <= tvp_thermal::compact_params::CROSS_MODEL_GATE);

        let (ref_field, _) = solve_field(
            &netlist,
            &chip,
            &model,
            &objective,
            &mut full,
            ThermalGuard::default(),
        )
        .unwrap();
        let (field, outcome) = solve_field(
            &netlist,
            &chip,
            &model,
            &objective,
            &mut compact,
            ThermalGuard::default(),
        )
        .unwrap();
        assert!(!outcome.degraded(), "compact tier has nothing to degrade");
        assert_eq!(outcome.iterations(), 0);
        assert_eq!(outcome.preconditioner(), "none");

        let (max_err, avg_err) = cross_model_error(&chip, &objective, &field, &ref_field);
        assert!(avg_err <= max_err);
        let peak = (ref_field.max_temperature() - ref_field.ambient()).max(1e-30);
        assert!(
            max_err / peak < 0.35,
            "compact field drifted {} of peak rise {peak}",
            max_err / peak
        );
        // Self-comparison is exactly zero.
        assert_eq!(
            cross_model_error(&chip, &objective, &ref_field, &ref_field),
            (0.0, 0.0)
        );
    }

    #[test]
    fn concentrating_power_on_top_layer_heats_the_chip() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let temp_with_all_on = |layer: u16| -> f64 {
            let mut placement = Placement::centered(netlist.num_cells(), &chip);
            for i in 0..netlist.num_cells() {
                let (x, y, _) = placement.position(CellId::new(i));
                placement.set(CellId::new(i), x, y, layer);
            }
            let objective = IncrementalObjective::new(&netlist, &model, placement);
            compute(&netlist, &chip, &model, &objective, (8, 8))
                .unwrap()
                .avg_temperature
        };
        let bottom = temp_with_all_on(0);
        let top = temp_with_all_on(3);
        assert!(
            top > bottom,
            "top-layer power ({top}) must run hotter than bottom ({bottom})"
        );
    }
}
