//! A quadratic (force-directed) global placement baseline.
//!
//! The paper's §1 argues that partitioning suits 3D ICs better than the
//! force-directed paradigm, which "relies on an encompassing arrangement
//! of IO pads … to produce a well-spread initial placement". This module
//! implements that baseline so the claim can be measured: classic
//! quadratic placement on the star net model, solved by Gauss–Seidel
//! sweeps, with density-based repulsion supplying the spreading that pads
//! would otherwise provide.
//!
//! The z dimension is solved continuously alongside x/y (vias priced by
//! `α_ILV` through the star weights) and rounded to layers at the end.
//! Output feeds the same coarse/detailed legalization as the recursive
//! bisection flow, so comparisons isolate the global stage.

use crate::objective::ObjectiveModel;
use crate::{Chip, Placement, PlacerConfig};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tvp_netlist::{CellId, Netlist};

/// Tuning knobs of the baseline (fixed, deliberately simple).
const SWEEPS: usize = 60;
/// Spreading force gain relative to the net attraction.
const REPULSION_GAIN: f64 = 0.35;
/// Density mesh resolution for the repulsion field.
const REPULSION_BINS: usize = 16;

/// Runs the force-directed baseline. Returns an unlegalized placement with
/// continuous x/y and rounded layers — the same contract as
/// [`global_place`](super::global_place).
pub fn force_directed_place(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    config: &PlacerConfig,
) -> Placement {
    let n = netlist.num_cells();
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x00F0_DCE5);
    let mut placement = Placement::centered(n, chip);

    // Random initial spread (no pads to anchor the system).
    let movable: Vec<CellId> = netlist
        .iter_cells()
        .filter(|(_, c)| c.is_movable())
        .map(|(id, _)| id)
        .collect();
    let max_layer = (chip.num_layers - 1) as f64;
    let mut z: Vec<f64> = vec![max_layer / 2.0; n];
    for &c in &movable {
        placement.set(
            c,
            rng.random_range(0.0..chip.width),
            rng.random_range(0.0..chip.depth),
            0,
        );
        z[c.index()] = rng.random_range(0.0..=max_layer);
    }

    // Star-model Gauss–Seidel: each sweep moves every cell to the weighted
    // mean of its nets' centroids, plus a repulsion kick away from dense
    // bins. The vertical coordinate uses the same attraction scaled by the
    // via price so hot nets collapse in z first.
    let bin_w = chip.width / REPULSION_BINS as f64;
    let bin_h = chip.depth / REPULSION_BINS as f64;
    for sweep in 0..SWEEPS {
        // Density field for repulsion.
        let mut density = vec![0.0f64; REPULSION_BINS * REPULSION_BINS];
        for &c in &movable {
            let (x, y, _) = placement.position(c);
            let i = ((x / bin_w) as usize).min(REPULSION_BINS - 1);
            let j = ((y / bin_h) as usize).min(REPULSION_BINS - 1);
            density[j * REPULSION_BINS + i] += netlist.cell(c).area();
        }
        let mean_density: f64 = density.iter().sum::<f64>() / density.len() as f64;

        // Cooling: attraction dominates early, repulsion late.
        let repulsion = REPULSION_GAIN * (sweep as f64 + 1.0) / SWEEPS as f64;

        for &c in &movable {
            let (cx, cy, _) = placement.position(c);
            let mut wx = 0.0;
            let mut wy = 0.0;
            let mut wz = 0.0;
            let mut weight_sum = 0.0;
            for e in netlist.cell_nets(c) {
                let pins = netlist.net_pins(e);
                if pins.len() < 2 {
                    continue;
                }
                // Star weight 1/(deg−1) keeps large nets from dominating.
                let w = netlist.net(e).weight() / (pins.len() - 1) as f64;
                let mut ox = 0.0;
                let mut oy = 0.0;
                let mut oz = 0.0;
                let mut others = 0.0;
                for &p in pins {
                    let other = netlist.pin(p).cell();
                    if other == c {
                        continue;
                    }
                    let (x, y, _) = placement.position(other);
                    ox += x;
                    oy += y;
                    oz += z[other.index()];
                    others += 1.0;
                }
                if others > 0.0 {
                    wx += w * ox / others;
                    wy += w * oy / others;
                    wz += w * oz / others;
                    weight_sum += w;
                }
            }
            if weight_sum == 0.0 {
                continue;
            }
            let mut nx = wx / weight_sum;
            let mut ny = wy / weight_sum;
            let nz = wz / weight_sum;

            // Repulsion: push away from the local density gradient.
            let i = ((cx / bin_w) as usize).min(REPULSION_BINS - 1);
            let j = ((cy / bin_h) as usize).min(REPULSION_BINS - 1);
            let d_here = density[j * REPULSION_BINS + i];
            if d_here > mean_density {
                let grad = |di: isize, dj: isize| -> f64 {
                    let ii = (i as isize + di).clamp(0, REPULSION_BINS as isize - 1) as usize;
                    let jj = (j as isize + dj).clamp(0, REPULSION_BINS as isize - 1) as usize;
                    density[jj * REPULSION_BINS + ii]
                };
                let gx = grad(1, 0) - grad(-1, 0);
                let gy = grad(0, 1) - grad(0, -1);
                let strength = repulsion * (d_here / mean_density - 1.0).min(4.0);
                nx -= gx.signum() * strength * bin_w;
                ny -= gy.signum() * strength * bin_h;
            }

            let (nx, ny) = chip.clamp(nx, ny);
            placement.set(c, nx, ny, 0);
            z[c.index()] = nz.clamp(0.0, max_layer);
        }
        let _ = model; // the baseline prices vias only via rounding below
    }

    // Round the continuous layer coordinate; ties broken toward the sink.
    for &c in &movable {
        let (x, y, _) = placement.position(c);
        placement.set(c, x, y, z[c.index()].round() as u16);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::coarse_legalize;
    use crate::detail::{check_legal, detail_legalize};
    use crate::global::global_place;
    use crate::objective::IncrementalObjective;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn full_flow_wl(
        netlist: &Netlist,
        chip: &Chip,
        model: &ObjectiveModel,
        config: &PlacerConfig,
        force_directed: bool,
    ) -> f64 {
        let placement = if force_directed {
            force_directed_place(netlist, chip, model, config)
        } else {
            global_place(netlist, chip, model, config)
        };
        let mut objective = IncrementalObjective::new(netlist, model, placement);
        coarse_legalize(&mut objective, netlist, chip, config);
        detail_legalize(&mut objective, netlist, chip, config.detail_row_window);
        assert_eq!(check_legal(netlist, chip, objective.placement()), None);
        objective.total_wirelength()
    }

    #[test]
    fn baseline_produces_a_legalizable_spread() {
        let netlist = generate(&SynthConfig::named("fd", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = force_directed_place(&netlist, &chip, &model, &config);
        assert!(placement.find_out_of_bounds(&chip).is_none());
        // Spread: the placement must not be a single pile.
        let mean_x: f64 = (0..300).map(|i| placement.x(CellId::new(i))).sum::<f64>() / 300.0;
        let var: f64 = (0..300)
            .map(|i| (placement.x(CellId::new(i)) - mean_x).powi(2))
            .sum::<f64>()
            / 300.0;
        assert!(
            var.sqrt() > chip.width / 20.0,
            "std {:.3e} vs chip width {:.3e}",
            var.sqrt(),
            chip.width
        );
    }

    #[test]
    fn partitioning_beats_the_baseline_without_pads() {
        // The paper's §1 claim: with no IO pads, the force-directed
        // paradigm struggles and min-cut partitioning wins on wirelength.
        // The claim is statistical, so it is measured in aggregate over
        // sixteen instances (a single instance is a near coin flip at
        // one partitioning start, and 4- and 8-instance aggregates both
        // flipped on past digest transitions), with the multi-start
        // bisection the parallel engine makes cheap.
        let mut partition_total = 0.0;
        let mut force_total = 0.0;
        for seed in 0..16u64 {
            let netlist =
                generate(&SynthConfig::named("fd2", 400, 2.0e-9).with_seed(0xDAC_2007 + seed))
                    .unwrap();
            let config = PlacerConfig::new(2).with_partition_starts(4);
            let chip = Chip::from_netlist(&netlist, &config).unwrap();
            let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
            partition_total += full_flow_wl(&netlist, &chip, &model, &config, false);
            force_total += full_flow_wl(&netlist, &chip, &model, &config, true);
        }
        assert!(
            partition_total < force_total,
            "partitioning ({partition_total:.3e}) should beat force-directed \
             ({force_total:.3e}) in aggregate"
        );
    }

    #[test]
    fn baseline_is_deterministic() {
        let netlist = generate(&SynthConfig::named("fd3", 100, 5.0e-10)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let a = force_directed_place(&netlist, &chip, &model, &config);
        let b = force_directed_place(&netlist, &chip, &model, &config);
        assert_eq!(a, b);
    }
}
