//! Placement regions: a cell subset plus a box of placement volume.

use super::CutDirection;
use tvp_netlist::CellId;

/// A region of the recursive bisection: the cells assigned to it and the
/// physical volume they will eventually occupy. Layer bounds are
/// inclusive.
#[derive(Clone, PartialEq, Debug)]
pub struct Region {
    /// Cells assigned to this region.
    pub cells: Vec<CellId>,
    /// Left edge, meters.
    pub x0: f64,
    /// Right edge, meters.
    pub x1: f64,
    /// Bottom edge, meters.
    pub y0: f64,
    /// Top edge, meters.
    pub y1: f64,
    /// Lowest device layer (inclusive).
    pub l0: u16,
    /// Highest device layer (inclusive).
    pub l1: u16,
}

impl Region {
    /// Number of device layers spanned.
    pub fn num_layers(&self) -> usize {
        (self.l1 - self.l0) as usize + 1
    }

    /// Footprint area, square meters.
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Center of the region: `(x, y, layer)` with the layer rounded to the
    /// middle of the range.
    pub fn center(&self) -> (f64, f64, u16) {
        (
            (self.x0 + self.x1) / 2.0,
            (self.y0 + self.y1) / 2.0,
            self.l0 + (self.l1 - self.l0) / 2,
        )
    }

    /// Midpoint along a cut axis, used for terminal propagation. For z
    /// cuts this is the fractional boundary between the two layer halves.
    pub fn mid(&self, direction: CutDirection) -> f64 {
        match direction {
            CutDirection::X => (self.x0 + self.x1) / 2.0,
            CutDirection::Y => (self.y0 + self.y1) / 2.0,
            CutDirection::Z => (self.l0 as f64 + self.l1 as f64) / 2.0,
        }
    }

    /// Splits the region along `direction` into the given cell sides,
    /// positioning the cut so capacity tracks the sides' cell areas
    /// (paper §3: "the cut line is positioned to ensure an even
    /// distribution of cell area").
    ///
    /// # Panics
    ///
    /// Panics on a z split of a single-layer region.
    pub fn split(
        &self,
        direction: CutDirection,
        side0: Vec<CellId>,
        side1: Vec<CellId>,
        area0: f64,
        area1: f64,
    ) -> (Region, Region) {
        let total = (area0 + area1).max(f64::MIN_POSITIVE);
        // Clamp so no child collapses to zero volume.
        let fraction = (area0 / total).clamp(0.1, 0.9);
        match direction {
            CutDirection::X => {
                let xc = self.x0 + (self.x1 - self.x0) * fraction;
                (
                    Region {
                        cells: side0,
                        x1: xc,
                        ..self.clone_bounds()
                    },
                    Region {
                        cells: side1,
                        x0: xc,
                        ..self.clone_bounds()
                    },
                )
            }
            CutDirection::Y => {
                let yc = self.y0 + (self.y1 - self.y0) * fraction;
                (
                    Region {
                        cells: side0,
                        y1: yc,
                        ..self.clone_bounds()
                    },
                    Region {
                        cells: side1,
                        y0: yc,
                        ..self.clone_bounds()
                    },
                )
            }
            CutDirection::Z => {
                let layers = self.num_layers();
                assert!(layers >= 2, "cannot z-split a single layer");
                let k0 = ((layers as f64 * area0 / total).round() as usize).clamp(1, layers - 1);
                (
                    Region {
                        cells: side0,
                        l1: self.l0 + (k0 - 1) as u16,
                        ..self.clone_bounds()
                    },
                    Region {
                        cells: side1,
                        l0: self.l0 + k0 as u16,
                        ..self.clone_bounds()
                    },
                )
            }
        }
    }

    fn clone_bounds(&self) -> Region {
        Region {
            cells: Vec::new(),
            x0: self.x0,
            x1: self.x1,
            y0: self.y0,
            y1: self.y1,
            l0: self.l0,
            l1: self.l1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region {
            cells: (0..8).map(CellId::new).collect(),
            x0: 0.0,
            x1: 8.0,
            y0: 0.0,
            y1: 4.0,
            l0: 0,
            l1: 3,
        }
    }

    #[test]
    fn geometry_queries() {
        let r = region();
        assert_eq!(r.num_layers(), 4);
        assert_eq!(r.area(), 32.0);
        assert_eq!(r.center(), (4.0, 2.0, 1));
        assert_eq!(r.mid(CutDirection::X), 4.0);
        assert_eq!(r.mid(CutDirection::Z), 1.5);
    }

    #[test]
    fn x_split_positions_cut_by_area() {
        let r = region();
        let s0: Vec<CellId> = (0..6).map(CellId::new).collect();
        let s1: Vec<CellId> = (6..8).map(CellId::new).collect();
        let (a, b) = r.split(CutDirection::X, s0, s1, 3.0, 1.0);
        assert_eq!(a.x1, 6.0); // 75% of the span
        assert_eq!(b.x0, 6.0);
        assert_eq!(a.cells.len(), 6);
        assert_eq!(b.cells.len(), 2);
        assert_eq!(a.l0, 0);
        assert_eq!(a.l1, 3);
    }

    #[test]
    fn split_fraction_is_clamped() {
        let r = region();
        let (a, _) = r.split(CutDirection::X, vec![], vec![], 100.0, 0.0);
        assert!(
            a.x1 < r.x1,
            "even a lopsided split leaves both sides volume"
        );
        assert!((a.x1 - 0.9 * 8.0).abs() < 1e-12);
    }

    #[test]
    fn z_split_divides_layers() {
        let r = region();
        let (a, b) = r.split(CutDirection::Z, vec![], vec![], 1.0, 1.0);
        assert_eq!(a.l0, 0);
        assert_eq!(a.l1, 1);
        assert_eq!(b.l0, 2);
        assert_eq!(b.l1, 3);
        assert_eq!(a.num_layers() + b.num_layers(), 4);
    }

    #[test]
    fn z_split_respects_area_imbalance() {
        let r = region();
        let (a, b) = r.split(CutDirection::Z, vec![], vec![], 3.0, 1.0);
        assert_eq!(a.num_layers(), 3);
        assert_eq!(b.num_layers(), 1);
    }

    #[test]
    fn z_split_never_empties_a_side() {
        let mut r = region();
        r.l1 = 1; // two layers
        let (a, b) = r.split(CutDirection::Z, vec![], vec![], 1000.0, 1.0);
        assert_eq!(a.num_layers(), 1);
        assert_eq!(b.num_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "single layer")]
    fn z_split_of_single_layer_panics() {
        let mut r = region();
        r.l1 = 0;
        let _ = r.split(CutDirection::Z, vec![], vec![], 1.0, 1.0);
    }
}
