//! Global placement by 3D recursive bisection (paper §3).
//!
//! Regions — a set of cells plus a box of placement volume — are bisected
//! breadth-first. At every bisection:
//!
//! * the **cut direction** is chosen orthogonal to the largest of the
//!   region's width, height, or *weighted depth* (the layer count times
//!   `α_ILV`), so the min-cut objective spends its cut-avoidance where the
//!   objective says connectivity is most expensive;
//! * **terminal propagation** pins nets with pins outside the region to
//!   the side nearest those external pins;
//! * **thermal net weights** (§3.1) scale each net's cut cost, with the
//!   vertical weight used for z cuts and the lateral weight otherwise;
//! * **thermal resistance reduction nets** (§3.2) pull powered cells
//!   toward the heat sink during z cuts;
//! * the **partition tolerance** follows the whitespace available in the
//!   region, and the **cut line** is positioned to split the region's
//!   capacity in proportion to the two sides' cell areas.

mod force;
mod region;

pub use force::force_directed_place;
pub use region::Region;

use crate::netweight::NetWeights;
use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::trr::TrrNets;
use crate::{Chip, Placement, PlacerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use tvp_netlist::{CellId, NetId, Netlist};
use tvp_parallel as parallel;
use tvp_partition::{bisect_fixed_checked_with_stop, BisectConfig, FixedSide, Hypergraph, StopFn};

/// How often a bisection may be retried with a relaxed tolerance before
/// its best-effort (out-of-tolerance) assignment is accepted.
const MAX_PARTITION_RETRIES: usize = 3;

/// Robustness record of one global placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GlobalStats {
    /// Relaxed-tolerance bisection retries across all regions (0 for a
    /// clean run).
    pub partition_retries: usize,
}

/// Axis a region is cut along.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CutDirection {
    /// Vertical cut line: splits the x extent.
    X,
    /// Horizontal cut line: splits the y extent.
    Y,
    /// Layer cut: splits the device-layer range.
    Z,
}

/// Chooses the cut direction for a region (paper §3): orthogonal to the
/// largest of width, height, and weighted depth `layers · α_ILV`.
///
/// With `weighted = false` (ablation) the raw physical depth
/// `layers · layer_pitch` is compared instead.
pub fn choose_cut_direction(
    region: &Region,
    alpha_ilv: f64,
    weighted: bool,
    layer_pitch: f64,
) -> CutDirection {
    let wx = region.x1 - region.x0;
    let wy = region.y1 - region.y0;
    let layers = region.num_layers();
    let wz = if layers > 1 {
        layers as f64 * if weighted { alpha_ilv } else { layer_pitch }
    } else {
        f64::NEG_INFINITY
    };
    if wz >= wx && wz >= wy {
        CutDirection::Z
    } else if wx >= wy {
        CutDirection::X
    } else {
        CutDirection::Y
    }
}

/// Runs global placement. Returns the placement with every movable cell at
/// the center of its final leaf region.
pub fn global_place(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    config: &PlacerConfig,
) -> Placement {
    global_place_with_fixed(netlist, chip, model, config, &[])
}

/// [`global_place`] with pre-seeded positions for fixed cells (pads,
/// macros). Fixed cells keep these positions; terminal propagation and the
/// thermal state see them from the first bisection level.
pub fn global_place_with_fixed(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    config: &PlacerConfig,
    fixed_positions: &[(CellId, f64, f64, u16)],
) -> Placement {
    global_place_with_fixed_stats(netlist, chip, model, config, fixed_positions, false).0
}

/// [`global_place_with_fixed`] that also reports robustness statistics.
/// When `inject_imbalance` is set, the first (root) bisection is treated
/// as having violated its balance tolerance, exercising the relaxed-retry
/// path deterministically.
pub fn global_place_with_fixed_stats(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    config: &PlacerConfig,
    fixed_positions: &[(CellId, f64, f64, u16)],
    inject_imbalance: bool,
) -> (Placement, GlobalStats) {
    global_place_with_fixed_stats_stop(
        netlist,
        chip,
        model,
        config,
        fixed_positions,
        inject_imbalance,
        None,
    )
}

/// [`global_place_with_fixed_stats`] with a cooperative stop signal.
///
/// `stop` is handed down into every region bisection, where the FM
/// kernels poll it between coarsening levels and every ~1k heap pops
/// *inside* a refinement pass (with best-prefix rollback, so a
/// cancelled pass still yields its best legal assignment). It is also
/// polled between bisection levels here: once it fires, all remaining
/// regions are finalized as leaves at their current extents, so the
/// caller always gets a full (if coarse) placement to legalize —
/// best-so-far, never a partial write. Pass `None` when no stop
/// condition is armed: the hot loops then skip the poll entirely and
/// the result is bitwise identical to the historical entry points.
#[allow(clippy::too_many_arguments)]
pub fn global_place_with_fixed_stats_stop(
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    config: &PlacerConfig,
    fixed_positions: &[(CellId, f64, f64, u16)],
    inject_imbalance: bool,
    stop: Option<&StopFn>,
) -> (Placement, GlobalStats) {
    let mut placement = Placement::centered(netlist.num_cells(), chip);
    for &(cell, x, y, layer) in fixed_positions {
        let (x, y) = chip.clamp(x, y);
        placement.set(cell, x, y, layer.min((chip.num_layers - 1) as u16));
    }
    // Seed the layer at the middle of the stack so z terminal propagation
    // starts unbiased.
    let mid_layer = (chip.num_layers / 2) as u16;
    let movable: Vec<CellId> = netlist
        .iter_cells()
        .filter(|(_, c)| c.is_movable())
        .map(|(id, _)| id)
        .collect();
    for &c in &movable {
        placement.set(c, chip.width / 2.0, chip.depth / 2.0, mid_layer);
    }

    let root = Region {
        cells: movable,
        x0: 0.0,
        x1: chip.width,
        y0: 0.0,
        y1: chip.depth,
        l0: 0,
        l1: (chip.num_layers - 1) as u16,
    };

    let mut splitter = Splitter {
        netlist,
        chip,
        model,
        config,
        net_weights: NetWeights::unit(netlist.num_nets()),
        trr: TrrNets::none(),
        trr_weight_of: vec![0.0; netlist.num_cells()],
        level_seed: config.seed,
        inject_imbalance: AtomicBool::new(inject_imbalance),
        partition_retries: AtomicUsize::new(0),
        stop,
    };
    let mut scratch = SplitScratch::new(netlist.num_cells(), netlist.num_nets());

    let mut active = vec![root];
    let mut level = 0usize;
    const MAX_LEVELS: usize = 64;
    while !active.is_empty() && level < MAX_LEVELS {
        // Cancelled: stop recursing and let the safety net below place
        // every remaining region's cells at its current extents — a
        // complete best-so-far placement, never a partial write.
        if stop.is_some_and(|s| s()) {
            break;
        }
        splitter.refresh_thermal_state(&placement);
        splitter.level_seed = config
            .seed
            .wrapping_add(level as u64)
            .wrapping_mul(0x9E37_79B9);
        // Every bisection at this level reads cell positions as of the
        // level start (a Jacobi-style sweep): terminal propagation sees
        // the same world no matter which order — or on which thread —
        // the regions are processed, and each region's bisection seed
        // depends only on the level and the region's cells. The region
        // outcomes are therefore order-independent, and the placement
        // writes below touch disjoint cells (regions partition the
        // movable cells), so parallel execution is bitwise identical to
        // serial.
        let snapshot = placement.clone();
        let outcomes = splitter.process_level(&active, &snapshot, &mut scratch);
        let mut next = Vec::with_capacity(active.len() * 2);
        for outcome in outcomes {
            match outcome {
                RegionOutcome::Leaf(writes) => {
                    for (c, x, y, l) in writes {
                        placement.set(c, x, y, l);
                    }
                }
                RegionOutcome::Split(a, b) => {
                    // Move cells to their new region centers for the next
                    // level's terminal propagation.
                    let (ax, ay, al) = a.center();
                    for &c in &a.cells {
                        placement.set(c, ax, ay, al);
                    }
                    let (bx, by, bl) = b.center();
                    for &c in &b.cells {
                        placement.set(c, bx, by, bl);
                    }
                    next.push(a);
                    next.push(b);
                }
            }
        }
        active = next;
        level += 1;
    }
    // Safety net: finalize anything left if MAX_LEVELS was hit.
    for region in active {
        for (c, x, y, l) in splitter.finalize_leaf(&region) {
            placement.set(c, x, y, l);
        }
    }
    let stats = GlobalStats {
        partition_retries: splitter.partition_retries.load(Ordering::Relaxed),
    };
    (placement, stats)
}

/// Scratch buffers for building one region's hypergraph. Stamps avoid an
/// O(cells + nets) clear between regions. Each worker chunk owns one
/// scratch, so regions never contend on these.
struct SplitScratch {
    /// Cell → vertex index in the current region hypergraph.
    vertex_of: Vec<u32>,
    vertex_stamp: Vec<u32>,
    net_stamp: Vec<u32>,
    stamp: u32,
}

impl SplitScratch {
    fn new(num_cells: usize, num_nets: usize) -> Self {
        Self {
            vertex_of: vec![u32::MAX; num_cells],
            vertex_stamp: vec![0u32; num_cells],
            net_stamp: vec![0u32; num_nets],
            stamp: 0,
        }
    }
}

/// Result of processing one region at a level.
enum RegionOutcome {
    /// Final positions for a leaf region's cells.
    Leaf(Vec<(CellId, f64, f64, u16)>),
    /// The two children of a bisected region.
    Split(Region, Region),
}

struct Splitter<'a> {
    netlist: &'a Netlist,
    chip: &'a Chip,
    model: &'a ObjectiveModel,
    config: &'a PlacerConfig,
    net_weights: NetWeights,
    trr: TrrNets,
    trr_weight_of: Vec<f64>,
    level_seed: u64,
    /// One-shot fault switch: the next bisection to consume it behaves as
    /// if its first attempt violated the balance tolerance. Only armed at
    /// the root level (a single region, processed serially), so injection
    /// never perturbs thread-count determinism.
    inject_imbalance: AtomicBool,
    /// Total relaxed-tolerance retries across all regions. Atomics because
    /// `process_level` shares `&self` across the worker pool; the sum is
    /// order-independent, so the count stays deterministic.
    partition_retries: AtomicUsize,
    /// Cooperative stop signal, polled inside every region's FM kernels
    /// (between passes and every ~1k heap pops). `None` for unarmed runs.
    stop: Option<&'a StopFn>,
}

impl<'a> Splitter<'a> {
    /// Re-derives the thermal net weights and TRR nets at the current
    /// positions (§6: updated as the placement is recursively partitioned).
    fn refresh_thermal_state(&mut self, placement: &Placement) {
        if self.model.alpha_temp == 0.0 {
            return;
        }
        if self.config.thermal_net_weights {
            self.net_weights = NetWeights::thermal(self.netlist, self.model, placement);
        }
        if !self.config.trr_nets {
            return;
        }
        let objective = IncrementalObjective::new(self.netlist, self.model, placement.clone());
        let profile = self
            .model
            .resistance()
            .vertical_profile(self.chip.avg_cell_area);
        self.trr = TrrNets::build(
            self.netlist,
            self.model,
            &objective,
            &profile,
            self.config.peko_floors,
        );
        self.trr_weight_of.fill(0.0);
        for t in self.trr.nets() {
            self.trr_weight_of[t.cell.index()] = t.weight;
        }
    }

    /// Processes every region of one level against the level-start
    /// `snapshot`. Regions are independent given the snapshot, so they
    /// are chunked across the worker pool; outcomes come back in region
    /// order and each worker chunk allocates its own scratch.
    fn process_level(
        &self,
        regions: &[Region],
        snapshot: &Placement,
        scratch: &mut SplitScratch,
    ) -> Vec<RegionOutcome> {
        let workers = parallel::threads().min(regions.len());
        if workers <= 1 {
            return regions
                .iter()
                .map(|r| self.process_region(r, snapshot, scratch))
                .collect();
        }
        let per_chunk = regions.len().div_ceil(workers);
        let nested = parallel::map_chunks(regions.len(), per_chunk, |range| {
            let mut scratch = SplitScratch::new(self.netlist.num_cells(), self.netlist.num_nets());
            regions[range]
                .iter()
                .map(|r| self.process_region(r, snapshot, &mut scratch))
                .collect::<Vec<_>>()
        });
        nested.into_iter().flatten().collect()
    }

    fn process_region(
        &self,
        region: &Region,
        snapshot: &Placement,
        scratch: &mut SplitScratch,
    ) -> RegionOutcome {
        if self.is_leaf(region) {
            RegionOutcome::Leaf(self.finalize_leaf(region))
        } else {
            let (a, b) = self.split(region, snapshot, scratch);
            RegionOutcome::Split(a, b)
        }
    }

    fn is_leaf(&self, region: &Region) -> bool {
        region.cells.len() <= 1
            || region.cells.len() <= self.config.leaf_cells.max(region.num_layers())
    }

    /// Places the leaf's cells at its center. A leaf that still spans
    /// several layers means the objective never made a z cut worthwhile
    /// (α_ILV is small relative to lateral extents); its cells are
    /// area-balanced across the layers, which is where the high via counts
    /// at low α_ILV come from.
    fn finalize_leaf(&self, region: &Region) -> Vec<(CellId, f64, f64, u16)> {
        let (cx, cy, _) = region.center();
        if region.num_layers() == 1 {
            return region
                .cells
                .iter()
                .map(|&c| (c, cx, cy, region.l0))
                .collect();
        }
        let mut fill = vec![0.0f64; region.num_layers()];
        let mut cells: Vec<CellId> = region.cells.clone();
        cells.sort_by(|&a, &b| {
            self.netlist
                .cell(b)
                .area()
                .partial_cmp(&self.netlist.cell(a).area())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut writes = Vec::with_capacity(cells.len());
        for c in cells {
            let best = fill
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map_or(0, |(i, _)| i);
            fill[best] += self.netlist.cell(c).area();
            writes.push((c, cx, cy, region.l0 + best as u16));
        }
        writes
    }

    /// Whitespace-derived partition tolerance for a region.
    fn tolerance(&self, region: &Region) -> f64 {
        let usable =
            region.area() * region.num_layers() as f64 * self.chip.row_height / self.chip.row_pitch;
        let cell_area: f64 = region
            .cells
            .iter()
            .map(|&c| self.netlist.cell(c).area())
            .sum();
        let whitespace = if usable > 0.0 {
            1.0 - cell_area / usable
        } else {
            self.config.whitespace
        };
        whitespace.clamp(0.02, 0.45) / 2.0
    }

    fn split(
        &self,
        region: &Region,
        snapshot: &Placement,
        scratch: &mut SplitScratch,
    ) -> (Region, Region) {
        let direction = choose_cut_direction(
            region,
            self.model.alpha_ilv,
            self.config.weighted_depth_cut,
            self.chip.stack.layer_pitch(),
        );
        let n = region.cells.len();

        // Build the region hypergraph: vertices = region cells (+ two
        // zero-weight terminals on demand).
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        let mut weights: Vec<f64> = Vec::with_capacity(n + 2);
        for (v, &c) in region.cells.iter().enumerate() {
            scratch.vertex_of[c.index()] = v as u32;
            scratch.vertex_stamp[c.index()] = stamp;
            weights.push(self.netlist.cell(c).area());
        }
        // Terminal vertices for propagated connectivity.
        let t0 = n as u32;
        let t1 = n as u32 + 1;
        weights.push(0.0);
        weights.push(0.0);
        let mut hg = Hypergraph::with_vertex_weights(weights);
        let mut fixed = vec![FixedSide::Free; n + 2];
        fixed[t0 as usize] = FixedSide::Side0;
        fixed[t1 as usize] = FixedSide::Side1;

        let mid = region.mid(direction);
        let mut pins: Vec<u32> = Vec::new();
        for &c in &region.cells {
            for &p in self.netlist.cell_pins(c) {
                let e = self.netlist.pin(p).net();
                if scratch.net_stamp[e.index()] == stamp {
                    continue; // net already processed this region
                }
                scratch.net_stamp[e.index()] = stamp;
                self.add_net_to_hypergraph(
                    e, snapshot, scratch, direction, mid, t0, t1, stamp, &mut hg, &mut pins,
                );
            }
        }
        // TRR nets pull toward the heat sink: only meaningful for z cuts,
        // where side 0 is the lower layer range.
        if direction == CutDirection::Z && self.config.trr_nets && !self.trr.is_empty() {
            for (v, &c) in region.cells.iter().enumerate() {
                let w = self.trr_weight_of[c.index()];
                if w > 0.0 {
                    hg.add_net(&[v as u32, t0], w);
                }
            }
        }
        hg.finalize();

        let layers = region.num_layers();
        let target_fraction = if direction == CutDirection::Z {
            // Side 0 (lower layers) gets the ceiling half of the layers.
            layers.div_ceil(2) as f64 / layers as f64
        } else {
            0.5
        };
        let bisect_config = BisectConfig {
            target_fraction,
            tolerance: self.tolerance(region),
            num_starts: self.config.partition_starts,
            seed: self.level_seed.wrapping_add(region.cells[0].index() as u64),
            ..BisectConfig::default()
        };
        // Balance-checked bisection with graceful degradation: a cut
        // that misses the tolerance by more than one-cell granularity
        // (moving any single cell cannot fix it) is retried with a
        // doubled tolerance, and after `MAX_PARTITION_RETRIES` the
        // best-effort assignment is accepted rather than failing the run.
        let total_weight = hg.total_vertex_weight();
        let granularity = if total_weight > 0.0 {
            (0..hg.num_vertices())
                .map(|v| hg.vertex_weight(v as u32))
                .fold(0.0f64, f64::max)
                / total_weight
        } else {
            0.0
        };
        let injected = self.inject_imbalance.swap(false, Ordering::Relaxed);
        let mut attempt_config = bisect_config;
        let mut retries = 0usize;
        let result = loop {
            if injected && retries == 0 {
                retries += 1;
                attempt_config = attempt_config.relaxed();
                continue;
            }
            match bisect_fixed_checked_with_stop(&hg, &fixed, &attempt_config, self.stop) {
                Ok(bisection) => break bisection,
                Err(err) => {
                    let miss = (err.fraction - err.target_fraction).abs();
                    if miss <= err.tolerance + granularity || retries >= MAX_PARTITION_RETRIES {
                        // Within discrete-area granularity (or out of
                        // retries): accept the best-effort cut.
                        break err.bisection;
                    }
                    retries += 1;
                    attempt_config = attempt_config.relaxed();
                }
            }
        };
        if retries > 0 {
            self.partition_retries.fetch_add(retries, Ordering::Relaxed);
        }

        let mut side0: Vec<CellId> = Vec::new();
        let mut side1: Vec<CellId> = Vec::new();
        for (v, &c) in region.cells.iter().enumerate() {
            if result.side(v as u32) == 0 {
                side0.push(c);
            } else {
                side1.push(c);
            }
        }
        // Degenerate partitions (possible on pathological graphs): fall
        // back to an even index split so recursion always terminates.
        if side0.is_empty() || side1.is_empty() {
            let mut all = std::mem::take(&mut side0);
            all.append(&mut side1);
            let half = all.len() / 2;
            side1 = all.split_off(half);
            side0 = all;
        }

        let area0: f64 = side0.iter().map(|&c| self.netlist.cell(c).area()).sum();
        let area1: f64 = side1.iter().map(|&c| self.netlist.cell(c).area()).sum();
        region.split(direction, side0, side1, area0, area1)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_net_to_hypergraph(
        &self,
        e: NetId,
        snapshot: &Placement,
        scratch: &SplitScratch,
        direction: CutDirection,
        mid: f64,
        t0: u32,
        t1: u32,
        stamp: u32,
        hg: &mut Hypergraph,
        pins: &mut Vec<u32>,
    ) {
        pins.clear();
        let mut ext0 = false;
        let mut ext1 = false;
        for &p in self.netlist.net_pins(e) {
            let c = self.netlist.pin(p).cell();
            if scratch.vertex_stamp[c.index()] == stamp {
                // A cell's stamp matches iff it belongs to this region,
                // because regions partition the cells at every level.
                pins.push(scratch.vertex_of[c.index()]);
            } else {
                if !self.config.terminal_propagation {
                    continue;
                }
                // External pin: propagate to the nearer side (Dunlop–
                // Kernighan terminal propagation) using its level-start
                // position along the cut axis.
                let coord = match direction {
                    CutDirection::X => snapshot.x(c),
                    CutDirection::Y => snapshot.y(c),
                    CutDirection::Z => snapshot.layer(c) as f64,
                };
                if coord < mid {
                    ext0 = true;
                } else {
                    ext1 = true;
                }
            }
        }
        if pins.is_empty() {
            return;
        }
        if ext0 {
            pins.push(t0);
        }
        if ext1 {
            pins.push(t1);
        }
        if pins.len() < 2 {
            return;
        }
        let weight = match direction {
            CutDirection::Z => self.net_weights.vertical(e),
            _ => self.net_weights.lateral(e),
        };
        hg.add_net(pins, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn run(alpha_ilv: f64, alpha_temp: f64, layers: usize) -> (Netlist, Chip, Placement, f64, f64) {
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(layers)
            .with_alpha_ilv(alpha_ilv)
            .with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = global_place(&netlist, &chip, &model, &config);
        let obj = IncrementalObjective::new(&netlist, &model, placement.clone());
        let (wl, ilv) = (obj.total_wirelength(), obj.total_ilv());
        (netlist, chip, placement, wl, ilv)
    }

    #[test]
    fn cut_direction_follows_weighted_depth() {
        let region = Region {
            cells: vec![],
            x0: 0.0,
            x1: 1.0e-4,
            y0: 0.0,
            y1: 0.5e-4,
            l0: 0,
            l1: 3,
        };
        const PITCH: f64 = 6.4e-6;
        // 4 layers × 1e-5 = 4e-5 < width 1e-4 → lateral X cut.
        assert_eq!(
            choose_cut_direction(&region, 1.0e-5, true, PITCH),
            CutDirection::X
        );
        // Expensive vias: 4 × 1e-3 dominates → Z cut.
        assert_eq!(
            choose_cut_direction(&region, 1.0e-3, true, PITCH),
            CutDirection::Z
        );
        // Ablation: unweighted depth compares the physical extent
        // (4 × 6.4 µm = 2.56e-5 < width), so the same region cuts in X no
        // matter how expensive vias are.
        assert_eq!(
            choose_cut_direction(&region, 1.0e-3, false, PITCH),
            CutDirection::X
        );
        // Single-layer regions never z-cut.
        let flat = Region { l1: 0, ..region };
        assert_eq!(
            choose_cut_direction(&flat, 1.0, true, PITCH),
            CutDirection::X
        );
        // Taller than wide → Y cut.
        let tall = Region {
            x1: 0.5e-4,
            y1: 1.0e-4,
            ..flat
        };
        assert_eq!(
            choose_cut_direction(&tall, 1.0e-9, true, PITCH),
            CutDirection::Y
        );
    }

    #[test]
    fn places_all_cells_in_bounds() {
        let (netlist, chip, placement, wl, _) = run(1.0e-5, 0.0, 4);
        assert!(placement.find_out_of_bounds(&chip).is_none());
        assert!(wl > 0.0, "cells must have spread out");
        // Every layer should be populated for a 4-layer run.
        let mut per_layer = [0usize; 4];
        for (_, _, _, l) in placement.iter() {
            per_layer[l as usize] += 1;
        }
        for (l, &count) in per_layer.iter().enumerate() {
            assert!(
                count > netlist.num_cells() / 20,
                "layer {l} has only {count} cells"
            );
        }
    }

    #[test]
    fn higher_alpha_ilv_trades_vias_for_wirelength() {
        let (_, _, _, wl_cheap, ilv_cheap) = run(5.0e-8, 0.0, 4);
        let (_, _, _, wl_dear, ilv_dear) = run(2.0e-4, 0.0, 4);
        assert!(
            ilv_dear < ilv_cheap,
            "expensive vias must reduce ILV count: {ilv_dear} vs {ilv_cheap}"
        );
        assert!(
            wl_dear > wl_cheap * 0.9,
            "via avoidance should not shorten wirelength: {wl_dear} vs {wl_cheap}"
        );
    }

    #[test]
    fn single_layer_placement_has_no_vias() {
        let (_, _, placement, _, ilv) = run(1.0e-5, 0.0, 1);
        assert_eq!(ilv, 0.0);
        assert!(placement.iter().all(|(_, _, _, l)| l == 0));
    }

    #[test]
    fn thermal_placement_moves_power_down() {
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let layers = 4;
        let base_config = PlacerConfig::new(layers).with_alpha_ilv(1.0e-5);
        let chip = Chip::from_netlist(&netlist, &base_config).unwrap();

        let power_depth = |alpha_temp: f64| -> f64 {
            let config = base_config.clone().with_alpha_temp(alpha_temp);
            let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
            let placement = global_place(&netlist, &chip, &model, &config);
            let obj = IncrementalObjective::new(&netlist, &model, placement);
            // Power-weighted mean layer: lower is better for heat.
            let mut num = 0.0;
            let mut den = 0.0;
            for (c, _) in netlist.iter_cells() {
                let p = model.power().cell_power(&netlist, c, |e| {
                    let g = obj.net_geometry(e);
                    (g.wirelength(), g.ilv)
                });
                num += p * obj.placement().layer(c) as f64;
                den += p;
            }
            num / den
        };

        let without = power_depth(0.0);
        let with = power_depth(2.0e-4);
        assert!(
            with < without - 0.05,
            "thermal placement must lower the power centroid: {with} vs {without}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (_, _, a, _, _) = run(1.0e-5, 0.0, 2);
        let (_, _, b, _, _) = run(1.0e-5, 0.0, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_levels_match_serial_bitwise() {
        // Thermal weighting on, so the snapshot path is exercised with
        // net weights and TRR state in play.
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let serial =
            tvp_parallel::with_threads(1, || global_place(&netlist, &chip, &model, &config));
        for threads in [2, 4] {
            let par = tvp_parallel::with_threads(threads, || {
                global_place(&netlist, &chip, &model, &config)
            });
            assert_eq!(serial, par, "threads = {threads}");
        }
    }
}
