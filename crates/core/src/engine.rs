//! The stage engine: the §6 pipeline as a data-driven stage sequence
//! executed by an observable, cancellable, resumable driver (DESIGN.md
//! §9).
//!
//! A [`Stage`] transforms the placement held by a shared
//! [`PlacerContext`]; the driver owns everything cross-cutting: event
//! emission ([`PlacerObserver`]), stop conditions (cancellation token +
//! time budget, checked at stage/pass boundaries), per-stage timing
//! (including per-round breakdown), thermal snapshots through one
//! warm-started CG context, and stage-boundary checkpoints.
//!
//! The default plan is `global`, then `coarse[r]`/`detail[r]` for round
//! `r` in `0..=post_opt_rounds`. With no observer, budget, or
//! checkpointing configured, the driver executes exactly the historical
//! call sequence, so default-path placements are bitwise identical to the
//! pre-engine pipeline.

use crate::checkpoint::{self, CheckpointLoad};
use crate::coarse::coarse_legalize_priced;
use crate::config::ThermalTierPolicy;
use crate::control::StopCheck;
use crate::detail::{
    check_legal, detail_legalize, detail_legalize_observed, refine_legal, refine_legal_priced,
    LegalizeStats,
};
use crate::faults::{Degradation, FaultKind, FaultPlan};
use crate::metrics::{self, ThermalGuard};
use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::observer::{NopObserver, PassEvent, PlacerEvent, PlacerObserver};
use crate::placer::{PlaceOptions, PlacementResult, RoundTiming, StageTimings, ThermalSnapshot};
use crate::thermal_pricer::ThermalMovePricer;
use crate::{Chip, PlaceError, Placement, PlacerConfig};
use std::ops::ControlFlow;
use std::path::Path;
use std::time::{Duration, Instant};
use tvp_netlist::{CellId, Netlist};
use tvp_thermal::{
    CompactModel, GridOracle, TemperatureField, ThermalOracle, ThermalSimulator, ThermalTier,
};

/// Wall-clock stall injected by [`FaultKind::SlowStage`] at the keyed
/// stage's begin. Long enough that supervisors can observe (and kill) a
/// run inside the stage, short enough for test suites; placement bits
/// are never affected.
pub const SLOW_STAGE_DELAY: Duration = Duration::from_millis(250);

/// Which part of the §6 pipeline a stage implements. The driver uses the
/// kind to route timings (totals + per-round) and thermal snapshots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// Recursive-bisection global placement.
    Global,
    /// Coarse legalization round `round`.
    Coarse {
        /// Optimization round, from 0.
        round: usize,
    },
    /// Detailed legalization (+ legality-preserving refinement) round
    /// `round`.
    Detail {
        /// Optimization round, from 0.
        round: usize,
    },
}

/// How a stage ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageStatus {
    /// The stage ran to completion.
    Completed,
    /// The stage stopped early at a cancellation point. The driver stops
    /// the pipeline (after restoring legality if needed).
    Interrupted,
}

/// Everything a stage may read or transform, shared across the pipeline.
pub struct PlacerContext<'a> {
    /// The netlist being placed.
    pub netlist: &'a Netlist,
    /// Chip geometry derived from the netlist and configuration.
    pub chip: &'a Chip,
    /// The run's configuration.
    pub config: &'a PlacerConfig,
    /// Static objective model (coefficients, power, resistance).
    pub model: &'a ObjectiveModel,
    /// The placement under construction, behind its incremental
    /// objective evaluator.
    pub objective: IncrementalObjective<'a>,
    /// Fixed-cell seeds (pads, macros) for global placement.
    pub fixed_positions: &'a [(CellId, f64, f64, u16)],
    /// Statistics of the most recent detailed legalization.
    pub legalize: LegalizeStats,
    /// Whether the current placement is row-legal (true right after a
    /// detail stage).
    pub legal: bool,
    /// Per-move thermal pricer, present only when a stage's tier is
    /// [`ThermalTier::Compact`] and `alpha_temp > 0` (DESIGN.md §14).
    pricer: Option<ThermalMovePricer>,
    /// The run's fault plan, if one was attached (consumed as it fires).
    faults: Option<FaultPlan>,
    /// Every graceful degradation recorded so far.
    degradations: Vec<Degradation>,
    /// Fault/degradation events awaiting delivery to the observer (the
    /// driver flushes these at stage boundaries).
    pending_events: Vec<PlacerEvent>,
}

impl PlacerContext<'_> {
    /// Whether the attached [`FaultPlan`] wants fault `kind` injected at
    /// `site` (always `false` without a plan). A firing fault is reported
    /// to the observer as [`PlacerEvent::FaultInjected`].
    pub fn fire_fault(&mut self, kind: FaultKind, site: &str) -> bool {
        let fired = self
            .faults
            .as_mut()
            .is_some_and(|plan| plan.should_fire(kind, site));
        if fired {
            self.pending_events.push(PlacerEvent::FaultInjected {
                kind: kind.as_str().to_string(),
                site: site.to_string(),
            });
        }
        fired
    }

    /// Records one graceful degradation: it lands in
    /// [`PlacementResult::degradations`](crate::PlacementResult) and is
    /// reported to the observer as [`PlacerEvent::Degraded`].
    pub fn record_degradation(&mut self, degradation: Degradation) {
        self.pending_events.push(PlacerEvent::Degraded {
            kind: degradation.kind().to_string(),
            detail: degradation.detail(),
        });
        self.degradations.push(degradation);
    }

    /// Degradations recorded so far, in order.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }
}

/// Delivers any queued fault/degradation events to the observer.
fn flush_events(ctx: &mut PlacerContext<'_>, observer: &mut dyn PlacerObserver) {
    if observer.enabled() {
        for event in ctx.pending_events.drain(..) {
            observer.event(&event);
        }
    } else {
        ctx.pending_events.clear();
    }
}

/// The driver-provided handle a stage reports progress through. Each
/// [`pass`](Self::pass) call is also a cancellation point: a
/// [`ControlFlow::Break`] return asks the stage to stop at this boundary
/// and return [`StageStatus::Interrupted`].
pub struct StageMonitor<'m> {
    observer: &'m mut (dyn PlacerObserver + 'm),
    stop: &'m StopCheck,
    index: usize,
    stage: &'m str,
}

impl StageMonitor<'_> {
    /// Reports one pass-boundary event and polls the stop conditions.
    pub fn pass(&mut self, pass: PassEvent) -> ControlFlow<()> {
        if self.observer.enabled() {
            self.observer.event(&PlacerEvent::Pass {
                index: self.index,
                stage: self.stage.to_string(),
                pass,
            });
        }
        if self.stop.should_stop() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    /// A clone of the run's stop conditions for stages that hand
    /// cancellation down into parallel kernels, or `None` when no stop
    /// condition is armed (the kernels then skip polling entirely).
    pub(crate) fn armed_stop(&self) -> Option<StopCheck> {
        self.stop.is_armed().then(|| self.stop.clone())
    }
}

/// One pipeline stage. Implementations transform `ctx.objective` and
/// report progress (and honor cancellation) through the monitor.
pub trait Stage {
    /// Display name, unique within a plan (e.g. `coarse[1]`).
    fn name(&self) -> String;

    /// The stage's pipeline role.
    fn kind(&self) -> StageKind;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] only for non-recoverable failures;
    /// cancellation is *not* an error (return
    /// [`StageStatus::Interrupted`]).
    fn run(
        &self,
        ctx: &mut PlacerContext<'_>,
        monitor: &mut StageMonitor<'_>,
    ) -> Result<StageStatus, PlaceError>;
}

/// Recursive-bisection global placement (§3).
struct GlobalStage;

impl Stage for GlobalStage {
    fn name(&self) -> String {
        "global".to_string()
    }

    fn kind(&self) -> StageKind {
        StageKind::Global
    }

    fn run(
        &self,
        ctx: &mut PlacerContext<'_>,
        monitor: &mut StageMonitor<'_>,
    ) -> Result<StageStatus, PlaceError> {
        // The imbalance fault targets the root bisection only: level 0
        // has exactly one region, so the injection is deterministic under
        // any thread count.
        let inject = ctx.fire_fault(FaultKind::PartitionImbalance, "global");
        // Hand the run's stop conditions down into the bisection kernels:
        // an expired time budget or a cancelled token is then noticed
        // mid-FM-pass (every ~1k heap pops) instead of only at the stage
        // boundary. Unarmed runs pass `None`, keeping the hot loops
        // poll-free and the placement bitwise identical to history.
        let armed = monitor.armed_stop();
        let stop_fn = armed.map(|check| move || check.should_stop());
        let interrupted;
        let (placement, stats) = {
            let stop: Option<&(dyn Fn() -> bool + Sync)> =
                stop_fn.as_ref().map(|f| f as &(dyn Fn() -> bool + Sync));
            let out = crate::global::global_place_with_fixed_stats_stop(
                ctx.netlist,
                ctx.chip,
                ctx.model,
                ctx.config,
                ctx.fixed_positions,
                inject,
                stop,
            );
            interrupted = stop.is_some_and(|s| s());
            out
        };
        if stats.partition_retries > 0 {
            ctx.record_degradation(Degradation::PartitionRetried {
                retries: stats.partition_retries,
            });
        }
        ctx.objective = IncrementalObjective::new(ctx.netlist, ctx.model, placement);
        ctx.legal = false;
        Ok(if interrupted {
            StageStatus::Interrupted
        } else {
            StageStatus::Completed
        })
    }
}

/// Coarse legalization (§4): moves/swaps + cell shifting.
struct CoarseStage {
    round: usize,
}

impl Stage for CoarseStage {
    fn name(&self) -> String {
        format!("coarse[{}]", self.round)
    }

    fn kind(&self) -> StageKind {
        StageKind::Coarse { round: self.round }
    }

    fn run(
        &self,
        ctx: &mut PlacerContext<'_>,
        monitor: &mut StageMonitor<'_>,
    ) -> Result<StageStatus, PlaceError> {
        ctx.legal = false;
        // Arm per-move thermal pricing for this stage when its tier is
        // compact: the frozen field is re-grounded on the placement the
        // stage starts from.
        let priced = ctx.config.thermal_tiers.coarse == ThermalTier::Compact;
        if priced {
            if let Some(pricer) = ctx.pricer.as_mut() {
                pricer.refresh(ctx.netlist, ctx.chip, ctx.model, &ctx.objective)?;
            }
        }
        let (_, interrupted) = coarse_legalize_priced(
            &mut ctx.objective,
            ctx.netlist,
            ctx.chip,
            ctx.config,
            if priced { ctx.pricer.as_mut() } else { None },
            &mut |p| monitor.pass(p),
        );
        Ok(if interrupted {
            StageStatus::Interrupted
        } else {
            StageStatus::Completed
        })
    }
}

/// Detailed legalization (§5) plus legality-preserving refinement.
struct DetailStage {
    round: usize,
}

impl Stage for DetailStage {
    fn name(&self) -> String {
        format!("detail[{}]", self.round)
    }

    fn kind(&self) -> StageKind {
        StageKind::Detail { round: self.round }
    }

    fn run(
        &self,
        ctx: &mut PlacerContext<'_>,
        monitor: &mut StageMonitor<'_>,
    ) -> Result<StageStatus, PlaceError> {
        // Legalization itself never stops early: it is the step that
        // *creates* the legality every graceful stop relies on.
        ctx.legalize = detail_legalize_observed(
            &mut ctx.objective,
            ctx.netlist,
            ctx.chip,
            ctx.config.detail_row_window,
            &mut |p| monitor.pass(p),
        );
        ctx.legal = true;
        // Refinement prices moves thermally when the detail tier is
        // compact; the field is refreshed *after* legalization because
        // snapping moved every cell.
        let priced = ctx.config.thermal_tiers.detail == ThermalTier::Compact;
        if priced {
            if let Some(pricer) = ctx.pricer.as_mut() {
                pricer.refresh(ctx.netlist, ctx.chip, ctx.model, &ctx.objective)?;
            }
        }
        let (_, interrupted) = refine_legal_priced(
            &mut ctx.objective,
            ctx.netlist,
            ctx.chip,
            ctx.config.legal_refine_passes,
            if priced { ctx.pricer.as_mut() } else { None },
            &mut |p| monitor.pass(p),
        );
        Ok(if interrupted {
            StageStatus::Interrupted
        } else {
            StageStatus::Completed
        })
    }
}

/// The run's thermal-oracle bank (DESIGN.md §14): one oracle per tier
/// the configured [`ThermalTierPolicy`] actually uses. The full-grid
/// oracle always exists — it is the default tier, the fallback for
/// unbuilt tiers, and the reference every cross-model error is measured
/// against. Coarse-grid and compact oracles are built only on demand, so
/// the default (all-full-grid) policy constructs exactly the historical
/// simulator + context pair and nothing else.
struct ThermalOracles {
    tiers: ThermalTierPolicy,
    full: GridOracle,
    coarse: Option<GridOracle>,
    compact: Option<CompactModel>,
}

impl ThermalOracles {
    fn build(config: &PlacerConfig, chip: &Chip) -> Result<Self, PlaceError> {
        let tiers = config.thermal_tiers;
        let (nx, ny) = config.thermal_grid;
        let make_sim = |nx: usize, ny: usize| match &config.stack_layers {
            Some(layers) => ThermalSimulator::with_layers(
                chip.stack,
                layers.clone(),
                chip.width,
                chip.depth,
                nx,
                ny,
            ),
            None => ThermalSimulator::new(chip.stack, chip.width, chip.depth, nx, ny),
        };
        let full = GridOracle::full_grid(make_sim(nx, ny)?, config.thermal_precond);
        let coarse = if tiers.uses(ThermalTier::CoarseGrid) {
            let sim = make_sim((nx / 2).max(2), (ny / 2).max(2))?;
            Some(GridOracle::coarse_grid(sim, config.thermal_precond))
        } else {
            None
        };
        let compact = if tiers.uses(ThermalTier::Compact) {
            // The compact model is fitted in-tree against the multigrid
            // solver at a bounded resolution: kernel superposition is
            // O(grid²) per evaluation, and 16×16 bins already resolve
            // the lateral spreading the kernels model.
            let sim = make_sim(nx.clamp(2, 16), ny.clamp(2, 16))?;
            let (model, _report) = CompactModel::fit(&sim, config.thermal_precond)?;
            Some(model)
        } else {
            None
        };
        Ok(Self {
            tiers,
            full,
            coarse,
            compact,
        })
    }

    /// The tier the policy assigns to a snapshot site.
    fn tier_for(&self, stage: &str) -> ThermalTier {
        match stage {
            "global" => self.tiers.global,
            "coarse" => self.tiers.coarse,
            _ => self.tiers.final_eval,
        }
    }

    /// The oracle for `tier`, falling back to full-grid when the tier
    /// was not built (the policy never requested it).
    fn oracle(&mut self, tier: ThermalTier) -> &mut dyn ThermalOracle {
        match tier {
            ThermalTier::CoarseGrid => {
                if let Some(coarse) = self.coarse.as_mut() {
                    return coarse;
                }
                &mut self.full
            }
            ThermalTier::Compact => {
                if let Some(compact) = self.compact.as_mut() {
                    return compact;
                }
                &mut self.full
            }
            ThermalTier::FullGrid => &mut self.full,
        }
    }
}

/// Builds the default §6 stage plan for a configuration: `global`, then
/// one `coarse`/`detail` pair per optimization round.
pub fn default_stage_plan(config: &PlacerConfig) -> Vec<Box<dyn Stage>> {
    let mut stages: Vec<Box<dyn Stage>> = vec![Box::new(GlobalStage)];
    for round in 0..config.rounds() {
        stages.push(Box::new(CoarseStage { round }));
        stages.push(Box::new(DetailStage { round }));
    }
    stages
}

/// Runs the full pipeline for `config` under the given options.
pub(crate) fn run_pipeline(
    config: &PlacerConfig,
    netlist: &Netlist,
    fixed_positions: &[(CellId, f64, f64, u16)],
    options: &mut PlaceOptions<'_>,
) -> Result<PlacementResult, PlaceError> {
    let start = Instant::now();
    let chip = Chip::from_netlist(netlist, config)?;
    let model = ObjectiveModel::new(netlist, &chip, config)?;

    // One oracle bank for every thermal evaluation of this run: the
    // full-grid oracle owns the historical simulator + warm-started CG
    // context (the preconditioner hierarchy is built once, and each
    // stage's solve warm-starts from the previous stage's field);
    // coarse-grid and compact oracles exist only when the tier policy
    // queries them.
    let mut oracles = ThermalOracles::build(config, &chip)?;
    let pricer = if config.alpha_temp > 0.0
        && (config.thermal_tiers.coarse == ThermalTier::Compact
            || config.thermal_tiers.detail == ThermalTier::Compact)
    {
        oracles
            .compact
            .clone()
            .map(|model| ThermalMovePricer::new(model, config.alpha_temp))
    } else {
        None
    };
    let mut trajectory: Vec<ThermalSnapshot> = Vec::new();

    let stages = default_stage_plan(config);
    let stage_names: Vec<String> = stages.iter().map(|s| s.name()).collect();
    let stop = StopCheck::new(options.cancel.clone(), options.time_budget);

    let mut nop = NopObserver;
    let observer: &mut dyn PlacerObserver = match options.observer.as_deref_mut() {
        Some(o) => o,
        None => &mut nop,
    };

    // Resume from the newest checkpoint when a directory is configured.
    // A damaged checkpoint is quarantined (renamed to `*.corrupt` by the
    // loader) and the run restarts fresh instead of failing.
    let fp = checkpoint::fingerprint(netlist, config);
    let load = match &options.checkpoint_dir {
        Some(dir) => checkpoint::load_latest(dir, netlist, fp, stages.len(), &chip)?,
        None => CheckpointLoad::Fresh,
    };
    let fresh = || (Placement::centered(netlist.num_cells(), &chip), None, false);
    let mut quarantined_note = None;
    let (initial_placement, resumed_index, mut legal) = match load {
        CheckpointLoad::Resume(r) => (r.placement, Some(r.stage_index), r.legal),
        CheckpointLoad::Fresh => fresh(),
        CheckpointLoad::Quarantined {
            quarantined,
            reason,
        } => {
            quarantined_note = Some((quarantined, reason));
            fresh()
        }
    };
    let resumed_from = resumed_index.map(|i| stage_names[i].clone());

    let mut ctx = PlacerContext {
        netlist,
        chip: &chip,
        config,
        model: &model,
        objective: IncrementalObjective::new(netlist, &model, initial_placement),
        fixed_positions,
        legalize: LegalizeStats::default(),
        legal: false,
        pricer,
        faults: options.faults.take(),
        degradations: Vec::new(),
        pending_events: Vec::new(),
    };
    ctx.legal = legal;

    if observer.enabled() {
        observer.event(&PlacerEvent::RunBegin {
            stages: stage_names.clone(),
            resumed_from: resumed_index,
        });
    }
    if let Some((quarantined, reason)) = quarantined_note {
        if observer.enabled() {
            for path in &quarantined {
                observer.event(&PlacerEvent::CheckpointQuarantined {
                    path: path.clone(),
                    reason: reason.clone(),
                });
            }
        }
        ctx.record_degradation(Degradation::CheckpointQuarantined {
            path: quarantined.first().cloned().unwrap_or_default(),
            reason,
        });
        flush_events(&mut ctx, observer);
    }

    let mut timings = StageTimings::default();
    let mut stopped_early = false;

    for (index, stage) in stages.iter().enumerate() {
        let name = &stage_names[index];
        if resumed_index.is_some_and(|r| index <= r) {
            if observer.enabled() {
                observer.event(&PlacerEvent::StageSkipped {
                    index,
                    stage: name.clone(),
                });
            }
            continue;
        }
        if stop.should_stop() {
            stopped_early = true;
            break;
        }
        if observer.enabled() {
            observer.event(&PlacerEvent::StageBegin {
                index,
                stage: name.clone(),
            });
        }
        // Injected stall at stage begin: stretches wall-clock only (for
        // deadline/queue-latency testing); placement arithmetic and the
        // stage's RNG stream are untouched. Deliberately outside the
        // timed region so per-stage timings stay meaningful.
        if ctx.fire_fault(FaultKind::SlowStage, name) {
            flush_events(&mut ctx, observer);
            std::thread::sleep(SLOW_STAGE_DELAY);
        }
        let t = Instant::now();
        let status = {
            let mut monitor = StageMonitor {
                observer,
                stop: &stop,
                index,
                stage: name,
            };
            stage.run(&mut ctx, &mut monitor)?
        };
        flush_events(&mut ctx, observer);
        let elapsed = t.elapsed();
        // Stage boundary: pin the accumulated objective back to a
        // from-scratch recomputation so float round-off from the stage's
        // move sequence never compounds into the next stage (outside the
        // timed region — this is bookkeeping, not stage work).
        ctx.objective.resync_total();
        match stage.kind() {
            StageKind::Global => timings.global += elapsed,
            StageKind::Coarse { round } => {
                timings.coarse += elapsed;
                grow_rounds(&mut timings.rounds, round).coarse += elapsed;
            }
            StageKind::Detail { round } => {
                timings.detail += elapsed;
                grow_rounds(&mut timings.rounds, round).detail += elapsed;
            }
        }
        if observer.enabled() {
            observer.event(&PlacerEvent::StageEnd {
                index,
                stage: name.clone(),
                seconds: elapsed.as_secs_f64(),
                objective: ctx.objective.total(),
                interrupted: status == StageStatus::Interrupted,
            });
        }

        // Thermal snapshots at the historical boundaries: after global
        // placement and after the first coarse round.
        let snapshot_label = match stage.kind() {
            StageKind::Global => Some("global"),
            StageKind::Coarse { round: 0 } => Some("coarse"),
            _ => None,
        };
        if let Some(label) = snapshot_label {
            snapshot(label, &mut ctx, &mut oracles, &mut trajectory, observer)?;
            flush_events(&mut ctx, observer);
        }

        if status == StageStatus::Interrupted {
            stopped_early = true;
            break;
        }

        // Checkpoints cover only *completed* stages, so resuming always
        // restarts from a canonical stage boundary.
        if let Some(dir) = &options.checkpoint_dir {
            // Injected write failure: surfaces as the typed, retryable
            // checkpoint error a supervisor must handle. Fires *before*
            // the write, so a retry resumes from the previous stage's
            // (intact) checkpoint.
            if ctx.fire_fault(FaultKind::CheckpointWriteIo, name) {
                flush_events(&mut ctx, observer);
                return Err(PlaceError::Checkpoint {
                    path: dir.display().to_string(),
                    reason: format!("injected I/O failure writing checkpoint after `{name}`"),
                });
            }
            let path = checkpoint::write_checkpoint(
                dir,
                index,
                name,
                stages.len(),
                ctx.legal,
                netlist,
                ctx.objective.placement(),
                fp,
            )?;
            // Fault injection: damage the just-written checkpoint so a
            // later resume exercises the quarantine path.
            if ctx.fire_fault(FaultKind::CorruptCheckpoint, name) {
                checkpoint::truncate_for_fault(Path::new(&path))?;
            }
            flush_events(&mut ctx, observer);
            if observer.enabled() {
                observer.event(&PlacerEvent::CheckpointWritten {
                    index,
                    stage: name.clone(),
                    path,
                });
            }
        }
    }
    legal = ctx.legal;

    // A graceful stop must still hand back a legal placement: if the
    // pipeline stopped before (or inside) a legalizing stage, run one
    // uncancellable detail pass over the best placement we have.
    if stopped_early && !legal {
        let index = stages.len();
        if observer.enabled() {
            observer.event(&PlacerEvent::StageBegin {
                index,
                stage: "finalize".to_string(),
            });
        }
        let t = Instant::now();
        ctx.legalize =
            detail_legalize(&mut ctx.objective, netlist, &chip, config.detail_row_window);
        refine_legal(
            &mut ctx.objective,
            netlist,
            &chip,
            config.legal_refine_passes,
        );
        ctx.legal = true;
        let elapsed = t.elapsed();
        ctx.objective.resync_total();
        timings.detail += elapsed;
        if observer.enabled() {
            observer.event(&PlacerEvent::StageEnd {
                index,
                stage: "finalize".to_string(),
                seconds: elapsed.as_secs_f64(),
                objective: ctx.objective.total(),
                interrupted: false,
            });
        }
    }

    if let Some(violation) = check_legal(netlist, &chip, ctx.objective.placement()) {
        return Err(PlaceError::LegalizationFailed { violation });
    }

    let guard = ThermalGuard {
        inject_nan: ctx.fire_fault(FaultKind::NanPower, "final"),
        inject_cg_failure: ctx.fire_fault(FaultKind::CgBreakdown, "final"),
    };
    let final_tier = oracles.tier_for("final");
    let (metrics, outcome, field) = metrics::compute_with_guarded(
        netlist,
        &chip,
        &model,
        &ctx.objective,
        oracles.oracle(final_tier),
        guard,
    )?;
    if outcome.degraded() {
        ctx.record_degradation(Degradation::ThermalDegraded {
            stage: "final".to_string(),
            detail: outcome.describe(),
        });
    }
    let (cross_max, cross_avg) = cross_errors(&ctx, &mut oracles, final_tier, &field)?;
    flush_events(&mut ctx, observer);
    let final_snapshot = ThermalSnapshot {
        stage: "final",
        tier: final_tier.as_str(),
        avg_temperature: metrics.avg_temperature,
        max_temperature: metrics.max_temperature,
        cg_iterations: outcome.iterations(),
        warm_started: outcome.warm_started(),
        preconditioner: outcome.preconditioner(),
        initial_residual: outcome.initial_residual(),
        cross_model_max_error: cross_max,
        cross_model_avg_error: cross_avg,
    };
    trajectory.push(final_snapshot);
    if observer.enabled() {
        observer.event(&PlacerEvent::ThermalSolved {
            snapshot: final_snapshot,
        });
        observer.event(&PlacerEvent::RunEnd {
            seconds: start.elapsed().as_secs_f64(),
            stopped_early,
        });
    }

    timings.total = start.elapsed();
    let placement = ctx.objective.into_placement();
    let legalize = ctx.legalize;
    let degradations = ctx.degradations;
    Ok(PlacementResult {
        placement,
        metrics,
        legalize,
        timings,
        thermal_trajectory: trajectory,
        chip,
        stopped_early,
        resumed_from,
        degradations,
    })
}

/// Returns the timing slot for `round`, growing the vector as rounds
/// execute (an interrupted run reports only the rounds that ran).
fn grow_rounds(rounds: &mut Vec<RoundTiming>, round: usize) -> &mut RoundTiming {
    while rounds.len() <= round {
        rounds.push(RoundTiming::default());
    }
    &mut rounds[round]
}

/// Solves the thermal field of the current placement through the tier
/// the policy assigns to this site (hardened: NaN power is sanitized, a
/// CG breakdown falls back to damped Jacobi), appends the outcome —
/// including the cross-model error against the full-grid reference when
/// a cheaper tier answered — to the trajectory, and reports it.
fn snapshot(
    stage: &'static str,
    ctx: &mut PlacerContext<'_>,
    oracles: &mut ThermalOracles,
    trajectory: &mut Vec<ThermalSnapshot>,
    observer: &mut dyn PlacerObserver,
) -> Result<(), PlaceError> {
    let guard = ThermalGuard {
        inject_nan: ctx.fire_fault(FaultKind::NanPower, stage),
        inject_cg_failure: ctx.fire_fault(FaultKind::CgBreakdown, stage),
    };
    let tier = oracles.tier_for(stage);
    let (field, outcome) = metrics::solve_field(
        ctx.netlist,
        ctx.chip,
        ctx.model,
        &ctx.objective,
        oracles.oracle(tier),
        guard,
    )?;
    if outcome.degraded() {
        ctx.record_degradation(Degradation::ThermalDegraded {
            stage: stage.to_string(),
            detail: outcome.describe(),
        });
    }
    let (avg, max) = metrics::sample_cells(ctx.chip, &ctx.objective, &field);
    let (cross_max, cross_avg) = cross_errors(ctx, oracles, tier, &field)?;
    let snap = ThermalSnapshot {
        stage,
        tier: tier.as_str(),
        avg_temperature: avg,
        max_temperature: max,
        cg_iterations: outcome.iterations(),
        warm_started: outcome.warm_started(),
        preconditioner: outcome.preconditioner(),
        initial_residual: outcome.initial_residual(),
        cross_model_max_error: cross_max,
        cross_model_avg_error: cross_avg,
    };
    trajectory.push(snap);
    if observer.enabled() {
        observer.event(&PlacerEvent::ThermalSolved { snapshot: snap });
    }
    Ok(())
}

/// The `(max, avg)` absolute cross-model temperature error of `field`
/// against a fresh full-grid reference solve of the same placement.
/// `(NaN, NaN)` when the full grid itself answered — there is nothing to
/// compare, and `NaN` renders as `null` in trace events. The reference
/// solve runs unguarded: it is never the quantity under test, and on the
/// default (all-full-grid) policy this function never solves at all.
fn cross_errors(
    ctx: &PlacerContext<'_>,
    oracles: &mut ThermalOracles,
    tier: ThermalTier,
    field: &TemperatureField,
) -> Result<(f64, f64), PlaceError> {
    if tier == ThermalTier::FullGrid {
        return Ok((f64::NAN, f64::NAN));
    }
    let (reference, _) = metrics::solve_field(
        ctx.netlist,
        ctx.chip,
        ctx.model,
        &ctx.objective,
        &mut oracles.full,
        ThermalGuard::default(),
    )?;
    Ok(metrics::cross_model_error(
        ctx.chip,
        &ctx.objective,
        field,
        &reference,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_matches_config_rounds() {
        let plan = default_stage_plan(&PlacerConfig::new(2));
        let names: Vec<String> = plan.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["global", "coarse[0]", "detail[0]"]);

        let mut config = PlacerConfig::new(2);
        config.post_opt_rounds = 2;
        let plan = default_stage_plan(&config);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan[5].name(), "coarse[2]");
        assert_eq!(plan[6].kind(), StageKind::Detail { round: 2 });
    }

    #[test]
    fn rounds_vector_grows_on_demand() {
        let mut rounds = Vec::new();
        grow_rounds(&mut rounds, 1).coarse = std::time::Duration::from_secs(1);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0], RoundTiming::default());
        assert_eq!(rounds[1].coarse, std::time::Duration::from_secs(1));
    }
}
