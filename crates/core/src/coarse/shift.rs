//! Cell shifting (paper §4.1), as a row-parallel propose/commit engine.
//!
//! For each row of bins (in x, then in y), new bin boundaries are computed
//! from the whole row's densities at once — over-congested bins expand,
//! sparse bins contract *only as much as the congested bins in the same
//! row need* — and cells are remapped linearly into their bin's new span
//! (Eq. 16–17). Solving the whole row at once is the paper's fix for
//! FastPlace's boundary cross-over problem; conserving total row width by
//! construction means boundaries stay ordered.
//!
//! # Two-phase sweeps
//!
//! Within one sweep a cell's remap only changes its coordinate along the
//! sweep axis, so it never leaves its row: rows are density-disjoint, and
//! the whole sweep can be solved against one frozen snapshot without
//! changing a single remap. That is the shape of the engine (DESIGN.md
//! §17, mirroring the batched coarse passes of §16):
//!
//! * **Phase A** plans every row of the sweep concurrently through
//!   [`tvp_parallel::map_chunks`] — boundary solve, cell remaps, and
//!   Eq. 17 move pricing against a [`FrozenPricer`] snapshot, with no
//!   shared mutable state (each chunk owns its scratch buffers). Chunk
//!   boundaries are a pure function of the row count, never the thread
//!   count, so the planned move list is bitwise identical for any
//!   `--threads` setting.
//! * **Phase B** commits the planned rows serially in fixed (k, j) /
//!   (k, i) index order through [`IncrementalObjective::apply_row_moves`].
//!
//! The x sweep, y sweep, and z pass each see the previous one's commits
//! (a fresh snapshot per sweep). With the thermal term active there is no
//! frozen pricer, and the sweeps fall back to the exact historical serial
//! row loop.

use super::mesh::DensityMesh;
use crate::objective::{CellMove, FrozenPricer, FrozenScratch, IncrementalObjective};
use crate::{Chip, ShiftStrategy};
use std::ops::ControlFlow;
use tvp_netlist::Netlist;
use tvp_parallel as parallel;

/// Chunking floor for phase-A row planning: one row costs a boundary
/// solve plus two priced probes per resident cell, so a handful of rows
/// already amortizes pool dispatch.
const PLAN_MIN_ROWS: usize = 4;

/// Convergence: a pass that moved at most this fraction of the movable
/// cells *and* stayed under [`CONVERGED_BOUNDARY_DELTA`] is a
/// noise-scale tail pass — it re-shuffles a handful of cells across
/// near-unchanged boundaries.
const CONVERGED_MOVED_FRACTION: f64 = 1.0e-3;

/// Convergence: largest relative bin-boundary displacement (|new − old|
/// over the bin width) a noise-scale pass may have solved for.
const CONVERGED_BOUNDARY_DELTA: f64 = 5.0e-3;

/// Stall detection: a pass "improves" only when it lowers the best
/// peak density seen this spread by at least this relative margin.
/// Measured trajectories (10k/100k, DESIGN.md §17) plateau hard: tail
/// passes keep moving ~2 remaps per cell while the peak density
/// oscillates within a fraction of a percent, so sub-0.1% progress per
/// pass is the stalled regime, not slow convergence.
const STALL_REL_IMPROVEMENT: f64 = 1.0e-3;

/// Stall detection: consecutive non-improving passes tolerated before
/// the spread stops. Measured 10k/100k trajectories oscillate in a
/// fixed density band once stalled — wider patience only chases the
/// band's noise dips (each undone by the next pass) at full per-pass
/// cost, with no measurable downstream quality gain.
const STALL_PATIENCE: usize = 2;

/// Reusable per-row buffers for row planning: the row's bin ids, their
/// densities, the solved boundaries, and a flattened snapshot of the
/// row's cells (`offsets[i]..offsets[i+1]` indexes bin `i`'s slice of
/// `cells`; used by the serial fallback, which relocates mid-row). One
/// scratch serves every row a worker plans, so a spread at 100k cells
/// reuses a few buffers per chunk instead of churning millions of
/// short-lived `Vec`s.
#[derive(Default)]
struct RowScratch {
    bins: Vec<usize>,
    densities: Vec<f64>,
    bounds: Vec<f64>,
    cells: Vec<tvp_netlist::CellId>,
    offsets: Vec<usize>,
}

/// What one shifting pass did — the signal the convergence detector and
/// the `ShiftPass` observer event are built from.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ShiftPassStats {
    /// Cells moved (x rows + y rows + z columns).
    pub moved: usize,
    /// Largest relative bin-boundary displacement any row solved for
    /// (|new − old| / old bin width); 0 when every row was left alone.
    pub max_boundary_delta: f64,
}

/// One per-pass report delivered to the
/// [`shift_until_spread_observed`] probe.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ShiftPassReport {
    /// Pass index within the phase, from 0.
    pub pass: usize,
    /// Cells the pass moved.
    pub moved: usize,
    /// Largest relative bin-boundary displacement of the pass.
    pub max_boundary_delta: f64,
    /// Maximum bin density after the pass — the stall-detection signal.
    pub max_density: f64,
    /// Wall-clock milliseconds the pass took.
    pub wall_ms: f64,
}

/// One full cell-shifting pass over every x row and every y row.
/// Returns the number of cells moved.
pub fn shift_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target_density: f64,
    strategy: ShiftStrategy,
) -> usize {
    shift_pass_stats(objective, mesh, netlist, chip, target_density, strategy).moved
}

/// [`shift_pass`] with the full per-pass statistics.
pub fn shift_pass_stats(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target_density: f64,
    strategy: ShiftStrategy,
) -> ShiftPassStats {
    let (nx, ny, nz) = mesh.dims();
    let mut stats = ShiftPassStats::default();
    for axis in [Axis::X, Axis::Y] {
        let (moved, max_delta) = sweep(
            objective,
            mesh,
            netlist,
            chip,
            axis,
            target_density,
            strategy,
        );
        stats.moved += moved;
        stats.max_boundary_delta = stats.max_boundary_delta.max(max_delta);
    }
    // Columns along z: fixed (i, j). Layers are discrete, so instead of
    // boundary scaling the congested bins hand their objective-cheapest
    // cells to under-full bins of the same column (§4.1's "each
    // direction", adapted to quantized z). Bin-level congestion is x/y
    // shifting's job; the z pass only acts when a *layer as a whole*
    // exceeds capacity — the case lateral spreading cannot fix and
    // detailed legalization would otherwise resolve arbitrarily.
    //
    // This pass stays serial by construction: each bounded greedy step
    // picks its source layer, destination layer, and cheapest cell from
    // the densities and bin contents *after* the previous step's move,
    // so the steps form a dependence chain a frozen snapshot cannot
    // honor. It is also far off the hot path — it runs only in the rare
    // whole-layer-overfull state (balanced bisection keeps layers even),
    // and then touches at most 8 cells per column.
    if nz > 1 {
        let per_layer_bins = (nx * ny) as f64;
        let layer_capacity = per_layer_bins * mesh.capacity() * target_density;
        let overfull: Vec<bool> = (0..nz)
            .map(|k| mesh.layer_area(k) > layer_capacity)
            .collect();
        if overfull.iter().any(|&o| o) {
            for j in 0..ny {
                for i in 0..nx {
                    stats.moved +=
                        shift_column_z(objective, mesh, netlist, i, j, target_density, &overfull);
                }
            }
        }
    }
    stats
}

/// One directional sweep (all x rows or all y rows): row-parallel
/// plan/commit when a frozen pricer exists (WL+ILV mode), the historical
/// serial row loop otherwise. Returns `(cells moved, max relative
/// boundary delta)`.
fn sweep(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    axis: Axis,
    target_density: f64,
    strategy: ShiftStrategy,
) -> (usize, f64) {
    let (nx, ny, nz) = mesh.dims();
    // Row r of the sweep is (k = r / rows_per_layer, j or i = r %
    // rows_per_layer) — the same (k, j) / (k, i) nesting the serial loop
    // iterates, so phase B's commit order matches it exactly.
    let (rows_per_layer, row_len) = match axis {
        Axis::X => (ny, nx),
        Axis::Y => (nx, ny),
    };
    let num_rows = nz * rows_per_layer;

    // Phase A: plan every row against the sweep-start snapshot. Within a
    // sweep a remap moves cells only along the sweep axis, so no cell
    // changes rows and no row's densities depend on another row's
    // commits — the frozen plan is remap-exact, and only the Eq. 17
    // pricing sees a (deliberately) frozen objective.
    let mesh_ref: &DensityMesh = mesh;
    let plans: Option<Vec<ChunkPlan>> = objective.frozen_pricer().map(|frozen| {
        parallel::map_chunks(num_rows, PLAN_MIN_ROWS, |range| {
            let mut scratch = RowScratch::default();
            let mut fscratch = FrozenScratch::default();
            let mut plan = ChunkPlan::default();
            for r in range {
                let k = r / rows_per_layer;
                let fixed = r % rows_per_layer;
                scratch.bins.clear();
                match axis {
                    Axis::X => scratch.bins.extend(mesh_ref.x_row_range(fixed, k)),
                    Axis::Y => scratch
                        .bins
                        .extend((0..row_len).map(|j| mesh_ref.index(fixed, j, k))),
                }
                let delta = plan_row(
                    &frozen,
                    &mut fscratch,
                    mesh_ref,
                    chip,
                    &mut scratch,
                    axis,
                    target_density,
                    strategy,
                    &mut plan.moves,
                );
                plan.max_boundary_delta = plan.max_boundary_delta.max(delta);
            }
            plan
        })
    });

    // Phase B: commit chunks in chunk order = rows in sweep order.
    if let Some(plans) = plans {
        let mut moved = 0;
        let mut max_delta = 0.0f64;
        for plan in plans {
            max_delta = max_delta.max(plan.max_boundary_delta);
            moved += plan.moves.len();
            objective.apply_row_moves(&plan.moves);
            for m in &plan.moves {
                mesh.relocate(netlist, m.cell, m.x, m.y, m.layer);
            }
        }
        return (moved, max_delta);
    }

    // Serial fallback (thermal term active): the historical row loop,
    // pricing every candidate against the live objective.
    let mut moved = 0;
    let mut max_delta = 0.0f64;
    let mut scratch = RowScratch::default();
    for r in 0..num_rows {
        let k = r / rows_per_layer;
        let fixed = r % rows_per_layer;
        scratch.bins.clear();
        match axis {
            Axis::X => scratch.bins.extend(mesh.x_row_range(fixed, k)),
            Axis::Y => scratch
                .bins
                .extend((0..row_len).map(|j| mesh.index(fixed, j, k))),
        }
        let (row_moved, row_delta) = shift_row(
            objective,
            mesh,
            netlist,
            chip,
            &mut scratch,
            axis,
            target_density,
            strategy,
        );
        moved += row_moved;
        max_delta = max_delta.max(row_delta);
    }
    (moved, max_delta)
}

/// One chunk's phase-A output: the planned moves of its rows, in row
/// order, plus the chunk's largest relative boundary displacement.
#[derive(Default)]
struct ChunkPlan {
    moves: Vec<CellMove>,
    max_boundary_delta: f64,
}

/// Rebalances one (i, j) column across layers: while some layer's bin is
/// above `target_density` and another is below 1.0, move the cell whose
/// objective delta is smallest. Returns the number of cells moved.
fn shift_column_z(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    i: usize,
    j: usize,
    target_density: f64,
    layer_overfull: &[bool],
) -> usize {
    let (_, _, nz) = mesh.dims();
    let mut moved = 0;
    // Bounded so one pathological column cannot stall a pass.
    for _ in 0..8 {
        let bins: Vec<usize> = (0..nz).map(|k| mesh.index(i, j, k)).collect();
        let Some(src) = bins
            .iter()
            .enumerate()
            .filter(|&(k, &b)| layer_overfull[k] && mesh.density(b) > target_density)
            .max_by(|&(_, &a), &(_, &b)| {
                mesh.density(a)
                    .partial_cmp(&mesh.density(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(_, &b)| b)
        else {
            break;
        };
        let Some(dst) = bins
            .iter()
            .copied()
            .filter(|&b| b != src && mesh.density(b) < 1.0)
            .min_by(|&a, &b| {
                mesh.density(a)
                    .partial_cmp(&mesh.density(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        else {
            break;
        };
        let (_, _, dst_layer) = mesh.coords(dst);
        // Cheapest cell to re-layer (x/y unchanged → only via and thermal
        // terms move).
        let candidate = mesh
            .bin_cells(src)
            .iter()
            .copied()
            .map(|cell| {
                let (x, y, _) = objective.placement().position(cell);
                (objective.delta_move(cell, x, y, dst_layer as u16), cell)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let Some((_, cell)) = candidate else { break };
        let (x, y, _) = objective.placement().position(cell);
        objective.apply_move(cell, x, y, dst_layer as u16);
        mesh.relocate(netlist, cell, x, y, dst_layer as u16);
        moved += 1;
    }
    moved
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

/// Computes the Eq. 16 width-scaling factors for one row.
///
/// Over-congested bins (`d > 1`) grow by `1 + a_upper·(1 − 1/d)`; sparse
/// bins shrink by `1 + a_lower·(d − 1)` with `a_lower` chosen so the total
/// row width is conserved (which keeps boundaries ordered). Returns `None`
/// if the row needs no shifting.
fn row_scale_factors(densities: &[f64], target_density: f64) -> Option<Vec<f64>> {
    let max_d = densities.iter().copied().fold(0.0, f64::max);
    if max_d <= target_density {
        return None; // §4.1: leave nearly legal rows alone
    }
    // Unit widths: bins in a row share one width, so work in ratios.
    let mut grow_sum = 0.0; // Σ (1 − 1/d) over congested bins
    let mut shrink_sum = 0.0; // Σ (1 − d) over sparse bins
    for &d in densities {
        if d > 1.0 {
            grow_sum += 1.0 - 1.0 / d;
        } else {
            shrink_sum += 1.0 - d;
        }
    }
    if grow_sum <= 0.0 || shrink_sum <= 0.0 {
        return None; // nothing to expand into (or nothing congested)
    }
    let mut a_upper = 1.0;
    let mut a_lower = a_upper * grow_sum / shrink_sum;
    // A bin must keep positive width: 1 + a_lower·(d − 1) > 0 for the
    // emptiest bin (worst case d = 0 → a_lower < 1).
    const MAX_LOWER: f64 = 0.9;
    if a_lower > MAX_LOWER {
        a_upper *= MAX_LOWER / a_lower;
        a_lower = MAX_LOWER;
    }
    Some(
        densities
            .iter()
            .map(|&d| {
                if d > 1.0 {
                    1.0 + a_upper * (1.0 - 1.0 / d)
                } else {
                    1.0 - a_lower * (1.0 - d)
                }
            })
            .collect(),
    )
}

/// FastPlace-style boundary update (the §4.1 ablation baseline): each
/// interior boundary moves based only on its two adjacent bins' densities.
/// Boundaries may cross over (the defect the paper's whole-row solve
/// fixes); inverted spans are clamped to a sliver so the mapping stays
/// defined, which is exactly where placement quality degrades.
fn adjacent_pair_bounds(densities: &[f64], old_width: f64) -> Option<Vec<f64>> {
    let n = densities.len();
    if n < 2 {
        return None;
    }
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0.0);
    for i in 1..n {
        let d_left = densities[i - 1];
        let d_right = densities[i];
        let shift = 0.5 * old_width * (d_left - d_right) / (d_left + d_right + 1e-12);
        bounds.push(i as f64 * old_width + shift);
    }
    bounds.push(n as f64 * old_width);
    // Clamp inversions to preserve a defined (if degenerate) mapping.
    let mut any_change = false;
    for i in 1..bounds.len() {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
        if (bounds[i] - i as f64 * old_width).abs() > 1e-15 {
            any_change = true;
        }
    }
    any_change.then_some(bounds)
}

/// Reads the row's densities from the mesh and solves its new boundaries
/// into `scratch.bounds`. Returns the row's largest relative boundary
/// displacement, or `None` when the row is left alone.
fn solve_row_bounds(
    mesh: &DensityMesh,
    scratch: &mut RowScratch,
    old_width: f64,
    target_density: f64,
    strategy: ShiftStrategy,
) -> Option<f64> {
    scratch.densities.clear();
    for &b in &scratch.bins {
        scratch.densities.push(mesh.density(b));
    }
    match strategy {
        ShiftStrategy::WholeRow => {
            let factors = row_scale_factors(&scratch.densities, target_density)?;
            // New boundaries: cumulative sum of scaled widths, anchored at 0.
            scratch.bounds.clear();
            let mut acc = 0.0;
            scratch.bounds.push(acc);
            for &f in &factors {
                acc += f * old_width;
                scratch.bounds.push(acc);
            }
        }
        ShiftStrategy::AdjacentPair => {
            scratch.bounds = adjacent_pair_bounds(&scratch.densities, old_width)?;
        }
    }
    let max_delta = scratch
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &b)| (b - i as f64 * old_width).abs() / old_width)
        .fold(0.0, f64::max);
    Some(max_delta)
}

/// Maps one cell's coordinate through its bin's solved span and picks the
/// Eq. 17 β between a full and a half move by whichever candidate `price`
/// says degrades the objective less. Returns `None` for sub-epsilon
/// remaps.
#[inline]
fn remap_cell(
    chip: &Chip,
    axis: Axis,
    (x, y): (f64, f64),
    (old_lo, new_lo, scale): (f64, f64, f64),
    mut price: impl FnMut(f64, f64) -> f64,
) -> Option<(f64, f64)> {
    let coord = match axis {
        Axis::X => x,
        Axis::Y => y,
    };
    let mapped = scale * (coord - old_lo) + new_lo;
    if (mapped - coord).abs() < 1e-15 {
        return None;
    }
    // Eq. 17 movement retention: β is picked per cell between a full
    // move and a half move, whichever degrades the objective less;
    // spreading still progresses with β = ½.
    let candidate = |c: f64| -> (f64, f64) {
        match axis {
            Axis::X => chip.clamp(c, y),
            Axis::Y => chip.clamp(x, c),
        }
    };
    let full = candidate(mapped);
    let half = candidate(0.5 * mapped + 0.5 * coord);
    let d_full = price(full.0, full.1);
    let d_half = price(half.0, half.1);
    Some(if d_half < d_full { half } else { full })
}

/// Phase-A planner for one row: boundary solve plus frozen-priced cell
/// remaps, appended to `moves` in bin-then-cell order. Never touches the
/// mesh or the objective, so any number of rows plan concurrently.
/// Returns the row's largest relative boundary displacement.
#[allow(clippy::too_many_arguments)]
fn plan_row(
    frozen: &FrozenPricer<'_>,
    fscratch: &mut FrozenScratch,
    mesh: &DensityMesh,
    chip: &Chip,
    scratch: &mut RowScratch,
    axis: Axis,
    target_density: f64,
    strategy: ShiftStrategy,
    moves: &mut Vec<CellMove>,
) -> f64 {
    let (bin_w, bin_h) = mesh.bin_size();
    let old_width = match axis {
        Axis::X => bin_w,
        Axis::Y => bin_h,
    };
    let Some(max_delta) = solve_row_bounds(mesh, scratch, old_width, target_density, strategy)
    else {
        return 0.0;
    };
    for idx in 0..scratch.bins.len() {
        let old_lo = idx as f64 * old_width;
        let new_lo = scratch.bounds[idx];
        let scale = (scratch.bounds[idx + 1] - scratch.bounds[idx]) / old_width;
        // The mesh is frozen during phase A, so the bin's resident list
        // is read in place — no mid-row relocation can double-process a
        // cell here, unlike the serial fallback.
        for &cell in mesh.bin_cells(scratch.bins[idx]) {
            let (x, y, layer) = frozen.placement().position(cell);
            let Some((tx, ty)) =
                remap_cell(chip, axis, (x, y), (old_lo, new_lo, scale), |cx, cy| {
                    frozen.delta_move(fscratch, cell, cx, cy, layer)
                })
            else {
                continue;
            };
            moves.push(CellMove {
                cell,
                x: tx,
                y: ty,
                layer,
            });
        }
    }
    max_delta
}

/// Serial row shift (the thermal-mode fallback): live-priced remaps
/// committed cell by cell, exactly the historical loop. Returns
/// `(cells moved, max relative boundary displacement)`.
#[allow(clippy::too_many_arguments)]
fn shift_row(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    scratch: &mut RowScratch,
    axis: Axis,
    target_density: f64,
    strategy: ShiftStrategy,
) -> (usize, f64) {
    let (bin_w, bin_h) = mesh.bin_size();
    let old_width = match axis {
        Axis::X => bin_w,
        Axis::Y => bin_h,
    };
    let Some(max_delta) = solve_row_bounds(mesh, scratch, old_width, target_density, strategy)
    else {
        return (0, 0.0);
    };

    // Snapshot bin contents (flattened into the reused buffers) before any
    // relocation so a cell crossing into a later bin of the same row is
    // not processed twice.
    scratch.cells.clear();
    scratch.offsets.clear();
    scratch.offsets.push(0);
    for &b in &scratch.bins {
        scratch.cells.extend_from_slice(mesh.bin_cells(b));
        scratch.offsets.push(scratch.cells.len());
    }

    let mut moved = 0;
    for idx in 0..scratch.bins.len() {
        let old_lo = idx as f64 * old_width;
        let new_lo = scratch.bounds[idx];
        let scale = (scratch.bounds[idx + 1] - scratch.bounds[idx]) / old_width;
        for ci in scratch.offsets[idx]..scratch.offsets[idx + 1] {
            let cell = scratch.cells[ci];
            let (x, y, layer) = objective.placement().position(cell);
            let Some((tx, ty)) =
                remap_cell(chip, axis, (x, y), (old_lo, new_lo, scale), |cx, cy| {
                    objective.delta_move(cell, cx, cy, layer)
                })
            else {
                continue;
            };
            objective.apply_move(cell, tx, ty, layer);
            mesh.relocate(netlist, cell, tx, ty, layer);
            moved += 1;
        }
    }
    (moved, max_delta)
}

/// Runs shifting passes until the mesh's maximum density drops below
/// `target`, the passes converge (see
/// [`shift_until_spread_observed`]), or `max_iterations` is exhausted.
/// Returns the number of iterations executed.
pub fn shift_until_spread(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target: f64,
    max_iterations: usize,
    strategy: ShiftStrategy,
) -> usize {
    let (iterations, _) = shift_until_spread_observed(
        objective,
        mesh,
        netlist,
        chip,
        target,
        max_iterations,
        strategy,
        &mut |_| ControlFlow::Continue(()),
    );
    iterations
}

/// [`shift_until_spread`] with a per-pass probe: after every pass the
/// probe receives a [`ShiftPassReport`] and may return
/// [`ControlFlow::Break`] to stop at that boundary.
///
/// Termination is convergence-adaptive rather than a fixed pass count.
/// The loop stops when:
///
/// - the mesh is already at or under `target` (goal reached),
/// - a pass moves nothing (fixed point, possibly above target),
/// - a pass is noise-scale — it moved at most
///   ~`CONVERGED_MOVED_FRACTION` of the movable cells *and* displaced
///   no boundary by more than `CONVERGED_BOUNDARY_DELTA` of a bin
///   width, or
/// - the spread **stalls**: `STALL_PATIENCE` consecutive passes fail
///   to lower the best peak density seen so far by at least
///   `STALL_REL_IMPROVEMENT` (relative). Measured trajectories show
///   this is how real spreads end — peak density plateaus while passes
///   keep shuffling ~2 remaps per cell across near-constant boundaries,
///   so neither of the first two criteria ever fires (DESIGN.md §17).
///
/// `max_iterations` is kept as a hard cap. Returns `(iterations
/// executed, interrupted by the probe)`.
#[allow(clippy::too_many_arguments)]
pub fn shift_until_spread_observed(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target: f64,
    max_iterations: usize,
    strategy: ShiftStrategy,
    probe: &mut dyn FnMut(ShiftPassReport) -> ControlFlow<()>,
) -> (usize, bool) {
    let movable = netlist
        .iter_cells()
        .filter(|&(cell, _)| netlist.cell(cell).is_movable())
        .count()
        .max(1);
    // Ceil so tiny designs (where one cell exceeds the fraction) keep
    // the historical moved == 0 stop as their only count criterion.
    let moved_floor = (movable as f64 * CONVERGED_MOVED_FRACTION).ceil();
    let mut best_density = f64::INFINITY;
    let mut stalled_passes = 0usize;
    for iteration in 0..max_iterations {
        if mesh.max_density() <= target {
            return (iteration, false);
        }
        let t = std::time::Instant::now();
        let stats = shift_pass_stats(objective, mesh, netlist, chip, target, strategy);
        let density = mesh.max_density();
        let report = ShiftPassReport {
            pass: iteration,
            moved: stats.moved,
            max_boundary_delta: stats.max_boundary_delta,
            max_density: density,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        };
        if probe(report).is_break() {
            return (iteration + 1, true);
        }
        if stats.moved == 0 {
            return (iteration + 1, false); // fixed point (possibly above target)
        }
        if (stats.moved as f64) <= moved_floor
            && stats.max_boundary_delta <= CONVERGED_BOUNDARY_DELTA
        {
            return (iteration + 1, false); // converged: residual motion is noise-scale
        }
        if density < best_density * (1.0 - STALL_REL_IMPROVEMENT) {
            best_density = density;
            stalled_passes = 0;
        } else {
            best_density = best_density.min(density);
            stalled_passes += 1;
            if stalled_passes >= STALL_PATIENCE {
                return (iteration + 1, false); // stalled: peak density has plateaued
            }
        }
    }
    (max_iterations, false)
}

/// Benchmark-only entry points (`crates/bench/benches/kernels.rs`); not
/// a public API.
#[doc(hidden)]
pub mod bench_hooks {
    /// The Eq. 16 whole-row boundary solve on one row of densities.
    pub fn row_scale_factors(densities: &[f64], target_density: f64) -> Option<Vec<f64>> {
        super::row_scale_factors(densities, target_density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveModel;
    use crate::{Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn scale_factors_conserve_row_width() {
        let densities = vec![0.2, 3.0, 0.5, 1.5, 0.0];
        let f = row_scale_factors(&densities, 1.05).unwrap();
        let total: f64 = f.iter().sum();
        assert!((total - densities.len() as f64).abs() < 1e-9, "Σ = {total}");
        // Congested bins grow, sparse shrink.
        assert!(f[1] > 1.0 && f[3] > 1.0);
        assert!(f[0] < 1.0 && f[2] < 1.0 && f[4] < 1.0);
        // All positive → boundaries stay ordered (no FastPlace cross-over).
        assert!(f.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn legal_rows_are_left_alone() {
        assert!(row_scale_factors(&[0.5, 0.9, 1.0], 1.05).is_none());
        // Congested but nowhere to shrink: also skipped.
        assert!(row_scale_factors(&[2.0, 1.5, 1.2], 1.05).is_none());
    }

    #[test]
    fn extreme_emptiness_keeps_positive_widths() {
        let densities = vec![0.0, 0.0, 0.0, 50.0];
        let f = row_scale_factors(&densities, 1.05).unwrap();
        assert!(f.iter().all(|&x| x > 0.05), "{f:?}");
        let total: f64 = f.iter().sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_pair_bounds_move_toward_sparse_bins() {
        let bounds = adjacent_pair_bounds(&[3.0, 0.5, 0.5], 1.0).unwrap();
        // Boundary 1 between the congested bin 0 and sparse bin 1 moves
        // right (bin 0 expands); boundary 2 between two equal bins stays.
        assert!(bounds[1] > 1.0);
        assert!((bounds[2] - 2.0).abs() < 1e-12);
        assert_eq!(bounds[0], 0.0);
        assert_eq!(*bounds.last().unwrap(), 3.0);
    }

    #[test]
    fn adjacent_pair_bounds_can_cross_and_get_clamped() {
        // A sparse bin squeezed between two very dense bins: both of its
        // boundaries move inward past each other — the FastPlace defect.
        let bounds = adjacent_pair_bounds(&[50.0, 0.01, 50.0], 0.1).unwrap();
        assert!(
            bounds[2] >= bounds[1],
            "clamping must keep bounds ordered: {bounds:?}"
        );
        assert!(
            bounds[2] - bounds[1] < 0.05,
            "the squeezed bin should be nearly collapsed: {bounds:?}"
        );
    }

    #[test]
    fn adjacent_pair_no_change_returns_none() {
        assert!(adjacent_pair_bounds(&[1.0, 1.0, 1.0], 1.0).is_none());
        assert!(adjacent_pair_bounds(&[5.0], 1.0).is_none());
    }

    #[test]
    fn both_strategies_spread_but_whole_row_converges() {
        use crate::ShiftStrategy;
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let spread_with = |strategy: ShiftStrategy| -> (f64, usize) {
            let mut prng = SmallRng::seed_from_u64(3);
            let mut placement = Placement::centered(netlist.num_cells(), &chip);
            for i in 0..netlist.num_cells() {
                placement.set(
                    tvp_netlist::CellId::new(i),
                    chip.width * prng.random_range(0.4..0.6),
                    chip.depth * prng.random_range(0.4..0.6),
                    0,
                );
            }
            let mut objective = IncrementalObjective::new(&netlist, &model, placement);
            let mut mesh = DensityMesh::coarse(&chip);
            mesh.rebuild(&netlist, objective.placement());
            let iters = shift_until_spread(
                &mut objective,
                &mut mesh,
                &netlist,
                &chip,
                1.10,
                60,
                strategy,
            );
            (mesh.max_density(), iters)
        };
        let (whole_density, _) = spread_with(ShiftStrategy::WholeRow);
        let (pair_density, _) = spread_with(ShiftStrategy::AdjacentPair);
        // Both reduce congestion from the initial pile...
        assert!(whole_density < 3.0, "whole-row stalled at {whole_density}");
        assert!(pair_density < 20.0, "adjacent-pair did nothing");
        // ...and the paper's whole-row solve spreads at least as well.
        assert!(
            whole_density <= pair_density * 1.5,
            "whole-row {whole_density} should not lose badly to {pair_density}"
        );
    }

    #[test]
    fn z_column_rebalancing_drains_overfull_layers() {
        use crate::ShiftStrategy;
        let netlist = generate(&SynthConfig::named("z", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Spread laterally but pile everything on layer 0.
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(7);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                prng.random_range(0.0..chip.width),
                prng.random_range(0.0..chip.depth),
                0,
            );
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let layer0_before = mesh.layer_area(0);
        shift_until_spread(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            40,
            ShiftStrategy::WholeRow,
        );
        let layer0_after = mesh.layer_area(0);
        assert!(
            layer0_after < layer0_before * 0.75,
            "z shifting must drain the piled layer: {layer0_before:.3e} → {layer0_after:.3e}"
        );
        // Caches stay consistent through the mixed x/y/z moves.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn shifting_spreads_a_centered_pile() {
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Start from a tight pile around the middle (distinct coordinates:
        // shifting maps positions linearly, so exact coincidence can never
        // separate — the coarse stage jitters before shifting for the same
        // reason), split across the two layers.
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(99);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            let c = tvp_netlist::CellId::new(i);
            let x = chip.width * prng.random_range(0.45..0.55);
            let y = chip.depth * prng.random_range(0.45..0.55);
            placement.set(c, x, y, (i % 2) as u16);
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let before = mesh.max_density();
        let iterations = shift_until_spread(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            100,
            ShiftStrategy::WholeRow,
        );
        let after = mesh.max_density();
        assert!(iterations > 0);
        assert!(
            after < before / 4.0,
            "density must drop substantially: {before} → {after}"
        );
        assert!(objective.placement().find_out_of_bounds(&chip).is_none());
        // Incremental objective must still be consistent.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn shifting_is_idempotent_once_spread() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Uniformly pre-spread placement.
        let n = netlist.num_cells();
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut placement = Placement::centered(n, &chip);
        for i in 0..n {
            let gx = (i % cols) as f64 / cols as f64 * chip.width * 0.98 + 0.01 * chip.width;
            let gy = (i / cols) as f64 / cols as f64 * chip.depth * 0.98 + 0.01 * chip.depth;
            placement.set(tvp_netlist::CellId::new(i), gx, gy, 0);
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        if mesh.max_density() <= 1.10 {
            let stats = shift_pass_stats(
                &mut objective,
                &mut mesh,
                &netlist,
                &chip,
                1.10,
                ShiftStrategy::WholeRow,
            );
            assert_eq!(stats.moved, 0, "a spread placement must not be disturbed");
            assert_eq!(stats.max_boundary_delta, 0.0);
        }
    }

    /// The row-parallel plan/commit engine must produce bitwise-identical
    /// placements at every thread count: chunk boundaries depend only on
    /// the row count, and commits replay in row order.
    #[test]
    fn shift_passes_are_identical_across_thread_counts() {
        let netlist = generate(&SynthConfig::named("p", 400, 2.0e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(11);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                chip.width * prng.random_range(0.3..0.7),
                chip.depth * prng.random_range(0.3..0.7),
                (i % 2) as u16,
            );
        }
        let run = |threads: usize| -> (Placement, usize) {
            tvp_parallel::with_threads(threads, || {
                let mut objective = IncrementalObjective::new(&netlist, &model, placement.clone());
                let mut mesh = DensityMesh::coarse(&chip);
                mesh.rebuild(&netlist, objective.placement());
                let iters = shift_until_spread(
                    &mut objective,
                    &mut mesh,
                    &netlist,
                    &chip,
                    1.10,
                    50,
                    ShiftStrategy::WholeRow,
                );
                (objective.placement().clone(), iters)
            })
        };
        let (serial, serial_iters) = run(1);
        for threads in [2usize, 4] {
            let (parallel_placement, iters) = run(threads);
            assert_eq!(serial_iters, iters, "pass count diverged at {threads}");
            for i in 0..netlist.num_cells() {
                let cell = tvp_netlist::CellId::new(i);
                assert_eq!(
                    serial.position(cell),
                    parallel_placement.position(cell),
                    "cell {i} diverged at threads={threads}"
                );
            }
        }
    }

    /// The convergence detector must report through the observed probe
    /// and stop before the hard cap on a design whose tail is long.
    #[test]
    fn observed_spread_reports_passes_and_converges_under_cap() {
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(5);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                chip.width * prng.random_range(0.45..0.55),
                chip.depth * prng.random_range(0.45..0.55),
                (i % 2) as u16,
            );
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let mut reports = Vec::new();
        let cap = 500;
        let (iterations, interrupted) = shift_until_spread_observed(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            cap,
            ShiftStrategy::WholeRow,
            &mut |r| {
                reports.push(r);
                ControlFlow::Continue(())
            },
        );
        assert!(!interrupted);
        assert!(iterations < cap, "convergence must beat the {cap} cap");
        assert_eq!(reports.len(), iterations);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.pass, i);
            assert!(r.wall_ms >= 0.0);
        }
        // The spread ends for one of its documented reasons: the
        // density target was met, a pass moved nothing, the noise-scale
        // thresholds were crossed, or the peak density stalled for
        // STALL_PATIENCE consecutive passes.
        let last = reports.last().expect("at least one pass");
        // Replay the stall detector over the reported densities.
        let mut best = f64::INFINITY;
        let mut run = 0usize;
        let mut stalled = false;
        for r in &reports {
            if r.max_density < best * (1.0 - STALL_REL_IMPROVEMENT) {
                best = r.max_density;
                run = 0;
            } else {
                best = best.min(r.max_density);
                run += 1;
                if run >= STALL_PATIENCE {
                    stalled = true;
                }
            }
        }
        assert!(
            mesh.max_density() <= 1.10
                || last.moved == 0
                || last.max_boundary_delta <= CONVERGED_BOUNDARY_DELTA
                || stalled,
            "spread stopped without a reason: {last:?} (max density {})",
            mesh.max_density()
        );
        // Every report carries the post-pass peak density for the
        // stall detector and the observer event.
        for r in &reports {
            assert!(r.max_density.is_finite() && r.max_density > 0.0);
        }
    }

    /// A probe break stops the spread at the pass boundary.
    #[test]
    fn observed_spread_honors_probe_break() {
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = Placement::centered(netlist.num_cells(), &chip);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let (iterations, interrupted) = shift_until_spread_observed(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            50,
            ShiftStrategy::WholeRow,
            &mut |_| ControlFlow::Break(()),
        );
        assert!(interrupted);
        assert_eq!(iterations, 1, "break stops after the first pass");
    }
}
