//! Cell shifting (paper §4.1).
//!
//! For each row of bins (in x, then in y), new bin boundaries are computed
//! from the whole row's densities at once — over-congested bins expand,
//! sparse bins contract *only as much as the congested bins in the same
//! row need* — and cells are remapped linearly into their bin's new span
//! (Eq. 16–17). Solving the whole row at once is the paper's fix for
//! FastPlace's boundary cross-over problem; conserving total row width by
//! construction means boundaries stay ordered.

use super::mesh::DensityMesh;
use crate::objective::IncrementalObjective;
use crate::{Chip, ShiftStrategy};
use tvp_netlist::Netlist;

/// Reusable per-row buffers for one shifting pass: the row's bin ids,
/// their densities, the solved boundaries, and a flattened snapshot of
/// the row's cells (`offsets[i]..offsets[i+1]` indexes bin `i`'s slice
/// of `cells`). Hoisted out of the row loop so a 50-iteration spread at
/// 100k cells reuses five buffers instead of churning millions of
/// short-lived `Vec`s; iteration order is identical to the per-row
/// allocation it replaced, so results are bitwise unchanged.
#[derive(Default)]
struct RowScratch {
    bins: Vec<usize>,
    densities: Vec<f64>,
    bounds: Vec<f64>,
    cells: Vec<tvp_netlist::CellId>,
    offsets: Vec<usize>,
}

/// One full cell-shifting pass over every x row and every y row.
/// Returns the number of cells moved.
pub fn shift_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target_density: f64,
    strategy: ShiftStrategy,
) -> usize {
    let (nx, ny, nz) = mesh.dims();
    let mut moved = 0;
    let mut scratch = RowScratch::default();
    // Rows along x: fixed (j, k).
    for k in 0..nz {
        for j in 0..ny {
            scratch.bins.clear();
            scratch.bins.extend((0..nx).map(|i| mesh.index(i, j, k)));
            moved += shift_row(
                objective,
                mesh,
                netlist,
                chip,
                &mut scratch,
                Axis::X,
                target_density,
                strategy,
            );
        }
    }
    // Rows along y: fixed (i, k).
    for k in 0..nz {
        for i in 0..nx {
            scratch.bins.clear();
            scratch.bins.extend((0..ny).map(|j| mesh.index(i, j, k)));
            moved += shift_row(
                objective,
                mesh,
                netlist,
                chip,
                &mut scratch,
                Axis::Y,
                target_density,
                strategy,
            );
        }
    }
    // Columns along z: fixed (i, j). Layers are discrete, so instead of
    // boundary scaling the congested bins hand their objective-cheapest
    // cells to under-full bins of the same column (§4.1's "each
    // direction", adapted to quantized z). Bin-level congestion is x/y
    // shifting's job; the z pass only acts when a *layer as a whole*
    // exceeds capacity — the case lateral spreading cannot fix and
    // detailed legalization would otherwise resolve arbitrarily.
    if nz > 1 {
        let per_layer_bins = (nx * ny) as f64;
        let layer_capacity = per_layer_bins * mesh.capacity() * target_density;
        let overfull: Vec<bool> = (0..nz)
            .map(|k| {
                let fill: f64 = (0..ny)
                    .flat_map(|j| (0..nx).map(move |i| (i, j)))
                    .map(|(i, j)| mesh.bin_area(mesh.index(i, j, k)))
                    .sum();
                fill > layer_capacity
            })
            .collect();
        if overfull.iter().any(|&o| o) {
            for j in 0..ny {
                for i in 0..nx {
                    moved +=
                        shift_column_z(objective, mesh, netlist, i, j, target_density, &overfull);
                }
            }
        }
    }
    moved
}

/// Rebalances one (i, j) column across layers: while some layer's bin is
/// above `target_density` and another is below 1.0, move the cell whose
/// objective delta is smallest. Returns the number of cells moved.
fn shift_column_z(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    i: usize,
    j: usize,
    target_density: f64,
    layer_overfull: &[bool],
) -> usize {
    let (_, _, nz) = mesh.dims();
    let mut moved = 0;
    // Bounded so one pathological column cannot stall a pass.
    for _ in 0..8 {
        let bins: Vec<usize> = (0..nz).map(|k| mesh.index(i, j, k)).collect();
        let Some(src) = bins
            .iter()
            .enumerate()
            .filter(|&(k, &b)| layer_overfull[k] && mesh.density(b) > target_density)
            .max_by(|&(_, &a), &(_, &b)| {
                mesh.density(a)
                    .partial_cmp(&mesh.density(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(_, &b)| b)
        else {
            break;
        };
        let Some(dst) = bins
            .iter()
            .copied()
            .filter(|&b| b != src && mesh.density(b) < 1.0)
            .min_by(|&a, &b| {
                mesh.density(a)
                    .partial_cmp(&mesh.density(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        else {
            break;
        };
        let (_, _, dst_layer) = mesh.coords(dst);
        // Cheapest cell to re-layer (x/y unchanged → only via and thermal
        // terms move).
        let candidate = mesh
            .bin_cells(src)
            .iter()
            .copied()
            .map(|cell| {
                let (x, y, _) = objective.placement().position(cell);
                (objective.delta_move(cell, x, y, dst_layer as u16), cell)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let Some((_, cell)) = candidate else { break };
        let (x, y, _) = objective.placement().position(cell);
        objective.apply_move(cell, x, y, dst_layer as u16);
        mesh.relocate(netlist, cell, x, y, dst_layer as u16);
        moved += 1;
    }
    moved
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

/// Computes the Eq. 16 width-scaling factors for one row.
///
/// Over-congested bins (`d > 1`) grow by `1 + a_upper·(1 − 1/d)`; sparse
/// bins shrink by `1 + a_lower·(d − 1)` with `a_lower` chosen so the total
/// row width is conserved (which keeps boundaries ordered). Returns `None`
/// if the row needs no shifting.
fn row_scale_factors(densities: &[f64], target_density: f64) -> Option<Vec<f64>> {
    let max_d = densities.iter().copied().fold(0.0, f64::max);
    if max_d <= target_density {
        return None; // §4.1: leave nearly legal rows alone
    }
    // Unit widths: bins in a row share one width, so work in ratios.
    let mut grow_sum = 0.0; // Σ (1 − 1/d) over congested bins
    let mut shrink_sum = 0.0; // Σ (1 − d) over sparse bins
    for &d in densities {
        if d > 1.0 {
            grow_sum += 1.0 - 1.0 / d;
        } else {
            shrink_sum += 1.0 - d;
        }
    }
    if grow_sum <= 0.0 || shrink_sum <= 0.0 {
        return None; // nothing to expand into (or nothing congested)
    }
    let mut a_upper = 1.0;
    let mut a_lower = a_upper * grow_sum / shrink_sum;
    // A bin must keep positive width: 1 + a_lower·(d − 1) > 0 for the
    // emptiest bin (worst case d = 0 → a_lower < 1).
    const MAX_LOWER: f64 = 0.9;
    if a_lower > MAX_LOWER {
        a_upper *= MAX_LOWER / a_lower;
        a_lower = MAX_LOWER;
    }
    Some(
        densities
            .iter()
            .map(|&d| {
                if d > 1.0 {
                    1.0 + a_upper * (1.0 - 1.0 / d)
                } else {
                    1.0 - a_lower * (1.0 - d)
                }
            })
            .collect(),
    )
}

/// FastPlace-style boundary update (the §4.1 ablation baseline): each
/// interior boundary moves based only on its two adjacent bins' densities.
/// Boundaries may cross over (the defect the paper's whole-row solve
/// fixes); inverted spans are clamped to a sliver so the mapping stays
/// defined, which is exactly where placement quality degrades.
fn adjacent_pair_bounds(densities: &[f64], old_width: f64) -> Option<Vec<f64>> {
    let n = densities.len();
    if n < 2 {
        return None;
    }
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0.0);
    for i in 1..n {
        let d_left = densities[i - 1];
        let d_right = densities[i];
        let shift = 0.5 * old_width * (d_left - d_right) / (d_left + d_right + 1e-12);
        bounds.push(i as f64 * old_width + shift);
    }
    bounds.push(n as f64 * old_width);
    // Clamp inversions to preserve a defined (if degenerate) mapping.
    let mut any_change = false;
    for i in 1..bounds.len() {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
        if (bounds[i] - i as f64 * old_width).abs() > 1e-15 {
            any_change = true;
        }
    }
    any_change.then_some(bounds)
}

#[allow(clippy::too_many_arguments)]
fn shift_row(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    scratch: &mut RowScratch,
    axis: Axis,
    target_density: f64,
    strategy: ShiftStrategy,
) -> usize {
    scratch.densities.clear();
    for &b in &scratch.bins {
        scratch.densities.push(mesh.density(b));
    }
    let (bin_w, bin_h) = mesh.bin_size();
    let old_width = match axis {
        Axis::X => bin_w,
        Axis::Y => bin_h,
    };
    match strategy {
        ShiftStrategy::WholeRow => {
            let Some(factors) = row_scale_factors(&scratch.densities, target_density) else {
                return 0;
            };
            // New boundaries: cumulative sum of scaled widths, anchored at 0.
            scratch.bounds.clear();
            let mut acc = 0.0;
            scratch.bounds.push(acc);
            for &f in &factors {
                acc += f * old_width;
                scratch.bounds.push(acc);
            }
        }
        ShiftStrategy::AdjacentPair => {
            let Some(bounds) = adjacent_pair_bounds(&scratch.densities, old_width) else {
                return 0;
            };
            scratch.bounds = bounds;
        }
    }

    // Snapshot bin contents (flattened into the reused buffers) before any
    // relocation so a cell crossing into a later bin of the same row is
    // not processed twice.
    scratch.cells.clear();
    scratch.offsets.clear();
    scratch.offsets.push(0);
    for &b in &scratch.bins {
        scratch.cells.extend_from_slice(mesh.bin_cells(b));
        scratch.offsets.push(scratch.cells.len());
    }

    let mut moved = 0;
    for idx in 0..scratch.bins.len() {
        let old_lo = idx as f64 * old_width;
        let new_lo = scratch.bounds[idx];
        let scale = (scratch.bounds[idx + 1] - scratch.bounds[idx]) / old_width;
        for ci in scratch.offsets[idx]..scratch.offsets[idx + 1] {
            let cell = scratch.cells[ci];
            let (x, y, layer) = objective.placement().position(cell);
            let coord = match axis {
                Axis::X => x,
                Axis::Y => y,
            };
            let mapped = scale * (coord - old_lo) + new_lo;
            if (mapped - coord).abs() < 1e-15 {
                continue;
            }
            // Eq. 17 movement retention: β is picked per cell between a
            // full move and a half move, whichever degrades the objective
            // less; spreading still progresses with β = ½.
            let candidate = |c: f64| -> (f64, f64) {
                let (nx_, ny_) = match axis {
                    Axis::X => chip.clamp(c, y),
                    Axis::Y => chip.clamp(x, c),
                };
                (nx_, ny_)
            };
            let full = candidate(mapped);
            let half = candidate(0.5 * mapped + 0.5 * coord);
            let d_full = objective.delta_move(cell, full.0, full.1, layer);
            let d_half = objective.delta_move(cell, half.0, half.1, layer);
            let (tx, ty) = if d_half < d_full { half } else { full };
            objective.apply_move(cell, tx, ty, layer);
            mesh.relocate(netlist, cell, tx, ty, layer);
            moved += 1;
        }
    }
    moved
}

/// Runs shifting passes until the mesh's maximum density drops below
/// `target` or `max_iterations` is exhausted. Returns the number of
/// iterations executed.
pub fn shift_until_spread(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    target: f64,
    max_iterations: usize,
    strategy: ShiftStrategy,
) -> usize {
    for iteration in 0..max_iterations {
        if mesh.max_density() <= target {
            return iteration;
        }
        let moved = shift_pass(objective, mesh, netlist, chip, target, strategy);
        if moved == 0 {
            return iteration + 1; // converged (possibly above target)
        }
    }
    max_iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveModel;
    use crate::{Placement, PlacerConfig};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn scale_factors_conserve_row_width() {
        let densities = vec![0.2, 3.0, 0.5, 1.5, 0.0];
        let f = row_scale_factors(&densities, 1.05).unwrap();
        let total: f64 = f.iter().sum();
        assert!((total - densities.len() as f64).abs() < 1e-9, "Σ = {total}");
        // Congested bins grow, sparse shrink.
        assert!(f[1] > 1.0 && f[3] > 1.0);
        assert!(f[0] < 1.0 && f[2] < 1.0 && f[4] < 1.0);
        // All positive → boundaries stay ordered (no FastPlace cross-over).
        assert!(f.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn legal_rows_are_left_alone() {
        assert!(row_scale_factors(&[0.5, 0.9, 1.0], 1.05).is_none());
        // Congested but nowhere to shrink: also skipped.
        assert!(row_scale_factors(&[2.0, 1.5, 1.2], 1.05).is_none());
    }

    #[test]
    fn extreme_emptiness_keeps_positive_widths() {
        let densities = vec![0.0, 0.0, 0.0, 50.0];
        let f = row_scale_factors(&densities, 1.05).unwrap();
        assert!(f.iter().all(|&x| x > 0.05), "{f:?}");
        let total: f64 = f.iter().sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_pair_bounds_move_toward_sparse_bins() {
        let bounds = adjacent_pair_bounds(&[3.0, 0.5, 0.5], 1.0).unwrap();
        // Boundary 1 between the congested bin 0 and sparse bin 1 moves
        // right (bin 0 expands); boundary 2 between two equal bins stays.
        assert!(bounds[1] > 1.0);
        assert!((bounds[2] - 2.0).abs() < 1e-12);
        assert_eq!(bounds[0], 0.0);
        assert_eq!(*bounds.last().unwrap(), 3.0);
    }

    #[test]
    fn adjacent_pair_bounds_can_cross_and_get_clamped() {
        // A sparse bin squeezed between two very dense bins: both of its
        // boundaries move inward past each other — the FastPlace defect.
        let bounds = adjacent_pair_bounds(&[50.0, 0.01, 50.0], 0.1).unwrap();
        assert!(
            bounds[2] >= bounds[1],
            "clamping must keep bounds ordered: {bounds:?}"
        );
        assert!(
            bounds[2] - bounds[1] < 0.05,
            "the squeezed bin should be nearly collapsed: {bounds:?}"
        );
    }

    #[test]
    fn adjacent_pair_no_change_returns_none() {
        assert!(adjacent_pair_bounds(&[1.0, 1.0, 1.0], 1.0).is_none());
        assert!(adjacent_pair_bounds(&[5.0], 1.0).is_none());
    }

    #[test]
    fn both_strategies_spread_but_whole_row_converges() {
        use crate::ShiftStrategy;
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let spread_with = |strategy: ShiftStrategy| -> (f64, usize) {
            let mut prng = SmallRng::seed_from_u64(3);
            let mut placement = Placement::centered(netlist.num_cells(), &chip);
            for i in 0..netlist.num_cells() {
                placement.set(
                    tvp_netlist::CellId::new(i),
                    chip.width * prng.random_range(0.4..0.6),
                    chip.depth * prng.random_range(0.4..0.6),
                    0,
                );
            }
            let mut objective = IncrementalObjective::new(&netlist, &model, placement);
            let mut mesh = DensityMesh::coarse(&chip);
            mesh.rebuild(&netlist, objective.placement());
            let iters = shift_until_spread(
                &mut objective,
                &mut mesh,
                &netlist,
                &chip,
                1.10,
                60,
                strategy,
            );
            (mesh.max_density(), iters)
        };
        let (whole_density, _) = spread_with(ShiftStrategy::WholeRow);
        let (pair_density, _) = spread_with(ShiftStrategy::AdjacentPair);
        // Both reduce congestion from the initial pile...
        assert!(whole_density < 3.0, "whole-row stalled at {whole_density}");
        assert!(pair_density < 20.0, "adjacent-pair did nothing");
        // ...and the paper's whole-row solve spreads at least as well.
        assert!(
            whole_density <= pair_density * 1.5,
            "whole-row {whole_density} should not lose badly to {pair_density}"
        );
    }

    #[test]
    fn z_column_rebalancing_drains_overfull_layers() {
        use crate::ShiftStrategy;
        let netlist = generate(&SynthConfig::named("z", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Spread laterally but pile everything on layer 0.
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(7);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                prng.random_range(0.0..chip.width),
                prng.random_range(0.0..chip.depth),
                0,
            );
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let layer0_before: f64 = (0..mesh.dims().0 * mesh.dims().1)
            .map(|b| mesh.bin_area(b))
            .sum();
        shift_until_spread(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            40,
            ShiftStrategy::WholeRow,
        );
        let (nx, ny, _) = mesh.dims();
        let layer0_after: f64 = (0..nx * ny).map(|b| mesh.bin_area(b)).sum();
        assert!(
            layer0_after < layer0_before * 0.75,
            "z shifting must drain the piled layer: {layer0_before:.3e} → {layer0_after:.3e}"
        );
        // Caches stay consistent through the mixed x/y/z moves.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn shifting_spreads_a_centered_pile() {
        let netlist = generate(&SynthConfig::named("t", 300, 1.5e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Start from a tight pile around the middle (distinct coordinates:
        // shifting maps positions linearly, so exact coincidence can never
        // separate — the coarse stage jitters before shifting for the same
        // reason), split across the two layers.
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut prng = SmallRng::seed_from_u64(99);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            let c = tvp_netlist::CellId::new(i);
            let x = chip.width * prng.random_range(0.45..0.55);
            let y = chip.depth * prng.random_range(0.45..0.55);
            placement.set(c, x, y, (i % 2) as u16);
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let before = mesh.max_density();
        let iterations = shift_until_spread(
            &mut objective,
            &mut mesh,
            &netlist,
            &chip,
            1.10,
            100,
            ShiftStrategy::WholeRow,
        );
        let after = mesh.max_density();
        assert!(iterations > 0);
        assert!(
            after < before / 4.0,
            "density must drop substantially: {before} → {after}"
        );
        assert!(objective.placement().find_out_of_bounds(&chip).is_none());
        // Incremental objective must still be consistent.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn shifting_is_idempotent_once_spread() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        // Uniformly pre-spread placement.
        let n = netlist.num_cells();
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut placement = Placement::centered(n, &chip);
        for i in 0..n {
            let gx = (i % cols) as f64 / cols as f64 * chip.width * 0.98 + 0.01 * chip.width;
            let gy = (i / cols) as f64 / cols as f64 * chip.depth * 0.98 + 0.01 * chip.depth;
            placement.set(tvp_netlist::CellId::new(i), gx, gy, 0);
        }
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        if mesh.max_density() <= 1.10 {
            let moved = shift_pass(
                &mut objective,
                &mut mesh,
                &netlist,
                &chip,
                1.10,
                ShiftStrategy::WholeRow,
            );
            assert_eq!(moved, 0, "a spread placement must not be disturbed");
        }
    }
}
