//! Coarse legalization (paper §4): cell shifting for spreading plus
//! objective-driven moves and swaps, interleaved per §6.

pub mod mesh;
pub mod moves;
pub mod shift;

pub use mesh::DensityMesh;

use crate::objective::IncrementalObjective;
use crate::observer::PassEvent;
use crate::thermal_pricer::ThermalMovePricer;
use crate::{Chip, PlacerConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::ControlFlow;
use tvp_netlist::Netlist;

/// Runs the full coarse-legalization stage (§6 ordering): global
/// moves/swaps, local moves/swaps, then cell shifting until the maximum
/// bin density falls below the configured target.
///
/// Returns the mesh in its final state so detailed legalization can reuse
/// the density information.
pub fn coarse_legalize(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    config: &PlacerConfig,
) -> DensityMesh {
    let (mesh, _interrupted) =
        coarse_legalize_observed(objective, netlist, chip, config, &mut |_| {
            ControlFlow::Continue(())
        });
    mesh
}

/// [`coarse_legalize`] with a pass-boundary probe: after every moves pass
/// and every shifting phase the probe receives a [`PassEvent`] and may
/// return [`ControlFlow::Break`] to stop the stage at that boundary.
///
/// Returns the mesh plus whether the stage was interrupted. The probe
/// never changes the moves the stage makes — a probe that always continues
/// produces bit-identical results to [`coarse_legalize`] (it *is*
/// [`coarse_legalize`]).
pub fn coarse_legalize_observed(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    config: &PlacerConfig,
    probe: &mut dyn FnMut(PassEvent) -> ControlFlow<()>,
) -> (DensityMesh, bool) {
    coarse_legalize_priced(objective, netlist, chip, config, None, probe)
}

/// [`coarse_legalize_observed`] with optional per-move thermal pricing:
/// an armed pricer (compact tier + `alpha_temp > 0`) adds the
/// frozen-field thermal term to every move/swap candidate's delta
/// (DESIGN.md §14). `None` is bit-identical to the unpriced stage.
pub(crate) fn coarse_legalize_priced(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    config: &PlacerConfig,
    mut pricer: Option<&mut ThermalMovePricer>,
    probe: &mut dyn FnMut(PassEvent) -> ControlFlow<()>,
) -> (DensityMesh, bool) {
    let mut mesh = DensityMesh::coarse(chip);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC0A5_E5EE);

    // Global placement leaves each leaf region's cells stacked on one
    // point. Cell shifting maps coordinates linearly, so exactly coincident
    // cells could never separate; a deterministic sub-bin jitter breaks the
    // ties (and perturbs the objective by at most a bin diagonal per cell).
    jitter(objective, netlist, chip, &mut rng);
    mesh.rebuild(netlist, objective.placement());

    for pass in 0..config.coarse_move_passes {
        let mut improved = moves::global_pass_priced(
            objective,
            &mut mesh,
            netlist,
            chip,
            config.coarse_target_region_bins,
            &mut rng,
            pricer.as_deref_mut(),
        );
        improved += moves::local_pass_priced(
            objective,
            &mut mesh,
            netlist,
            chip,
            &mut rng,
            pricer.as_deref_mut(),
        );
        if probe(PassEvent::CoarseMoves {
            pass,
            improved,
            objective: objective.total(),
        })
        .is_break()
        {
            return (mesh, true);
        }
    }

    let (iterations, interrupted) = shift::shift_until_spread_observed(
        objective,
        &mut mesh,
        netlist,
        chip,
        config.coarse_max_density,
        config.coarse_shift_iterations,
        config.shift_strategy,
        &mut |r| probe(shift_pass_event(r)),
    );
    if interrupted
        || probe(PassEvent::CoarseShift {
            iterations,
            max_density: mesh.max_density(),
            objective: objective.total(),
        })
        .is_break()
    {
        return (mesh, true);
    }

    // One final local cleanup now that densities are even.
    let improved = moves::local_pass_priced(objective, &mut mesh, netlist, chip, &mut rng, pricer);
    if probe(PassEvent::CoarseMoves {
        pass: config.coarse_move_passes,
        improved,
        objective: objective.total(),
    })
    .is_break()
    {
        return (mesh, true);
    }
    // Moves may have re-congested isolated bins; restore the density
    // guarantee detailed legalization relies on.
    let (iterations, interrupted) = shift::shift_until_spread_observed(
        objective,
        &mut mesh,
        netlist,
        chip,
        config.coarse_max_density,
        config.coarse_shift_iterations,
        config.shift_strategy,
        &mut |r| probe(shift_pass_event(r)),
    );
    if interrupted {
        return (mesh, true);
    }
    let _ = probe(PassEvent::CoarseShift {
        iterations,
        max_density: mesh.max_density(),
        objective: objective.total(),
    });
    (mesh, false)
}

/// Maps a per-pass shifting report onto the observer event stream.
fn shift_pass_event(r: shift::ShiftPassReport) -> PassEvent {
    PassEvent::ShiftPass {
        pass: r.pass,
        moved: r.moved,
        max_boundary_delta: r.max_boundary_delta,
        max_density: r.max_density,
        wall_ms: r.wall_ms,
    }
}

/// Displaces every movable cell by a small random offset (within one bin)
/// so no two cells share an exact position.
fn jitter(
    objective: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    rng: &mut SmallRng,
) {
    use rand::RngExt;
    let dx_max = chip.avg_cell_width;
    let dy_max = chip.row_pitch;
    for (cell, _) in netlist.iter_cells() {
        if !netlist.cell(cell).is_movable() {
            continue;
        }
        let (x, y, layer) = objective.placement().position(cell);
        let nx = x + rng.random_range(-dx_max..dx_max);
        let ny = y + rng.random_range(-dy_max..dy_max);
        let (nx, ny) = chip.clamp(nx, ny);
        objective.apply_move(cell, nx, ny, layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::global_place;
    use crate::objective::ObjectiveModel;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn coarse_stage_spreads_global_placement() {
        let netlist = generate(&SynthConfig::named("t", 400, 2.0e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = global_place(&netlist, &chip, &model, &config);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);

        let mut initial_mesh = DensityMesh::coarse(&chip);
        initial_mesh.rebuild(&netlist, objective.placement());
        let density_before = initial_mesh.max_density();

        let mesh = coarse_legalize(&mut objective, &netlist, &chip, &config);

        assert!(
            mesh.max_density() < density_before,
            "coarse legalization must reduce congestion: {} → {}",
            density_before,
            mesh.max_density()
        );
        assert!(
            mesh.max_density() <= config.coarse_max_density * 2.0,
            "max density {} far above target",
            mesh.max_density()
        );
        assert!(objective.placement().find_out_of_bounds(&chip).is_none());
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }
}
