//! The coarse density mesh (paper §4): bins of two average cell widths by
//! two row heights by one layer.

use crate::{Chip, Placement};
use tvp_netlist::{CellId, Netlist};

/// A 3D mesh of density bins over the chip.
#[derive(Clone, PartialEq, Debug)]
pub struct DensityMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    bin_w: f64,
    bin_h: f64,
    /// Usable cell-area capacity of one bin (row fraction of the bin
    /// footprint), square meters.
    capacity: f64,
    /// Cell area per bin.
    area: Vec<f64>,
    /// Cells per bin.
    cells: Vec<Vec<CellId>>,
    /// Bin of each cell.
    bin_of: Vec<u32>,
}

impl DensityMesh {
    /// Builds the §4 mesh for a chip: bins two average cell widths wide,
    /// two row pitches tall, one layer thick.
    pub fn coarse(chip: &Chip) -> Self {
        let bin_w = 2.0 * chip.avg_cell_width;
        let bin_h = 2.0 * chip.row_pitch;
        Self::with_bin_size(chip, bin_w, bin_h)
    }

    /// Builds a mesh with explicit bin dimensions.
    pub fn with_bin_size(chip: &Chip, bin_w: f64, bin_h: f64) -> Self {
        let nx = (chip.width / bin_w).ceil().max(1.0) as usize;
        let ny = (chip.depth / bin_h).ceil().max(1.0) as usize;
        let nz = chip.num_layers;
        // Recompute exact bin sizes so the mesh tiles the chip.
        let bin_w = chip.width / nx as f64;
        let bin_h = chip.depth / ny as f64;
        let capacity = bin_w * bin_h * (chip.row_height / chip.row_pitch);
        Self {
            nx,
            ny,
            nz,
            bin_w,
            bin_h,
            capacity,
            area: vec![0.0; nx * ny * nz],
            cells: vec![Vec::new(); nx * ny * nz],
            bin_of: Vec::new(),
        }
    }

    /// Mesh dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Bin footprint `(width, height)`, meters.
    pub fn bin_size(&self) -> (f64, f64) {
        (self.bin_w, self.bin_h)
    }

    /// Usable capacity of one bin, square meters.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Flat index of bin `(i, j, k)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Bin coordinates of flat index `b`.
    #[inline]
    pub fn coords(&self, b: usize) -> (usize, usize, usize) {
        let i = b % self.nx;
        let j = (b / self.nx) % self.ny;
        let k = b / (self.nx * self.ny);
        (i, j, k)
    }

    /// Flat indices of the x row at fixed `(j, k)`. X rows are contiguous
    /// in the flat bin order, so the whole row is one range — the shift
    /// planner leans on this to form rows without per-bin arithmetic.
    #[inline]
    pub fn x_row_range(&self, j: usize, k: usize) -> std::ops::Range<usize> {
        let start = self.index(0, j, k);
        start..start + self.nx
    }

    /// Cell area currently on layer `k`, square meters.
    pub fn layer_area(&self, k: usize) -> f64 {
        let per_layer = self.nx * self.ny;
        self.area[k * per_layer..(k + 1) * per_layer].iter().sum()
    }

    /// Bin containing physical position `(x, y, layer)` (clamped).
    pub fn bin_at(&self, x: f64, y: f64, layer: u16) -> usize {
        let i = ((x / self.bin_w) as isize).clamp(0, self.nx as isize - 1) as usize;
        let j = ((y / self.bin_h) as isize).clamp(0, self.ny as isize - 1) as usize;
        let k = (layer as usize).min(self.nz - 1);
        self.index(i, j, k)
    }

    /// Center position of bin `b`: `(x, y, layer)`.
    pub fn bin_center(&self, b: usize) -> (f64, f64, u16) {
        let (i, j, k) = self.coords(b);
        (
            (i as f64 + 0.5) * self.bin_w,
            (j as f64 + 0.5) * self.bin_h,
            k as u16,
        )
    }

    /// Rebuilds all bin contents from a placement.
    pub fn rebuild(&mut self, netlist: &Netlist, placement: &Placement) {
        for a in &mut self.area {
            *a = 0.0;
        }
        for c in &mut self.cells {
            c.clear();
        }
        self.bin_of = vec![0; netlist.num_cells()];
        for (cell, x, y, layer) in placement.iter() {
            if !netlist.cell(cell).is_movable() {
                continue;
            }
            let b = self.bin_at(x, y, layer);
            self.area[b] += netlist.cell(cell).area();
            self.cells[b].push(cell);
            self.bin_of[cell.index()] = b as u32;
        }
    }

    /// Density of bin `b` (cell area over capacity).
    #[inline]
    pub fn density(&self, b: usize) -> f64 {
        self.area[b] / self.capacity
    }

    /// Cell area currently in bin `b`.
    #[inline]
    pub fn bin_area(&self, b: usize) -> f64 {
        self.area[b]
    }

    /// Cells currently in bin `b`.
    pub fn bin_cells(&self, b: usize) -> &[CellId] {
        &self.cells[b]
    }

    /// The bin a cell is registered in.
    #[inline]
    pub fn bin_of(&self, cell: CellId) -> usize {
        self.bin_of[cell.index()] as usize
    }

    /// Registers that `cell` moved to the bin containing `(x, y, layer)`.
    pub fn relocate(&mut self, netlist: &Netlist, cell: CellId, x: f64, y: f64, layer: u16) {
        let from = self.bin_of(cell);
        let to = self.bin_at(x, y, layer);
        if from == to {
            return;
        }
        let area = netlist.cell(cell).area();
        self.area[from] -= area;
        self.cells[from].retain(|&c| c != cell);
        self.area[to] += area;
        self.cells[to].push(cell);
        self.bin_of[cell.index()] = to as u32;
    }

    /// Maximum bin density in the mesh.
    pub fn max_density(&self) -> f64 {
        (0..self.area.len())
            .map(|b| self.density(b))
            .fold(0.0, f64::max)
    }

    /// Mean absolute deviation of density from the mesh average — a
    /// spreading progress metric.
    pub fn density_unevenness(&self) -> f64 {
        let n = self.area.len() as f64;
        let mean: f64 = (0..self.area.len()).map(|b| self.density(b)).sum::<f64>() / n;
        (0..self.area.len())
            .map(|b| (self.density(b) - mean).abs())
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacerConfig;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn fixture() -> (Netlist, Chip, Placement) {
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let chip = Chip::from_netlist(&netlist, &PlacerConfig::new(2)).unwrap();
        let placement = Placement::centered(netlist.num_cells(), &chip);
        (netlist, chip, placement)
    }

    #[test]
    fn mesh_tiles_the_chip() {
        let (_, chip, _) = fixture();
        let mesh = DensityMesh::coarse(&chip);
        let (nx, ny, nz) = mesh.dims();
        assert_eq!(nz, 2);
        let (bw, bh) = mesh.bin_size();
        assert!((nx as f64 * bw - chip.width).abs() < 1e-12);
        assert!((ny as f64 * bh - chip.depth).abs() < 1e-12);
    }

    #[test]
    fn centered_placement_piles_into_central_bins() {
        let (netlist, chip, placement) = fixture();
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);
        // Everything is at the chip center on layer 0: exactly one bin has
        // all the area.
        let total: f64 = (0..mesh.area.len()).map(|b| mesh.bin_area(b)).sum();
        assert!((total - netlist.total_cell_area()).abs() < 1e-15);
        let b = mesh.bin_at(chip.width / 2.0, chip.depth / 2.0, 0);
        assert!((mesh.bin_area(b) - total).abs() < 1e-15);
        assert!(mesh.max_density() > 10.0);
    }

    #[test]
    fn relocate_moves_area_between_bins() {
        let (netlist, chip, placement) = fixture();
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);
        let cell = CellId::new(0);
        let from = mesh.bin_of(cell);
        let area = netlist.cell(cell).area();
        let before = mesh.bin_area(from);
        mesh.relocate(&netlist, cell, 0.0, 0.0, 1);
        let to = mesh.bin_at(0.0, 0.0, 1);
        assert_ne!(from, to);
        assert!((mesh.bin_area(from) - (before - area)).abs() < 1e-18);
        assert!((mesh.bin_area(to) - area).abs() < 1e-18);
        assert_eq!(mesh.bin_of(cell), to);
        assert!(mesh.bin_cells(to).contains(&cell));
        assert!(!mesh.bin_cells(from).contains(&cell));
    }

    #[test]
    fn relocate_within_same_bin_is_noop() {
        let (netlist, chip, placement) = fixture();
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);
        let cell = CellId::new(3);
        let before = mesh.clone();
        let (x, y, l) = placement.position(cell);
        mesh.relocate(&netlist, cell, x + 1e-9, y, l);
        assert_eq!(mesh, before);
    }

    #[test]
    fn index_coords_roundtrip() {
        let (_, chip, _) = fixture();
        let mesh = DensityMesh::coarse(&chip);
        let (nx, ny, nz) = mesh.dims();
        for b in [0, nx * ny * nz - 1, nx + 1, nx * ny] {
            let (i, j, k) = mesh.coords(b);
            assert_eq!(mesh.index(i, j, k), b);
        }
    }

    #[test]
    fn bin_center_is_inside_bin() {
        let (_, chip, _) = fixture();
        let mesh = DensityMesh::coarse(&chip);
        for b in 0..mesh.area.len() {
            let (x, y, l) = mesh.bin_center(b);
            assert_eq!(mesh.bin_at(x, y, l), b);
        }
    }

    #[test]
    fn x_rows_tile_the_mesh_and_layer_area_sums_bins() {
        let (netlist, chip, placement) = fixture();
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);
        let (nx, ny, nz) = mesh.dims();
        // Every x row is contiguous, rows cover every bin exactly once.
        let mut seen = vec![false; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                let range = mesh.x_row_range(j, k);
                assert_eq!(range.len(), nx);
                for (i, b) in range.enumerate() {
                    assert_eq!(b, mesh.index(i, j, k));
                    assert!(!seen[b]);
                    seen[b] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Layer areas partition the total cell area.
        let total: f64 = (0..nz).map(|k| mesh.layer_area(k)).sum();
        assert!((total - netlist.total_cell_area()).abs() < 1e-15);
    }

    #[test]
    fn even_spread_has_low_unevenness() {
        let (netlist, chip, mut placement) = fixture();
        let mut mesh = DensityMesh::coarse(&chip);
        // Scatter cells uniformly.
        let n = netlist.num_cells();
        let cols = (n as f64).sqrt().ceil() as usize;
        for i in 0..n {
            let gx = (i % cols) as f64 / cols as f64 * chip.width;
            let gy = (i / cols) as f64 / cols as f64 * chip.depth;
            placement.set(CellId::new(i), gx, gy, (i % 2) as u16);
        }
        mesh.rebuild(&netlist, &placement);
        let uneven_spread = mesh.density_unevenness();
        let mut piled = DensityMesh::coarse(&chip);
        piled.rebuild(&netlist, &Placement::centered(n, &chip));
        assert!(uneven_spread < piled.density_unevenness() / 2.0);
    }
}
