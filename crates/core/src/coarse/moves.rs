//! Objective-driven moves and swaps (paper §4.2).
//!
//! Two procedures share one engine:
//!
//! * **local** — candidate targets are the 3×3×3 bin neighborhood of the
//!   cell's current bin;
//! * **global** — candidates form a target region around the cell's
//!   *optimal region* (the \[14\] idea lifted to 3D): laterally the median
//!   interval of the bounding boxes of the cell's nets with the cell
//!   removed, and vertically every layer (the layer dimension is priced
//!   directly by the objective).
//!
//! For every candidate bin, moving to the bin center and swapping with the
//! best-matched resident cell are both priced with the exact objective
//! delta; the best strictly-improving action is executed. Moves into a bin
//! are only considered when the bin has room (its density stays below the
//! allowance), so spreading from cell shifting is not undone.
//!
//! In WL+ILV mode both passes run as a **batched propose/commit engine**
//! (DESIGN.md §16): cells are taken in the same shuffled order as the
//! serial engine, in fixed-size batches. Phase A prices every cell's
//! candidates in parallel against a [`FrozenPricer`] snapshot of the
//! objective; phase B walks the winning proposals serially in batch
//! order, re-prices each against the live objective, and commits only
//! still-improving actions. Proposals depend only on the snapshot and
//! the chunking is a pure function of the batch length, so results are
//! bitwise identical at every thread count. With the thermal term or an
//! armed thermal pricer the passes fall back to the exact serial loop.
//!
//! Swap-partner pricing — the measured cost center of phase A — runs
//! through a pass-lifetime [`FrozenSharedCache`]: each partner's probe
//! entries build once and survive across batches until a commit touches
//! one of the partner's nets (DESIGN.md §17).

use super::mesh::DensityMesh;
use crate::objective::{FrozenPricer, FrozenScratch, FrozenSharedCache, IncrementalObjective};
use crate::thermal_pricer::ThermalMovePricer;
use crate::{Chip, Placement};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use tvp_netlist::{CellId, Netlist};
use tvp_parallel as parallel;

/// Density a move target may reach before moves into it are rejected.
const MOVE_DENSITY_ALLOWANCE: f64 = 1.0;

/// Improvement threshold shared by proposal and commit pricing.
const EPS: f64 = 1e-18;

/// Cells per propose/commit batch. Bounds how stale phase-A snapshots
/// can get (everything committed in earlier batches is visible) while
/// leaving enough work per batch to parallelize.
const BATCH: usize = 1024;

/// Chunking floor for phase-A proposal generation: each cell prices on
/// the order of a hundred candidates, so modest chunks already amortize
/// pool dispatch.
const PROPOSE_MIN_CHUNK: usize = 32;

/// One pass of local moves/swaps over all movable cells (random order).
/// Returns the number of improving actions executed.
pub fn local_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    rng: &mut SmallRng,
) -> usize {
    local_pass_priced(objective, mesh, netlist, chip, rng, None)
}

/// [`local_pass`] with optional per-move thermal pricing: when a pricer
/// is armed (compact tier + `alpha_temp > 0`), every candidate's
/// objective delta additionally carries the frozen-field thermal term
/// and committed actions re-superpose the moved power (DESIGN.md §14).
pub(crate) fn local_pass_priced(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    rng: &mut SmallRng,
    mut pricer: Option<&mut ThermalMovePricer>,
) -> usize {
    let mut order = movable_cells(netlist);
    order.shuffle(rng);
    if pricer.is_none() && objective.frozen_pricer().is_some() {
        return batched_pass(objective, mesh, netlist, chip, &order, PassMode::Local);
    }
    let mut improved = 0;
    let mut candidates = Vec::with_capacity(27);
    for cell in order {
        local_candidates(mesh, cell, &mut candidates);
        if try_best_action(
            objective,
            mesh,
            netlist,
            chip,
            cell,
            &candidates,
            pricer.as_deref_mut(),
        ) {
            improved += 1;
        }
    }
    improved
}

/// Fills `out` with the 3×3×3 bin neighborhood of `cell`'s current bin.
fn local_candidates(mesh: &DensityMesh, cell: CellId, out: &mut Vec<usize>) {
    out.clear();
    let current = mesh.bin_of(cell);
    let (ci, cj, ck) = mesh.coords(current);
    let (nx, ny, nz) = mesh.dims();
    for dk in -1i64..=1 {
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                let i = ci as i64 + di;
                let j = cj as i64 + dj;
                let k = ck as i64 + dk;
                if i >= 0
                    && j >= 0
                    && k >= 0
                    && (i as usize) < nx
                    && (j as usize) < ny
                    && (k as usize) < nz
                {
                    out.push(mesh.index(i as usize, j as usize, k as usize));
                }
            }
        }
    }
}

/// One pass of global moves/swaps toward each cell's optimal region.
/// Returns the number of improving actions executed.
pub fn global_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    region_bins: usize,
    rng: &mut SmallRng,
) -> usize {
    global_pass_priced(objective, mesh, netlist, chip, region_bins, rng, None)
}

/// [`global_pass`] with optional per-move thermal pricing (see
/// [`local_pass_priced`]).
pub(crate) fn global_pass_priced(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    region_bins: usize,
    rng: &mut SmallRng,
    mut pricer: Option<&mut ThermalMovePricer>,
) -> usize {
    let mut order = movable_cells(netlist);
    order.shuffle(rng);
    if pricer.is_none() && objective.frozen_pricer().is_some() {
        return batched_pass(
            objective,
            mesh,
            netlist,
            chip,
            &order,
            PassMode::Global { region_bins },
        );
    }
    let mut improved = 0;
    let mut opt = OptScratch::default();
    let mut candidates = Vec::new();
    for cell in order {
        let Some((ox, oy)) = optimal_point(objective.placement(), netlist, cell, &mut opt) else {
            continue;
        };
        let (ox, oy) = chip.clamp(ox, oy);
        global_candidates(mesh, ox, oy, region_bins, &mut candidates);
        if try_best_action(
            objective,
            mesh,
            netlist,
            chip,
            cell,
            &candidates,
            pricer.as_deref_mut(),
        ) {
            improved += 1;
        }
    }
    improved
}

/// Fills `out` with the global target region around `(ox, oy)`: a fixed
/// number of bins laterally and every layer vertically.
fn global_candidates(
    mesh: &DensityMesh,
    ox: f64,
    oy: f64,
    region_bins: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let (nx, ny, nz) = mesh.dims();
    let target = mesh.bin_at(ox, oy, 0);
    let (ti, tj, _) = mesh.coords(target);
    let half = (region_bins / 2) as i64;
    for k in 0..nz {
        for dj in -half..=half {
            for di in -half..=half {
                let i = ti as i64 + di;
                let j = tj as i64 + dj;
                if i >= 0 && j >= 0 && (i as usize) < nx && (j as usize) < ny {
                    out.push(mesh.index(i as usize, j as usize, k));
                }
            }
        }
    }
}

/// Candidate-generation mode of [`batched_pass`].
#[derive(Clone, Copy)]
enum PassMode {
    Local,
    Global { region_bins: usize },
}

/// Per-bin movable residents sorted by `(area, id)`, so the best-matched
/// swap partner — the resident whose area is closest to the probing
/// cell's — is a binary search instead of a full bin scan. The scan is
/// O(residents) per candidate bin and the early passes run before
/// spreading, when bins hold piles; this index is what keeps the
/// batched passes linear in candidate count. Frozen during phase A
/// (the mesh doesn't change there) and patched per dirty bin after each
/// batch's commits.
struct PartnerIndex {
    by_bin: Vec<Vec<(f64, CellId)>>,
}

impl PartnerIndex {
    fn build(mesh: &DensityMesh, netlist: &Netlist, movable: &[CellId]) -> Self {
        let (nx, ny, nz) = mesh.dims();
        let mut by_bin = vec![Vec::new(); nx * ny * nz];
        for &cell in movable {
            by_bin[mesh.bin_of(cell)].push((netlist.cell(cell).area(), cell));
        }
        for v in &mut by_bin {
            v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        }
        Self { by_bin }
    }

    /// Re-derives one bin's sorted residents from the live mesh.
    fn rebuild_bin(&mut self, mesh: &DensityMesh, netlist: &Netlist, bin: usize) {
        let v = &mut self.by_bin[bin];
        v.clear();
        v.extend(
            mesh.bin_cells(bin)
                .iter()
                .copied()
                .filter(|&c| netlist.cell(c).is_movable())
                .map(|c| (netlist.cell(c).area(), c)),
        );
        v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// The movable resident of `bin` whose area is closest to `area`
    /// (ties resolve to the earlier `(area, id)` entry — deterministic
    /// for any build history).
    fn nearest(&self, bin: usize, area: f64) -> Option<CellId> {
        let v = &self.by_bin[bin];
        let idx = v.partition_point(|&(a, _)| a < area);
        let left = idx.checked_sub(1).and_then(|i| v.get(i).copied());
        let right = v.get(idx).copied();
        match (left, right) {
            (Some((la, lc)), Some((ra, rc))) => {
                if (la - area).abs() <= (ra - area).abs() {
                    Some(lc)
                } else {
                    Some(rc)
                }
            }
            (Some((_, c)), None) | (None, Some((_, c))) => Some(c),
            (None, None) => None,
        }
    }
}

/// One phase-A winner: the cell's best snapshot-priced action. `bin` is
/// the candidate bin whose headroom admitted the move (re-checked
/// against the live mesh at commit).
struct Proposal {
    cell: CellId,
    action: ProposedAction,
}

enum ProposedAction {
    Move {
        bin: usize,
        x: f64,
        y: f64,
        layer: u16,
    },
    Swap {
        with: CellId,
    },
}

/// The batched propose/commit engine (see the module docs). Requires
/// WL+ILV mode (`objective.frozen_pricer()` must be `Some`).
fn batched_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    order: &[CellId],
    mode: PassMode,
) -> usize {
    let mut improved = 0;
    let mut partners = PartnerIndex::build(mesh, netlist, order);
    let mut dirty_bins: Vec<usize> = Vec::new();
    // Swap-partner probe entries, memoized across the whole pass:
    // optimal regions cluster on the congested bins, so every batch
    // prices the same hot-bin residents over and over, and the entry
    // rebuild (net extremes + CSR + pin reads) is the measured cost
    // center of the pass. Commits invalidate exactly the cells whose
    // entries they may have changed (see `invalidate_moved`), so a hit
    // is always bitwise identical to a fresh build against the current
    // snapshot.
    let mut partner_cache = FrozenSharedCache::new(netlist.num_cells());
    let mut moved_cells: Vec<CellId> = Vec::new();
    for batch in order.chunks(BATCH) {
        // Phase A: parallel snapshot pricing. The snapshot, the mesh, and
        // the chunk boundaries are all independent of the thread count, so
        // the proposal list is too.
        let Some(frozen) = objective.frozen_pricer() else {
            // Unreachable: callers route here only when the pricer exists,
            // and committing moves never disarms it. Degrading to "no more
            // improvements" keeps the pass total-correct regardless.
            return improved;
        };
        let mesh_ref: &DensityMesh = mesh;
        let partners_ref: &PartnerIndex = &partners;
        let partner_cache_ref: &FrozenSharedCache = &partner_cache;
        let proposals: Vec<Vec<Proposal>> =
            parallel::map_chunks(batch.len(), PROPOSE_MIN_CHUNK, |range| {
                let mut cell_scratch = FrozenScratch::default();
                let mut opt = OptScratch::default();
                let mut candidates = Vec::new();
                let mut out = Vec::new();
                for &cell in &batch[range] {
                    match mode {
                        PassMode::Local => local_candidates(mesh_ref, cell, &mut candidates),
                        PassMode::Global { region_bins } => {
                            // The frozen variant feeds the medians from
                            // the same probe entries `propose_best` is
                            // about to price with — one build serves
                            // both, and no net is ever rescanned.
                            let Some((ox, oy)) =
                                optimal_point_frozen(&frozen, &mut cell_scratch, cell, &mut opt)
                            else {
                                continue;
                            };
                            let (ox, oy) = chip.clamp(ox, oy);
                            global_candidates(mesh_ref, ox, oy, region_bins, &mut candidates);
                        }
                    }
                    if let Some(p) = propose_best(
                        &frozen,
                        mesh_ref,
                        partners_ref,
                        netlist,
                        chip,
                        cell,
                        &candidates,
                        &mut cell_scratch,
                        partner_cache_ref,
                    ) {
                        out.push(p);
                    }
                }
                out
            });
        // Phase B: serial commits in batch order. Every proposal is
        // re-priced against the live objective (earlier commits in this
        // batch may have changed its value) and its target's headroom is
        // re-checked, so only genuinely improving, legal actions land.
        dirty_bins.clear();
        moved_cells.clear();
        for p in proposals.iter().flat_map(|v| v.iter()) {
            match p.action {
                ProposedAction::Move { bin, x, y, layer } => {
                    let old_bin = mesh.bin_of(p.cell);
                    if bin == old_bin {
                        continue;
                    }
                    let cell_area = netlist.cell(p.cell).area();
                    let headroom =
                        mesh.capacity() * MOVE_DENSITY_ALLOWANCE - mesh.bin_area(bin) - cell_area;
                    if headroom < 0.0 {
                        continue;
                    }
                    if objective.delta_move(p.cell, x, y, layer) < -EPS {
                        objective.apply_move(p.cell, x, y, layer);
                        mesh.relocate(netlist, p.cell, x, y, layer);
                        dirty_bins.push(old_bin);
                        dirty_bins.push(bin);
                        moved_cells.push(p.cell);
                        improved += 1;
                    }
                }
                ProposedAction::Swap { with } => {
                    if objective.delta_swap(p.cell, with) < -EPS {
                        let pa = objective.placement().position(p.cell);
                        let pb = objective.placement().position(with);
                        objective.apply_swap(p.cell, with);
                        mesh.relocate(netlist, p.cell, pb.0, pb.1, pb.2);
                        mesh.relocate(netlist, with, pa.0, pa.1, pa.2);
                        dirty_bins.push(mesh.bin_of(p.cell));
                        dirty_bins.push(mesh.bin_of(with));
                        moved_cells.push(p.cell);
                        moved_cells.push(with);
                        improved += 1;
                    }
                }
            }
        }
        partner_cache.invalidate_moved(netlist, &moved_cells);
        dirty_bins.sort_unstable();
        dirty_bins.dedup();
        for &bin in &dirty_bins {
            partners.rebuild_bin(mesh, netlist, bin);
        }
    }
    improved
}

/// Phase-A analogue of [`try_best_action`]: prices every candidate
/// against the snapshot and returns the best improving action, without
/// executing anything. Swaps are priced as two independent single-move
/// deltas (exact unless the cells share a net — phase B's exact re-price
/// settles those).
#[allow(clippy::too_many_arguments)]
fn propose_best(
    frozen: &FrozenPricer<'_>,
    mesh: &DensityMesh,
    partners: &PartnerIndex,
    netlist: &Netlist,
    chip: &Chip,
    cell: CellId,
    candidates: &[usize],
    cell_scratch: &mut FrozenScratch,
    partner_cache: &FrozenSharedCache,
) -> Option<Proposal> {
    let current_bin = mesh.bin_of(cell);
    let cell_area = netlist.cell(cell).area();
    let pa = frozen.placement().position(cell);
    let mut best: Option<(f64, ProposedAction)> = None;
    for &b in candidates {
        if b == current_bin {
            continue;
        }
        let headroom = mesh.capacity() * MOVE_DENSITY_ALLOWANCE - mesh.bin_area(b) - cell_area;
        if headroom >= 0.0 {
            let (bx, by, layer) = mesh.bin_center(b);
            let (bx, by) = chip.clamp(bx, by);
            let delta = frozen.delta_move(cell_scratch, cell, bx, by, layer);
            if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                best = Some((
                    delta,
                    ProposedAction::Move {
                        bin: b,
                        x: bx,
                        y: by,
                        layer,
                    },
                ));
            }
        }
        // `cell` never resides in a scanned bin (its own bin is skipped
        // above), so the index lookup needs no self-exclusion.
        if let Some(partner) = partners.nearest(b, cell_area) {
            let pb = frozen.placement().position(partner);
            let mut delta = frozen.delta_move(cell_scratch, cell, pb.0, pb.1, pb.2);
            delta += frozen.delta_move_memo(partner_cache, partner, pa.0, pa.1, pa.2);
            if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                best = Some((delta, ProposedAction::Swap { with: partner }));
            }
        }
    }
    best.map(|(_, action)| Proposal { cell, action })
}

fn movable_cells(netlist: &Netlist) -> Vec<CellId> {
    netlist
        .iter_cells()
        .filter(|(_, c)| c.is_movable())
        .map(|(id, _)| id)
        .collect()
}

/// Reusable buffers for [`optimal_point`]: the per-net bounding-box
/// extremes a cell's median interval is computed from.
#[derive(Default)]
struct OptScratch {
    xs_lo: Vec<f64>,
    xs_hi: Vec<f64>,
    ys_lo: Vec<f64>,
    ys_hi: Vec<f64>,
}

/// The lateral objective-minimum point for a cell: the center of its
/// optimal region (median interval of its nets' bounding boxes with the
/// cell excluded). `None` for unconnected cells.
fn optimal_point(
    placement: &Placement,
    netlist: &Netlist,
    cell: CellId,
    s: &mut OptScratch,
) -> Option<(f64, f64)> {
    s.xs_lo.clear();
    s.xs_hi.clear();
    s.ys_lo.clear();
    s.ys_hi.clear();
    for &p in netlist.cell_pins(cell) {
        let e = netlist.pin(p).net();
        let mut x0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y0 = f64::INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        let mut others = 0;
        for &q in netlist.net_pins(e) {
            let other = netlist.pin(q).cell();
            if other == cell {
                continue;
            }
            others += 1;
            let (x, y, _) = placement.position(other);
            x0 = x0.min(x + netlist.pin(q).offset_x());
            x1 = x1.max(x + netlist.pin(q).offset_x());
            y0 = y0.min(y + netlist.pin(q).offset_y());
            y1 = y1.max(y + netlist.pin(q).offset_y());
        }
        if others > 0 {
            s.xs_lo.push(x0);
            s.xs_hi.push(x1);
            s.ys_lo.push(y0);
            s.ys_hi.push(y1);
        }
    }
    if s.xs_lo.is_empty() {
        return None;
    }
    Some((
        (median(&mut s.xs_lo) + median(&mut s.xs_hi)) / 2.0,
        (median(&mut s.ys_lo) + median(&mut s.ys_hi)) / 2.0,
    ))
}

/// [`optimal_point`] against a [`FrozenPricer`] snapshot: the per-net
/// exclusion rectangles come from the snapshot's probe entries instead
/// of a fresh scan of every incident net. The rectangle values (and so
/// the medians) are bitwise identical — see
/// [`FrozenPricer::exclusion_rects`] — and the entries stay in
/// `scratch` for the candidate pricing that follows.
fn optimal_point_frozen(
    frozen: &FrozenPricer<'_>,
    scratch: &mut FrozenScratch,
    cell: CellId,
    s: &mut OptScratch,
) -> Option<(f64, f64)> {
    s.xs_lo.clear();
    s.xs_hi.clear();
    s.ys_lo.clear();
    s.ys_hi.clear();
    frozen.exclusion_rects(scratch, cell, |x0, x1, y0, y1| {
        s.xs_lo.push(x0);
        s.xs_hi.push(x1);
        s.ys_lo.push(y0);
        s.ys_hi.push(y1);
    });
    if s.xs_lo.is_empty() {
        return None;
    }
    Some((
        (median(&mut s.xs_lo) + median(&mut s.xs_hi)) / 2.0,
        (median(&mut s.ys_lo) + median(&mut s.ys_hi)) / 2.0,
    ))
}

/// The element a full sort would leave at `len / 2` — selected in O(n)
/// instead of O(n log n); the same comparator makes it value-identical
/// to the historical sort-based median.
fn median(values: &mut [f64]) -> f64 {
    let mid = values.len() / 2;
    *values
        .select_nth_unstable_by(mid, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        })
        .1
}

/// Prices a move to each candidate bin's center and a swap with the
/// closest-area resident of each candidate bin; executes the best
/// improving action. Returns whether anything was executed.
///
/// With an armed pricer, each candidate's delta additionally carries the
/// frozen-field thermal term, and the executed action commits the moved
/// power back into the cached field. Cell powers come from the
/// incremental `cell_power` cache, which is maintained exactly when
/// `alpha_temp > 0` — the condition under which a pricer exists at all.
fn try_best_action(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    cell: CellId,
    candidates: &[usize],
    mut pricer: Option<&mut ThermalMovePricer>,
) -> bool {
    let current_bin = mesh.bin_of(cell);
    let cell_area = netlist.cell(cell).area();
    let current_pos = objective.placement().position(cell);

    enum Action {
        Move { x: f64, y: f64, layer: u16 },
        Swap { with: CellId },
    }
    let mut best: Option<(f64, Action)> = None;

    for &b in candidates {
        if b != current_bin {
            // Move into the bin center, if the bin has room.
            let headroom = mesh.capacity() * MOVE_DENSITY_ALLOWANCE - mesh.bin_area(b) - cell_area;
            if headroom >= 0.0 {
                let (bx, by, layer) = mesh.bin_center(b);
                let (bx, by) = chip.clamp(bx, by);
                let mut delta = objective.delta_move(cell, bx, by, layer);
                if let Some(p) = pricer.as_deref_mut() {
                    delta += p.price(objective.cell_power(cell), current_pos, (bx, by, layer));
                }
                if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                    best = Some((
                        delta,
                        Action::Move {
                            x: bx,
                            y: by,
                            layer,
                        },
                    ));
                }
            }
            // Swap with the resident whose area matches best (keeps both
            // bins' densities stable).
            let partner = mesh
                .bin_cells(b)
                .iter()
                .copied()
                .filter(|&other| other != cell && netlist.cell(other).is_movable())
                .min_by(|&a, &c| {
                    let da = (netlist.cell(a).area() - cell_area).abs();
                    let dc = (netlist.cell(c).area() - cell_area).abs();
                    da.partial_cmp(&dc).unwrap_or(std::cmp::Ordering::Equal)
                });
            if let Some(partner) = partner {
                let mut delta = objective.delta_swap(cell, partner);
                if let Some(p) = pricer.as_deref_mut() {
                    delta += p.price_swap(
                        objective.cell_power(cell),
                        current_pos,
                        objective.cell_power(partner),
                        objective.placement().position(partner),
                    );
                }
                if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                    best = Some((delta, Action::Swap { with: partner }));
                }
            }
        }
    }

    match best {
        Some((_, Action::Move { x, y, layer })) => {
            let watts = objective.cell_power(cell);
            objective.apply_move(cell, x, y, layer);
            mesh.relocate(netlist, cell, x, y, layer);
            if let Some(p) = pricer {
                p.commit(watts, current_pos, (x, y, layer));
            }
            true
        }
        Some((_, Action::Swap { with })) => {
            let pa = objective.placement().position(cell);
            let pb = objective.placement().position(with);
            let (wa, wb) = (objective.cell_power(cell), objective.cell_power(with));
            objective.apply_swap(cell, with);
            mesh.relocate(netlist, cell, pb.0, pb.1, pb.2);
            mesh.relocate(netlist, with, pa.0, pa.1, pa.2);
            if let Some(p) = pricer {
                p.commit_swap(wa, pa, wb, pb);
            }
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveModel;
    use crate::{Placement, PlacerConfig};
    use rand::SeedableRng;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn fixture() -> (tvp_netlist::Netlist, Chip, crate::PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    fn scattered(netlist: &tvp_netlist::Netlist, chip: &Chip, seed: u64) -> Placement {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Placement::centered(netlist.num_cells(), chip);
        for i in 0..netlist.num_cells() {
            p.set(
                CellId::new(i),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
        }
        p
    }

    #[test]
    fn passes_strictly_improve_the_objective() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 11);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let before = objective.total();
        let mut rng = SmallRng::seed_from_u64(1);
        let improved_global = global_pass(&mut objective, &mut mesh, &netlist, &chip, 5, &mut rng);
        let improved_local = local_pass(&mut objective, &mut mesh, &netlist, &chip, &mut rng);
        assert!(
            improved_global + improved_local > 0,
            "random start must improve"
        );
        assert!(objective.total() < before);
        // Caches stay consistent.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn mesh_stays_consistent_with_placement() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 13);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let mut rng = SmallRng::seed_from_u64(2);
        local_pass(&mut objective, &mut mesh, &netlist, &chip, &mut rng);
        global_pass(&mut objective, &mut mesh, &netlist, &chip, 5, &mut rng);
        // Every cell's registered bin matches its actual position.
        for (cell, x, y, layer) in objective.placement().iter() {
            if netlist.cell(cell).is_movable() {
                assert_eq!(mesh.bin_of(cell), mesh.bin_at(x, y, layer));
            }
        }
        // Rebuilding from scratch yields identical areas.
        let mut fresh = DensityMesh::coarse(&chip);
        fresh.rebuild(&netlist, objective.placement());
        let (nx, ny, nz) = mesh.dims();
        for b in 0..nx * ny * nz {
            assert!((mesh.bin_area(b) - fresh.bin_area(b)).abs() < 1e-15);
        }
    }

    #[test]
    fn optimal_point_is_inside_neighbor_bbox() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 17);
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        let connected = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.cell_nets(c).next().is_some())
            .unwrap();
        let mut scratch = OptScratch::default();
        let (ox, oy) =
            optimal_point(objective.placement(), &netlist, connected, &mut scratch).unwrap();
        assert!(ox >= 0.0 && ox <= chip.width);
        assert!(oy >= 0.0 && oy <= chip.depth);
        // Moving the cell to its optimal point must not hurt the lateral
        // objective more than staying put does.
        let (x, y, l) = objective.placement().position(connected);
        let stay = objective.delta_move(connected, x, y, l);
        let go = objective.delta_move(connected, ox, oy, l);
        assert!(go <= stay + 1e-12);
    }

    #[test]
    fn unconnected_cell_has_no_optimal_point() {
        let mut b = tvp_netlist::NetlistBuilder::new();
        b.add_cell("lonely", 1e-6, 1e-6);
        b.add_cell("other", 1e-6, 1e-6);
        let netlist = b.build().unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(&netlist, &model, Placement::centered(2, &chip));
        let mut scratch = OptScratch::default();
        assert!(optimal_point(
            objective.placement(),
            &netlist,
            CellId::new(0),
            &mut scratch
        )
        .is_none());
    }
}
