//! Objective-driven moves and swaps (paper §4.2).
//!
//! Two procedures share one engine:
//!
//! * **local** — candidate targets are the 3×3×3 bin neighborhood of the
//!   cell's current bin;
//! * **global** — candidates form a target region around the cell's
//!   *optimal region* (the \[14\] idea lifted to 3D): laterally the median
//!   interval of the bounding boxes of the cell's nets with the cell
//!   removed, and vertically every layer (the layer dimension is priced
//!   directly by the objective).
//!
//! For every candidate bin, moving to the bin center and swapping with the
//! best-matched resident cell are both priced with the exact objective
//! delta; the best strictly-improving action is executed. Moves into a bin
//! are only considered when the bin has room (its density stays below the
//! allowance), so spreading from cell shifting is not undone.

use super::mesh::DensityMesh;
use crate::objective::IncrementalObjective;
use crate::thermal_pricer::ThermalMovePricer;
use crate::Chip;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use tvp_netlist::{CellId, Netlist};

/// Density a move target may reach before moves into it are rejected.
const MOVE_DENSITY_ALLOWANCE: f64 = 1.0;

/// One pass of local moves/swaps over all movable cells (random order).
/// Returns the number of improving actions executed.
pub fn local_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    rng: &mut SmallRng,
) -> usize {
    local_pass_priced(objective, mesh, netlist, chip, rng, None)
}

/// [`local_pass`] with optional per-move thermal pricing: when a pricer
/// is armed (compact tier + `alpha_temp > 0`), every candidate's
/// objective delta additionally carries the frozen-field thermal term
/// and committed actions re-superpose the moved power (DESIGN.md §14).
pub(crate) fn local_pass_priced(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    rng: &mut SmallRng,
    mut pricer: Option<&mut ThermalMovePricer>,
) -> usize {
    let mut order = movable_cells(netlist);
    order.shuffle(rng);
    let mut improved = 0;
    for cell in order {
        let current = mesh.bin_of(cell);
        let (ci, cj, ck) = mesh.coords(current);
        let (nx, ny, nz) = mesh.dims();
        let mut candidates = Vec::with_capacity(27);
        for dk in -1i64..=1 {
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    let i = ci as i64 + di;
                    let j = cj as i64 + dj;
                    let k = ck as i64 + dk;
                    if i >= 0
                        && j >= 0
                        && k >= 0
                        && (i as usize) < nx
                        && (j as usize) < ny
                        && (k as usize) < nz
                    {
                        candidates.push(mesh.index(i as usize, j as usize, k as usize));
                    }
                }
            }
        }
        if try_best_action(
            objective,
            mesh,
            netlist,
            chip,
            cell,
            &candidates,
            pricer.as_deref_mut(),
        ) {
            improved += 1;
        }
    }
    improved
}

/// One pass of global moves/swaps toward each cell's optimal region.
/// Returns the number of improving actions executed.
pub fn global_pass(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    region_bins: usize,
    rng: &mut SmallRng,
) -> usize {
    global_pass_priced(objective, mesh, netlist, chip, region_bins, rng, None)
}

/// [`global_pass`] with optional per-move thermal pricing (see
/// [`local_pass_priced`]).
pub(crate) fn global_pass_priced(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    region_bins: usize,
    rng: &mut SmallRng,
    mut pricer: Option<&mut ThermalMovePricer>,
) -> usize {
    let mut order = movable_cells(netlist);
    order.shuffle(rng);
    let mut improved = 0;
    for cell in order {
        let Some((ox, oy)) = optimal_point(objective, netlist, cell) else {
            continue;
        };
        let (ox, oy) = chip.clamp(ox, oy);
        let (nx, ny, nz) = mesh.dims();
        let target = mesh.bin_at(ox, oy, 0);
        let (ti, tj, _) = mesh.coords(target);
        let half = (region_bins / 2) as i64;
        let mut candidates = Vec::new();
        // The target region spans a fixed number of bins laterally and all
        // layers vertically.
        for k in 0..nz {
            for dj in -half..=half {
                for di in -half..=half {
                    let i = ti as i64 + di;
                    let j = tj as i64 + dj;
                    if i >= 0 && j >= 0 && (i as usize) < nx && (j as usize) < ny {
                        candidates.push(mesh.index(i as usize, j as usize, k));
                    }
                }
            }
        }
        if try_best_action(
            objective,
            mesh,
            netlist,
            chip,
            cell,
            &candidates,
            pricer.as_deref_mut(),
        ) {
            improved += 1;
        }
    }
    improved
}

fn movable_cells(netlist: &Netlist) -> Vec<CellId> {
    netlist
        .iter_cells()
        .filter(|(_, c)| c.is_movable())
        .map(|(id, _)| id)
        .collect()
}

/// The lateral objective-minimum point for a cell: the center of its
/// optimal region (median interval of its nets' bounding boxes with the
/// cell excluded). `None` for unconnected cells.
fn optimal_point(
    objective: &IncrementalObjective<'_>,
    netlist: &Netlist,
    cell: CellId,
) -> Option<(f64, f64)> {
    let mut xs_lo = Vec::new();
    let mut xs_hi = Vec::new();
    let mut ys_lo = Vec::new();
    let mut ys_hi = Vec::new();
    for &p in netlist.cell_pins(cell) {
        let e = netlist.pin(p).net();
        let mut x0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y0 = f64::INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        let mut others = 0;
        for &q in netlist.net_pins(e) {
            let other = netlist.pin(q).cell();
            if other == cell {
                continue;
            }
            others += 1;
            let (x, y, _) = objective.placement().position(other);
            x0 = x0.min(x + netlist.pin(q).offset_x());
            x1 = x1.max(x + netlist.pin(q).offset_x());
            y0 = y0.min(y + netlist.pin(q).offset_y());
            y1 = y1.max(y + netlist.pin(q).offset_y());
        }
        if others > 0 {
            xs_lo.push(x0);
            xs_hi.push(x1);
            ys_lo.push(y0);
            ys_hi.push(y1);
        }
    }
    if xs_lo.is_empty() {
        return None;
    }
    Some((
        (median(&mut xs_lo) + median(&mut xs_hi)) / 2.0,
        (median(&mut ys_lo) + median(&mut ys_hi)) / 2.0,
    ))
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values[values.len() / 2]
}

/// Prices a move to each candidate bin's center and a swap with the
/// closest-area resident of each candidate bin; executes the best
/// improving action. Returns whether anything was executed.
///
/// With an armed pricer, each candidate's delta additionally carries the
/// frozen-field thermal term, and the executed action commits the moved
/// power back into the cached field. Cell powers come from the
/// incremental `cell_power` cache, which is maintained exactly when
/// `alpha_temp > 0` — the condition under which a pricer exists at all.
fn try_best_action(
    objective: &mut IncrementalObjective<'_>,
    mesh: &mut DensityMesh,
    netlist: &Netlist,
    chip: &Chip,
    cell: CellId,
    candidates: &[usize],
    mut pricer: Option<&mut ThermalMovePricer>,
) -> bool {
    const EPS: f64 = 1e-18;
    let current_bin = mesh.bin_of(cell);
    let cell_area = netlist.cell(cell).area();
    let current_pos = objective.placement().position(cell);

    enum Action {
        Move { x: f64, y: f64, layer: u16 },
        Swap { with: CellId },
    }
    let mut best: Option<(f64, Action)> = None;

    for &b in candidates {
        if b != current_bin {
            // Move into the bin center, if the bin has room.
            let headroom = mesh.capacity() * MOVE_DENSITY_ALLOWANCE - mesh.bin_area(b) - cell_area;
            if headroom >= 0.0 {
                let (bx, by, layer) = mesh.bin_center(b);
                let (bx, by) = chip.clamp(bx, by);
                let mut delta = objective.delta_move(cell, bx, by, layer);
                if let Some(p) = pricer.as_deref_mut() {
                    delta += p.price(objective.cell_power(cell), current_pos, (bx, by, layer));
                }
                if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                    best = Some((
                        delta,
                        Action::Move {
                            x: bx,
                            y: by,
                            layer,
                        },
                    ));
                }
            }
            // Swap with the resident whose area matches best (keeps both
            // bins' densities stable).
            let partner = mesh
                .bin_cells(b)
                .iter()
                .copied()
                .filter(|&other| other != cell && netlist.cell(other).is_movable())
                .min_by(|&a, &c| {
                    let da = (netlist.cell(a).area() - cell_area).abs();
                    let dc = (netlist.cell(c).area() - cell_area).abs();
                    da.partial_cmp(&dc).unwrap_or(std::cmp::Ordering::Equal)
                });
            if let Some(partner) = partner {
                let mut delta = objective.delta_swap(cell, partner);
                if let Some(p) = pricer.as_deref_mut() {
                    delta += p.price_swap(
                        objective.cell_power(cell),
                        current_pos,
                        objective.cell_power(partner),
                        objective.placement().position(partner),
                    );
                }
                if delta < best.as_ref().map_or(-EPS, |(d, _)| *d) {
                    best = Some((delta, Action::Swap { with: partner }));
                }
            }
        }
    }

    match best {
        Some((_, Action::Move { x, y, layer })) => {
            let watts = objective.cell_power(cell);
            objective.apply_move(cell, x, y, layer);
            mesh.relocate(netlist, cell, x, y, layer);
            if let Some(p) = pricer {
                p.commit(watts, current_pos, (x, y, layer));
            }
            true
        }
        Some((_, Action::Swap { with })) => {
            let pa = objective.placement().position(cell);
            let pb = objective.placement().position(with);
            let (wa, wb) = (objective.cell_power(cell), objective.cell_power(with));
            objective.apply_swap(cell, with);
            mesh.relocate(netlist, cell, pb.0, pb.1, pb.2);
            mesh.relocate(netlist, with, pa.0, pa.1, pa.2);
            if let Some(p) = pricer {
                p.commit_swap(wa, pa, wb, pb);
            }
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveModel;
    use crate::{Placement, PlacerConfig};
    use rand::SeedableRng;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn fixture() -> (tvp_netlist::Netlist, Chip, crate::PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 200, 1.0e-9)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    fn scattered(netlist: &tvp_netlist::Netlist, chip: &Chip, seed: u64) -> Placement {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Placement::centered(netlist.num_cells(), chip);
        for i in 0..netlist.num_cells() {
            p.set(
                CellId::new(i),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
        }
        p
    }

    #[test]
    fn passes_strictly_improve_the_objective() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 11);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let before = objective.total();
        let mut rng = SmallRng::seed_from_u64(1);
        let improved_global = global_pass(&mut objective, &mut mesh, &netlist, &chip, 5, &mut rng);
        let improved_local = local_pass(&mut objective, &mut mesh, &netlist, &chip, &mut rng);
        assert!(
            improved_global + improved_local > 0,
            "random start must improve"
        );
        assert!(objective.total() < before);
        // Caches stay consistent.
        let scratch = objective.recompute_total();
        assert!((objective.total() - scratch).abs() < 1e-9 * scratch.max(1e-12));
    }

    #[test]
    fn mesh_stays_consistent_with_placement() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 13);
        let mut objective = IncrementalObjective::new(&netlist, &model, placement);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, objective.placement());
        let mut rng = SmallRng::seed_from_u64(2);
        local_pass(&mut objective, &mut mesh, &netlist, &chip, &mut rng);
        global_pass(&mut objective, &mut mesh, &netlist, &chip, 5, &mut rng);
        // Every cell's registered bin matches its actual position.
        for (cell, x, y, layer) in objective.placement().iter() {
            if netlist.cell(cell).is_movable() {
                assert_eq!(mesh.bin_of(cell), mesh.bin_at(x, y, layer));
            }
        }
        // Rebuilding from scratch yields identical areas.
        let mut fresh = DensityMesh::coarse(&chip);
        fresh.rebuild(&netlist, objective.placement());
        let (nx, ny, nz) = mesh.dims();
        for b in 0..nx * ny * nz {
            assert!((mesh.bin_area(b) - fresh.bin_area(b)).abs() < 1e-15);
        }
    }

    #[test]
    fn optimal_point_is_inside_neighbor_bbox() {
        let (netlist, chip, config) = fixture();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = scattered(&netlist, &chip, 17);
        let objective = IncrementalObjective::new(&netlist, &model, placement);
        let connected = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.cell_nets(c).next().is_some())
            .unwrap();
        let (ox, oy) = optimal_point(&objective, &netlist, connected).unwrap();
        assert!(ox >= 0.0 && ox <= chip.width);
        assert!(oy >= 0.0 && oy <= chip.depth);
        // Moving the cell to its optimal point must not hurt the lateral
        // objective more than staying put does.
        let (x, y, l) = objective.placement().position(connected);
        let stay = objective.delta_move(connected, x, y, l);
        let go = objective.delta_move(connected, ox, oy, l);
        assert!(go <= stay + 1e-12);
    }

    #[test]
    fn unconnected_cell_has_no_optimal_point() {
        let mut b = tvp_netlist::NetlistBuilder::new();
        b.add_cell("lonely", 1e-6, 1e-6);
        b.add_cell("other", 1e-6, 1e-6);
        let netlist = b.build().unwrap();
        let config = PlacerConfig::new(1);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let objective = IncrementalObjective::new(&netlist, &model, Placement::centered(2, &chip));
        assert!(optimal_point(&objective, &netlist, CellId::new(0)).is_none());
    }
}
