//! Chip geometry derived from the netlist and configuration.

use crate::{PlaceError, PlacerConfig};
use tvp_netlist::Netlist;
use tvp_thermal::LayerStack;

/// Physical geometry of the placement target: a square multi-layer chip
/// with standard-cell rows on every layer.
///
/// The footprint is derived so each of the `num_layers` layers carries an
/// equal share of the cell area, inflated by the configured whitespace and
/// inter-row spacing (Table 2: 5% and 25%).
#[derive(Clone, PartialEq, Debug)]
pub struct Chip {
    /// Footprint width (x extent), meters.
    pub width: f64,
    /// Footprint depth (y extent), meters.
    pub depth: f64,
    /// Number of device layers.
    pub num_layers: usize,
    /// Standard-cell row height, meters (the dominant cell height).
    pub row_height: f64,
    /// Vertical pitch between rows (row height × (1 + row_space)), meters.
    pub row_pitch: f64,
    /// Rows per layer.
    pub num_rows: usize,
    /// Mean movable-cell width, meters (sets bin sizes downstream).
    pub avg_cell_width: f64,
    /// Mean movable-cell area, square meters.
    pub avg_cell_area: f64,
    /// The vertical stack (geometry + thermal materials).
    pub stack: LayerStack,
}

impl Chip {
    /// Derives the chip for a netlist under a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::EmptyNetlist`] if the netlist has no movable
    /// cells, or [`PlaceError::InvalidConfig`] via config validation.
    pub fn from_netlist(netlist: &Netlist, config: &PlacerConfig) -> Result<Self, PlaceError> {
        config.validate()?;
        let movable: Vec<_> = netlist.cells().iter().filter(|c| c.is_movable()).collect();
        if movable.is_empty() {
            return Err(PlaceError::EmptyNetlist);
        }
        let total_area: f64 = movable.iter().map(|c| c.area()).sum();
        let n = movable.len() as f64;
        let avg_cell_area = total_area / n;
        let avg_cell_width = movable.iter().map(|c| c.width()).sum::<f64>() / n;
        // Dominant cell height = mean (synthetic and IBM-PLACE cells share
        // one row height, so mean == mode).
        let row_height = movable.iter().map(|c| c.height()).sum::<f64>() / n;

        // Per-layer silicon the cells need, inflated by whitespace and the
        // row-to-row spacing.
        let per_layer = total_area / config.num_layers as f64 / (1.0 - config.whitespace)
            * (1.0 + config.row_space);
        let row_pitch = row_height * (1.0 + config.row_space);
        // Square footprint, quantized to whole rows.
        let side = per_layer.sqrt();
        let num_rows = (side / row_pitch).ceil().max(1.0) as usize;
        let depth = num_rows as f64 * row_pitch;
        let mut width = per_layer / depth;

        // Row-granularity guarantee: whitespace measured by *area* does not
        // make row packing feasible — a row can strand up to one max cell
        // width of fragment. Reserve that per row so legalization always
        // succeeds; the adjustment vanishes for large designs and only
        // widens toy-sized chips.
        let max_eff_width = movable
            .iter()
            .map(|c| c.area() / row_height)
            .fold(0.0f64, f64::max);
        let rows_total = (num_rows * config.num_layers) as f64;
        let required = total_area / row_height + rows_total * max_eff_width;
        let capacity = width * rows_total;
        if capacity < required {
            width = required / rows_total;
        }

        Ok(Self {
            width,
            depth,
            num_layers: config.num_layers,
            row_height,
            row_pitch,
            num_rows,
            avg_cell_width,
            avg_cell_area,
            stack: config.stack,
        })
    }

    /// Footprint area of one layer, square meters.
    pub fn layer_area(&self) -> f64 {
        self.width * self.depth
    }

    /// The y coordinate of the bottom edge of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row_bottom(&self, row: usize) -> f64 {
        assert!(row < self.num_rows, "row {row} out of range");
        row as f64 * self.row_pitch
    }

    /// The y coordinate of the center of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row_center(&self, row: usize) -> f64 {
        self.row_bottom(row) + self.row_height / 2.0
    }

    /// The row whose center is nearest to `y` (clamped to valid rows).
    pub fn nearest_row(&self, y: f64) -> usize {
        let r = ((y - self.row_height / 2.0) / self.row_pitch).round();
        (r.max(0.0) as usize).min(self.num_rows - 1)
    }

    /// Clamps a position to the chip footprint.
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(0.0, self.width), y.clamp(0.0, self.depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn chip(layers: usize) -> (Netlist, Chip) {
        let netlist = generate(&SynthConfig::named("t", 400, 2.0e-9)).unwrap();
        let config = PlacerConfig::new(layers);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip)
    }

    #[test]
    fn capacity_covers_cells_with_whitespace() {
        let (netlist, chip) = chip(4);
        let total_cell_area = netlist.total_cell_area();
        // Row area available for cells across all layers.
        let row_area_per_layer = chip.num_rows as f64 * chip.row_height * chip.width;
        let capacity = row_area_per_layer * chip.num_layers as f64;
        assert!(
            capacity >= total_cell_area * 1.02,
            "capacity {capacity} must exceed cell area {total_cell_area}"
        );
        assert!(
            capacity <= total_cell_area * 1.25,
            "capacity {capacity} should not be wildly larger than {total_cell_area}"
        );
    }

    #[test]
    fn more_layers_shrink_the_footprint() {
        let (_, chip1) = chip(1);
        let (_, chip4) = chip(4);
        assert!(chip4.layer_area() < chip1.layer_area() / 3.0);
        assert!(chip4.layer_area() > chip1.layer_area() / 5.0);
    }

    #[test]
    fn footprint_is_roughly_square() {
        let (_, chip) = chip(2);
        let ratio = chip.width / chip.depth;
        assert!(ratio > 0.8 && ratio < 1.25, "aspect ratio {ratio}");
    }

    #[test]
    fn rows_tile_the_depth() {
        let (_, chip) = chip(4);
        assert!((chip.num_rows as f64 * chip.row_pitch - chip.depth).abs() < 1e-12);
        assert_eq!(chip.nearest_row(chip.row_center(0)), 0);
        let last = chip.num_rows - 1;
        assert_eq!(chip.nearest_row(chip.row_center(last)), last);
        assert_eq!(chip.nearest_row(-1.0), 0);
        assert_eq!(chip.nearest_row(chip.depth * 2.0), last);
    }

    #[test]
    fn clamp_constrains_to_footprint() {
        let (_, chip) = chip(2);
        let (x, y) = chip.clamp(-5.0, chip.depth + 1.0);
        assert_eq!(x, 0.0);
        assert_eq!(y, chip.depth);
    }

    #[test]
    fn empty_netlist_is_rejected() {
        let netlist = tvp_netlist::NetlistBuilder::new().build().unwrap();
        let err = Chip::from_netlist(&netlist, &PlacerConfig::new(4)).unwrap_err();
        assert!(matches!(err, PlaceError::EmptyNetlist));
    }
}
