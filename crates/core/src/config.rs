//! Placer configuration: the paper's coefficients plus Table 2 technology
//! parameters.

use crate::PlaceError;
use tvp_thermal::{LayerSpec, LayerStack, Preconditioner, ThermalTier};

/// Electrical technology parameters (Table 2, derived from the MIT-LL
/// 0.18 µm 3D FD-SOI process and capacitance data of \[19\]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TechnologyParams {
    /// Clock frequency `f` in Eq. 4, Hz.
    pub clock_frequency: f64,
    /// Supply voltage `V_DD`, volts.
    pub vdd: f64,
    /// Lateral interconnect capacitance `C_per wl`, F/m (Table 2:
    /// 73.8 pF/m).
    pub cap_per_wirelength: f64,
    /// Interlayer via capacitance per unit via length, F/m (Table 2:
    /// 1480 pF/m). A via spanning one layer pitch contributes
    /// `cap_per_ilv_length × layer_pitch` farads.
    pub cap_per_ilv_length: f64,
    /// Input pin capacitance `C_per pin`, F (Table 2: 0.350 fF).
    pub input_pin_cap: f64,
    /// Static (leakage) power per cell, W. The paper notes leakage "could
    /// be added to `P_j^cell`" (§3.2); zero by default to match Table 2.
    pub leakage_per_cell: f64,
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self {
            clock_frequency: 1.0e9,
            vdd: 1.8,
            cap_per_wirelength: 73.8e-12,
            cap_per_ilv_length: 1480.0e-12,
            input_pin_cap: 0.350e-15,
            leakage_per_cell: 0.0,
        }
    }
}

impl TechnologyParams {
    /// The `½ f V_DD²` prefactor shared by every dynamic-power term.
    pub fn power_prefactor(&self) -> f64 {
        0.5 * self.clock_frequency * self.vdd * self.vdd
    }
}

/// Full placer configuration.
///
/// Defaults reproduce the paper's Table 2 experimental setup: 4 layers, 5%
/// whitespace, 25% inter-row spacing, `α_ILV = 10⁻⁵` (the average cell
/// dimension), `α_TEMP = 0` (thermal objective off).
#[derive(Clone, PartialEq, Debug)]
pub struct PlacerConfig {
    /// Number of active device layers.
    pub num_layers: usize,
    /// Interlayer via coefficient `α_ILV`, meters (the wirelength a via is
    /// worth). Paper sweeps 5×10⁻⁹ … 5.2×10⁻³.
    pub alpha_ilv: f64,
    /// Thermal coefficient `α_TEMP`, meters per kelvin. Paper sweeps
    /// 10⁻⁸ … 5.2×10⁻³; 0 disables thermal placement.
    pub alpha_temp: f64,
    /// Whitespace fraction of the placement area (Table 2: 5%).
    pub whitespace: f64,
    /// Inter-row space as a fraction of row height (Table 2: 25%).
    pub row_space: f64,
    /// Vertical stack geometry and thermal materials.
    pub stack: LayerStack,
    /// Electrical technology parameters.
    pub tech: TechnologyParams,
    /// Random restarts per bisection (quality/runtime knob of §7).
    pub partition_starts: usize,
    /// Recursion stops when a single-layer region holds at most this many
    /// cells.
    pub leaf_cells: usize,
    /// Cell shifting stops once the maximum bin density is below this.
    pub coarse_max_density: f64,
    /// Hard cap on cell-shifting passes per spreading phase. Spreads
    /// normally stop earlier — when the density target is met, a pass
    /// moves nothing, or the peak density stalls (no relative
    /// improvement for a few consecutive passes); the cap only catches
    /// pathological non-convergence.
    pub coarse_shift_iterations: usize,
    /// Passes of global+local moves/swaps during coarse legalization.
    pub coarse_move_passes: usize,
    /// Target-region size for global moves, in bins per dimension.
    pub coarse_target_region_bins: usize,
    /// Rows above/below the target row tried during detailed legalization.
    pub detail_row_window: usize,
    /// Extra coarse+detailed optimization rounds after the first legal
    /// placement (§7 reports quality/runtime for up to 10).
    pub post_opt_rounds: usize,
    /// Legality-preserving refinement rounds (slides and in-row swaps)
    /// after every detailed legalization.
    pub legal_refine_passes: usize,
    /// Lateral resolution of the evaluation thermal grid.
    pub thermal_grid: (usize, usize),
    /// Base RNG seed for all randomized stages.
    pub seed: u64,
    /// Ablation: propagate external net pins into region partitions
    /// (§3, Dunlop–Kernighan terminal propagation). On by default.
    pub terminal_propagation: bool,
    /// Ablation: add thermal-resistance-reduction nets (§3.2). On by
    /// default (they only act when `alpha_temp > 0`).
    pub trr_nets: bool,
    /// Ablation: thermal net weighting (§3.1). On by default (only acts
    /// when `alpha_temp > 0`).
    pub thermal_net_weights: bool,
    /// Ablation: use PEKO-3D lower bounds as floors for TRR cell powers
    /// (§3.2, Eq. 13–15). On by default.
    pub peko_floors: bool,
    /// Ablation: weight the region depth by `α_ILV` when choosing the cut
    /// direction (§3). Off = compare raw physical extents.
    pub weighted_depth_cut: bool,
    /// Ablation: cell-shifting strategy (§4.1). The paper's whole-row
    /// solve by default; [`ShiftStrategy::AdjacentPair`] reproduces the
    /// FastPlace-style rule the paper improves upon.
    pub shift_strategy: ShiftStrategy,
    /// Worker threads for the parallel hot paths (thermal solve,
    /// objective rebuild, recursive bisection). `0` means "all hardware
    /// threads". `1` runs the legacy serial code paths; any value
    /// produces the same placement (DESIGN.md, threading model).
    pub threads: usize,
    /// CG preconditioner for the evaluation thermal solver. Geometric
    /// multigrid by default (near-grid-independent iteration counts);
    /// Jacobi remains available as the comparison baseline and is the
    /// automatic fallback when the hierarchy cannot be built
    /// (DESIGN.md §12).
    pub thermal_precond: Preconditioner,
    /// Which thermal-oracle tier each pipeline site queries
    /// (DESIGN.md §14). Full-grid everywhere by default.
    pub thermal_tiers: ThermalTierPolicy,
    /// Per-layer material/thickness overrides for the evaluation thermal
    /// model (heterogeneous stacks). `None` (the default) uses the
    /// uniform [`LayerStack`] discretization; `Some` must hold exactly
    /// `num_layers` entries.
    pub stack_layers: Option<Vec<LayerSpec>>,
}

/// Which [`ThermalTier`] each pipeline site queries (DESIGN.md §14).
///
/// Defaults to the full-grid solver everywhere, which reproduces the
/// historical pipeline bit for bit. Cheaper tiers trade accuracy for
/// speed; every non-full-grid stage-boundary solve also runs the
/// full-grid reference and records the cross-model error in its
/// [`ThermalSnapshot`](crate::ThermalSnapshot).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThermalTierPolicy {
    /// Tier for the snapshot after global placement.
    pub global: ThermalTier,
    /// Tier for the snapshot after the first coarse round; when set to
    /// [`ThermalTier::Compact`] (and `alpha_temp > 0`), coarse moves and
    /// swaps are additionally priced per-move against the compact model's
    /// cached field.
    pub coarse: ThermalTier,
    /// Tier for detailed legalization; when set to
    /// [`ThermalTier::Compact`] (and `alpha_temp > 0`), refinement slides
    /// and swaps are priced per-move against the compact model's cached
    /// field.
    pub detail: ThermalTier,
    /// Tier for the final metrics evaluation.
    pub final_eval: ThermalTier,
}

impl Default for ThermalTierPolicy {
    fn default() -> Self {
        Self {
            global: ThermalTier::FullGrid,
            coarse: ThermalTier::FullGrid,
            detail: ThermalTier::FullGrid,
            final_eval: ThermalTier::FullGrid,
        }
    }
}

impl ThermalTierPolicy {
    /// Whether any site uses `tier` (decides which oracles the engine
    /// must construct).
    pub fn uses(&self, tier: ThermalTier) -> bool {
        [self.global, self.coarse, self.detail, self.final_eval].contains(&tier)
    }

    /// Sets the tier of the named site (`global`, `coarse`, `detail`, or
    /// `final`). Returns `false` for an unknown site name.
    pub fn set(&mut self, site: &str, tier: ThermalTier) -> bool {
        match site {
            "global" => self.global = tier,
            "coarse" => self.coarse = tier,
            "detail" => self.detail = tier,
            "final" => self.final_eval = tier,
            _ => return false,
        }
        true
    }
}

/// Cell-shifting bin-boundary rule (§4.1 ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShiftStrategy {
    /// Solve each whole row of bins at once (the paper's method; conserves
    /// row width, so boundaries can never cross over).
    #[default]
    WholeRow,
    /// FastPlace-style: each boundary moves based only on its two adjacent
    /// bins' densities. Boundaries can cross over and sparse regions keep
    /// spreading even when that helps no congested bin.
    AdjacentPair,
}

impl PlacerConfig {
    /// Creates the Table 2 default configuration with the given layer
    /// count.
    pub fn new(num_layers: usize) -> Self {
        Self {
            num_layers,
            alpha_ilv: 1.0e-5,
            alpha_temp: 0.0,
            whitespace: 0.05,
            row_space: 0.25,
            stack: LayerStack::mitll_0_18um(num_layers.max(1)),
            tech: TechnologyParams::default(),
            partition_starts: 1,
            leaf_cells: 4,
            coarse_max_density: 1.10,
            coarse_shift_iterations: 50,
            coarse_move_passes: 2,
            coarse_target_region_bins: 5,
            detail_row_window: 4,
            post_opt_rounds: 0,
            legal_refine_passes: 2,
            thermal_grid: (16, 16),
            seed: 0xDAC_2007,
            terminal_propagation: true,
            trr_nets: true,
            thermal_net_weights: true,
            peko_floors: true,
            weighted_depth_cut: true,
            shift_strategy: ShiftStrategy::WholeRow,
            threads: 0,
            thermal_precond: Preconditioner::default(),
            thermal_tiers: ThermalTierPolicy::default(),
            stack_layers: None,
        }
    }

    /// Sets the interlayer via coefficient.
    pub fn with_alpha_ilv(mut self, alpha_ilv: f64) -> Self {
        self.alpha_ilv = alpha_ilv;
        self
    }

    /// Sets the thermal coefficient.
    pub fn with_alpha_temp(mut self, alpha_temp: f64) -> Self {
        self.alpha_temp = alpha_temp;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of bisection restarts (quality/effort knob).
    pub fn with_partition_starts(mut self, starts: usize) -> Self {
        self.partition_starts = starts.max(1);
        self
    }

    /// Sets the worker-thread count (`0` = all hardware threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the hard cap on cell-shifting passes per spreading phase
    /// (spreads normally stop earlier, on convergence).
    pub fn with_coarse_shift_iterations(mut self, cap: usize) -> Self {
        self.coarse_shift_iterations = cap.max(1);
        self
    }

    /// Sets the evaluation thermal solver's CG preconditioner.
    pub fn with_thermal_precond(mut self, precond: Preconditioner) -> Self {
        self.thermal_precond = precond;
        self
    }

    /// Sets the per-site thermal-oracle tier policy.
    pub fn with_thermal_tiers(mut self, tiers: ThermalTierPolicy) -> Self {
        self.thermal_tiers = tiers;
        self
    }

    /// Sets one site of the thermal-tier policy (`global`, `coarse`,
    /// `detail`, or `final`); unknown site names are ignored.
    pub fn with_thermal_tier(mut self, site: &str, tier: ThermalTier) -> Self {
        self.thermal_tiers.set(site, tier);
        self
    }

    /// Overrides the per-layer materials/thicknesses of the evaluation
    /// thermal model (heterogeneous stacks).
    pub fn with_stack_layers(mut self, layers: Vec<LayerSpec>) -> Self {
        self.stack_layers = Some(layers);
        self
    }

    /// Total coarse+detail optimization rounds the pipeline will run: the
    /// mandatory first legalization plus `post_opt_rounds`.
    pub fn rounds(&self) -> usize {
        1 + self.post_opt_rounds
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidConfig`] naming the offending
    /// parameter, or a wrapped thermal error if the stack is inconsistent.
    pub fn validate(&self) -> Result<(), PlaceError> {
        let checks: [(&'static str, f64, bool); 7] = [
            ("num_layers", self.num_layers as f64, self.num_layers >= 1),
            (
                "alpha_ilv",
                self.alpha_ilv,
                self.alpha_ilv.is_finite() && self.alpha_ilv > 0.0,
            ),
            (
                "alpha_temp",
                self.alpha_temp,
                self.alpha_temp.is_finite() && self.alpha_temp >= 0.0,
            ),
            (
                "whitespace",
                self.whitespace,
                (0.0..1.0).contains(&self.whitespace),
            ),
            ("row_space", self.row_space, self.row_space >= 0.0),
            (
                "coarse_max_density",
                self.coarse_max_density,
                self.coarse_max_density >= 1.0,
            ),
            ("leaf_cells", self.leaf_cells as f64, self.leaf_cells >= 1),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(PlaceError::InvalidConfig { name, value });
            }
        }
        if self.stack.num_layers != self.num_layers {
            return Err(PlaceError::InvalidConfig {
                name: "stack.num_layers",
                value: self.stack.num_layers as f64,
            });
        }
        self.stack.validate()?;
        if let Some(layers) = &self.stack_layers {
            if layers.len() != self.num_layers {
                return Err(PlaceError::InvalidConfig {
                    name: "stack_layers",
                    value: layers.len() as f64,
                });
            }
            for spec in layers {
                spec.validate()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = PlacerConfig::new(4);
        assert_eq!(c.num_layers, 4);
        assert_eq!(c.alpha_ilv, 1.0e-5);
        assert_eq!(c.alpha_temp, 0.0);
        assert_eq!(c.whitespace, 0.05);
        assert_eq!(c.row_space, 0.25);
        assert!((c.tech.cap_per_wirelength - 73.8e-12).abs() < 1e-18);
        assert!((c.tech.input_pin_cap - 0.35e-15).abs() < 1e-24);
        c.validate().unwrap();
    }

    #[test]
    fn power_prefactor() {
        let t = TechnologyParams::default();
        assert!((t.power_prefactor() - 0.5 * 1.0e9 * 1.8 * 1.8).abs() < 1.0);
    }

    #[test]
    fn builder_methods() {
        let c = PlacerConfig::new(2)
            .with_alpha_ilv(5.0e-7)
            .with_alpha_temp(1.0e-6)
            .with_seed(3)
            .with_partition_starts(4)
            .with_threads(2)
            .with_thermal_precond(Preconditioner::Jacobi);
        assert_eq!(c.alpha_ilv, 5.0e-7);
        assert_eq!(c.alpha_temp, 1.0e-6);
        assert_eq!(c.seed, 3);
        assert_eq!(c.partition_starts, 4);
        assert_eq!(c.threads, 2);
        assert_eq!(c.thermal_precond, Preconditioner::Jacobi);
        c.validate().unwrap();
    }

    #[test]
    fn thermal_preconditioner_defaults_to_multigrid() {
        assert_eq!(
            PlacerConfig::new(4).thermal_precond,
            Preconditioner::Multigrid { levels: 0 }
        );
    }

    #[test]
    fn threads_default_to_all_hardware() {
        assert_eq!(PlacerConfig::new(4).threads, 0);
    }

    #[test]
    fn ablation_flags_default_on_and_shift_default_whole_row() {
        let c = PlacerConfig::new(4);
        assert!(c.terminal_propagation);
        assert!(c.trr_nets);
        assert!(c.thermal_net_weights);
        assert!(c.peko_floors);
        assert!(c.weighted_depth_cut);
        assert_eq!(c.shift_strategy, ShiftStrategy::WholeRow);
        assert_eq!(ShiftStrategy::default(), ShiftStrategy::WholeRow);
        assert_eq!(c.legal_refine_passes, 2);
    }

    #[test]
    fn thermal_tiers_default_to_full_grid_everywhere() {
        let c = PlacerConfig::new(4);
        let p = c.thermal_tiers;
        assert_eq!(p.global, ThermalTier::FullGrid);
        assert_eq!(p.coarse, ThermalTier::FullGrid);
        assert_eq!(p.detail, ThermalTier::FullGrid);
        assert_eq!(p.final_eval, ThermalTier::FullGrid);
        assert!(p.uses(ThermalTier::FullGrid));
        assert!(!p.uses(ThermalTier::Compact));
        assert!(c.stack_layers.is_none());
    }

    #[test]
    fn tier_policy_sets_by_site_name() {
        let mut p = ThermalTierPolicy::default();
        assert!(p.set("coarse", ThermalTier::Compact));
        assert!(p.set("final", ThermalTier::CoarseGrid));
        assert!(!p.set("bogus", ThermalTier::Compact));
        assert_eq!(p.coarse, ThermalTier::Compact);
        assert_eq!(p.final_eval, ThermalTier::CoarseGrid);
        assert!(p.uses(ThermalTier::Compact));

        let c = PlacerConfig::new(2)
            .with_thermal_tier("detail", ThermalTier::Compact)
            .with_thermal_tiers(p);
        assert_eq!(c.thermal_tiers, p, "with_thermal_tiers replaces the policy");
    }

    #[test]
    fn stack_layers_must_match_layer_count_and_be_physical() {
        let spec = LayerSpec {
            thickness: 5.0e-6,
            conductivity: 120.0,
        };
        let c = PlacerConfig::new(2).with_stack_layers(vec![spec; 2]);
        c.validate().unwrap();

        let c = PlacerConfig::new(2).with_stack_layers(vec![spec; 3]);
        assert!(c.validate().is_err(), "wrong layer count must fail");

        let bad = LayerSpec {
            thickness: -1.0,
            conductivity: 120.0,
        };
        let c = PlacerConfig::new(2).with_stack_layers(vec![bad; 2]);
        assert!(c.validate().is_err(), "unphysical spec must fail");
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = PlacerConfig::new(4);
        c.alpha_ilv = 0.0;
        assert!(c.validate().is_err());

        let mut c = PlacerConfig::new(4);
        c.alpha_temp = -1.0;
        assert!(c.validate().is_err());

        let mut c = PlacerConfig::new(4);
        c.whitespace = 1.0;
        assert!(c.validate().is_err());

        let mut c = PlacerConfig::new(4);
        c.stack.num_layers = 2;
        assert!(c.validate().is_err());

        let c = PlacerConfig::new(0);
        assert!(c.validate().is_err());
    }
}
