//! Preflight validation of a netlist before placement.
//!
//! [`validate`] inspects a netlist (plus optional fixed positions and row
//! geometry) and returns a [`ValidationReport`] of structured
//! [`Diagnostic`]s — each with a machine-readable [`DiagnosticCode`], a
//! [`Severity`], and the offending cell/net name. Errors describe inputs
//! the pipeline cannot place meaningfully (zero-area cells, overlapping
//! fixed cells, more area than the die holds); warnings describe inputs
//! it handles but a designer probably didn't intend (degenerate nets,
//! disconnected cells).
//!
//! [`repair`] applies the safe subset of normalizations — clamping
//! degenerate cell dimensions and dropping nets with fewer than two pins
//! — and reports every change as a [`RepairAction`], so a design that
//! fails preflight for those reasons can be round-tripped into a
//! placeable one.
//!
//! The CLI surfaces both as `tvp validate` and runs [`validate`]
//! automatically before `tvp place`.

use std::fmt;
use tvp_netlist::{CellId, Netlist, NetlistBuilder};

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// The pipeline tolerates this, but it is probably unintended.
    Warning,
    /// Placement would be meaningless or fail; fix (or `--repair`) first.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Machine-readable identity of a validation finding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DiagnosticCode {
    /// A cell has non-positive width or height.
    ZeroAreaCell,
    /// A cell has NaN or infinite dimensions.
    NonFiniteCellDims,
    /// A net has no pins.
    EmptyNet,
    /// A net has exactly one pin (contributes nothing to wirelength).
    SinglePinNet,
    /// Two fixed cells occupy overlapping footprints on the same layer.
    OverlappingFixedCells,
    /// A cell is wider than the widest placement row.
    CellWiderThanRow,
    /// Total cell area exceeds the row capacity across all layers.
    AreaExceedsCapacity,
    /// A movable cell has no pins; nothing pulls it anywhere.
    DisconnectedCell,
    /// The netlist has no movable cells at all.
    NoMovableCells,
    /// The thermal objective is enabled (`alpha_temp > 0`) but no net
    /// both switches and has a driver, so the dynamic power map is
    /// all-zero and the thermal term cannot steer anything.
    ThermalObjectiveInert,
}

impl DiagnosticCode {
    /// Stable kebab-case code (what `tvp validate` prints in brackets).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::ZeroAreaCell => "zero-area-cell",
            DiagnosticCode::NonFiniteCellDims => "non-finite-cell-dims",
            DiagnosticCode::EmptyNet => "empty-net",
            DiagnosticCode::SinglePinNet => "single-pin-net",
            DiagnosticCode::OverlappingFixedCells => "overlapping-fixed-cells",
            DiagnosticCode::CellWiderThanRow => "cell-wider-than-row",
            DiagnosticCode::AreaExceedsCapacity => "area-exceeds-capacity",
            DiagnosticCode::DisconnectedCell => "disconnected-cell",
            DiagnosticCode::NoMovableCells => "no-movable-cells",
            DiagnosticCode::ThermalObjectiveInert => "thermal-objective-inert",
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One validation finding.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Machine-readable code.
    pub code: DiagnosticCode,
    /// Error or warning.
    pub severity: Severity,
    /// Name of the offending cell or net (empty for whole-design findings).
    pub subject: String,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.subject.is_empty() {
            write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
        } else {
            write!(
                f,
                "{}[{}]: {}: {}",
                self.severity, self.code, self.subject, self.message
            )
        }
    }
}

/// Everything [`validate`] found, in netlist order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ValidationReport {
    /// All findings, errors and warnings interleaved in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `true` when no error-severity finding exists (warnings are fine).
    pub fn is_placeable(&self) -> bool {
        self.errors().next().is_none()
    }

    fn push(
        &mut self,
        code: DiagnosticCode,
        severity: Severity,
        subject: impl Into<String>,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            subject: subject.into(),
            message,
        });
    }
}

/// Context [`validate`] checks the netlist against.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidateOptions<'a> {
    /// Seeded positions of fixed cells (same tuples as
    /// [`Placer::place_with_fixed`](crate::Placer::place_with_fixed)):
    /// `(cell, x, y, layer)`, centers in meters. Used for the
    /// overlapping-fixed-cells check.
    pub fixed_positions: &'a [(CellId, f64, f64, u16)],
    /// Explicit row geometry `(y_bottom, height, x_left, x_right)` in
    /// meters, per layer. When absent the row-dependent checks (cell
    /// wider than a row, area vs. capacity) are skipped: the placer then
    /// derives a chip that auto-sizes to fit the widest cell.
    pub rows: Option<&'a [(f64, f64, f64, f64)]>,
    /// Layer count the rows repeat across (ignored without `rows`;
    /// clamped to at least 1).
    pub num_layers: u16,
    /// The `α_TEMP` the design would be placed with (0 = thermal term
    /// off). Enables the inert-thermal-objective check: a positive
    /// coefficient over an all-zero power map buys nothing.
    pub alpha_temp: f64,
}

/// Validates a netlist for placement and reports every finding.
///
/// Never fails and never panics; an unplaceable design simply yields a
/// report whose [`is_placeable`](ValidationReport::is_placeable) is
/// `false`.
pub fn validate(netlist: &Netlist, options: &ValidateOptions<'_>) -> ValidationReport {
    let mut report = ValidationReport::default();

    // Per-cell geometry.
    for (id, cell) in netlist.iter_cells() {
        let (w, h) = (cell.width(), cell.height());
        if !w.is_finite() || !h.is_finite() {
            report.push(
                DiagnosticCode::NonFiniteCellDims,
                Severity::Error,
                cell.name(),
                format!("dimensions {w} x {h} m are not finite"),
            );
        } else if w <= 0.0 || h <= 0.0 {
            report.push(
                DiagnosticCode::ZeroAreaCell,
                Severity::Error,
                cell.name(),
                format!("dimensions {w} x {h} m enclose no area"),
            );
        }
        if cell.is_movable() && netlist.cell_pins(id).is_empty() {
            report.push(
                DiagnosticCode::DisconnectedCell,
                Severity::Warning,
                cell.name(),
                "movable cell has no pins; placement puts it anywhere".into(),
            );
        }
    }

    // Per-net degeneracy.
    for (_, net) in netlist.iter_nets() {
        match net.degree() {
            0 => report.push(
                DiagnosticCode::EmptyNet,
                Severity::Warning,
                net.name(),
                "net has no pins".into(),
            ),
            1 => report.push(
                DiagnosticCode::SinglePinNet,
                Severity::Warning,
                net.name(),
                "net has a single pin and contributes nothing to wirelength".into(),
            ),
            _ => {}
        }
    }

    // Whole-design placeability.
    let movable = netlist.cells().iter().filter(|c| c.is_movable()).count();
    if movable == 0 {
        report.push(
            DiagnosticCode::NoMovableCells,
            Severity::Error,
            "",
            "netlist has no movable cells; there is nothing to place".into(),
        );
    }

    // Thermal-objective sanity: with default technology parameters
    // (zero per-cell leakage) the Eq. 10 power map deposits each net's
    // dynamic power at its driver, so the map is identically zero when
    // no net both switches and has a driver — a positive alpha_temp
    // then multiplies zeros and the run pays for thermal solves that
    // cannot steer the placement.
    if options.alpha_temp > 0.0
        && netlist
            .nets()
            .iter()
            .all(|net| net.switching_activity() <= 0.0 || net.driver().is_none())
    {
        report.push(
            DiagnosticCode::ThermalObjectiveInert,
            Severity::Warning,
            "",
            format!(
                "alpha_temp = {:e} but no net both switches and has a driver: \
                 the power map is all-zero and the thermal objective term is inert",
                options.alpha_temp
            ),
        );
    }

    // Overlapping fixed cells (footprints centered on the seeded
    // positions, same layer only). Fixed sets are small, so the pairwise
    // scan is fine.
    let placed: Vec<(CellId, f64, f64, u16)> = options
        .fixed_positions
        .iter()
        .copied()
        .filter(|&(c, x, y, _)| c.index() < netlist.num_cells() && x.is_finite() && y.is_finite())
        .collect();
    for (i, &(ca, xa, ya, la)) in placed.iter().enumerate() {
        for &(cb, xb, yb, lb) in &placed[i + 1..] {
            if la != lb || ca == cb {
                continue;
            }
            let (a, b) = (netlist.cell(ca), netlist.cell(cb));
            let half_w = (a.width() + b.width()) / 2.0;
            let half_h = (a.height() + b.height()) / 2.0;
            // Strict overlap: abutting edges are legal.
            let eps = 1e-12;
            if (xa - xb).abs() < half_w - eps && (ya - yb).abs() < half_h - eps {
                report.push(
                    DiagnosticCode::OverlappingFixedCells,
                    Severity::Error,
                    a.name(),
                    format!(
                        "fixed footprint overlaps fixed cell `{}` on layer {la}",
                        b.name()
                    ),
                );
            }
        }
    }

    // Row-dependent checks.
    if let Some(rows) = options.rows {
        let widest_row = rows
            .iter()
            .map(|&(_, _, xl, xr)| xr - xl)
            .fold(0.0_f64, f64::max);
        if widest_row > 0.0 {
            for (_, cell) in netlist.iter_cells() {
                let w = cell.width();
                if w.is_finite() && w > widest_row {
                    report.push(
                        DiagnosticCode::CellWiderThanRow,
                        Severity::Error,
                        cell.name(),
                        format!("cell width {w} m exceeds the widest row span {widest_row} m"),
                    );
                }
            }
        }
        let layers = options.num_layers.max(1) as f64;
        let capacity: f64 = rows
            .iter()
            .map(|&(_, h, xl, xr)| (xr - xl).max(0.0) * h.max(0.0))
            .sum::<f64>()
            * layers;
        let area = netlist.total_cell_area();
        if area.is_finite() && capacity > 0.0 && area > capacity {
            report.push(
                DiagnosticCode::AreaExceedsCapacity,
                Severity::Error,
                "",
                format!(
                    "total cell area {area:.3e} m^2 exceeds row capacity {capacity:.3e} m^2 \
                     across {} layer(s)",
                    options.num_layers.max(1)
                ),
            );
        }
    }

    report
}

/// One normalization [`repair`] applied.
#[derive(Clone, PartialEq, Debug)]
pub struct RepairAction {
    /// The finding the action fixes.
    pub code: DiagnosticCode,
    /// Name of the repaired cell or net.
    pub subject: String,
    /// What was changed.
    pub detail: String,
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair[{}]: {}: {}",
            self.code, self.subject, self.detail
        )
    }
}

/// Applies the safe normalizations: clamps non-finite or non-positive
/// cell dimensions to the design's typical (first finite positive) value,
/// and drops nets with fewer than two pins. Cell kinds, net weights,
/// switching activities, and pin directions/offsets are preserved.
///
/// Returns the repaired netlist and the list of actions taken (empty when
/// nothing needed fixing — the netlist is still rebuilt).
///
/// # Errors
///
/// Propagates [`BuildNetlistError`](tvp_netlist::BuildNetlistError) from
/// the rebuild. This cannot happen for a netlist that itself came out of
/// a [`NetlistBuilder`], since repair only removes elements.
pub fn repair(
    netlist: &Netlist,
) -> Result<(Netlist, Vec<RepairAction>), tvp_netlist::BuildNetlistError> {
    let mut actions = Vec::new();

    let good = |v: f64| v.is_finite() && v > 0.0;
    let fallback_w = netlist
        .cells()
        .iter()
        .map(|c| c.width())
        .find(|&w| good(w))
        .unwrap_or(1e-6);
    let fallback_h = netlist
        .cells()
        .iter()
        .map(|c| c.height())
        .find(|&h| good(h))
        .unwrap_or(1e-6);

    let mut builder =
        NetlistBuilder::with_capacity(netlist.num_cells(), netlist.num_nets(), netlist.num_pins());

    let mut cell_map = Vec::with_capacity(netlist.num_cells());
    for (_, cell) in netlist.iter_cells() {
        let (mut w, mut h) = (cell.width(), cell.height());
        if !good(w) || !good(h) {
            let (ow, oh) = (w, h);
            if !good(w) {
                w = fallback_w;
            }
            if !good(h) {
                h = fallback_h;
            }
            actions.push(RepairAction {
                code: if ow.is_finite() && oh.is_finite() {
                    DiagnosticCode::ZeroAreaCell
                } else {
                    DiagnosticCode::NonFiniteCellDims
                },
                subject: cell.name().to_string(),
                detail: format!("dimensions {ow} x {oh} m clamped to {w} x {h} m"),
            });
        }
        cell_map.push(builder.add_cell_with_kind(cell.name(), w, h, cell.kind()));
    }

    for (nid, net) in netlist.iter_nets() {
        if net.degree() < 2 {
            actions.push(RepairAction {
                code: if net.degree() == 0 {
                    DiagnosticCode::EmptyNet
                } else {
                    DiagnosticCode::SinglePinNet
                },
                subject: net.name().to_string(),
                detail: format!("dropped net with {} pin(s)", net.degree()),
            });
            continue;
        }
        let id = builder.add_net(net.name());
        builder.set_net_weight(id, net.weight())?;
        builder.set_switching_activity(id, net.switching_activity())?;
        for &pin_id in netlist.net_pins(nid) {
            let pin = netlist.pin(pin_id);
            builder.connect_with_offset(
                id,
                cell_map[pin.cell().index()],
                pin.direction(),
                pin.offset_x(),
                pin.offset_y(),
            )?;
        }
    }

    Ok((builder.build()?, actions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_netlist::{CellKind, PinDirection};

    fn two_cell_net(b: &mut NetlistBuilder, name: &str, a: CellId, z: CellId) {
        let n = b.add_net(name);
        b.connect(n, a, PinDirection::Output).unwrap();
        b.connect(n, z, PinDirection::Input).unwrap();
    }

    fn codes(report: &ValidationReport) -> Vec<DiagnosticCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_netlist_is_placeable_with_no_findings() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1e-6, 1e-6);
        let z = b.add_cell("z", 1e-6, 1e-6);
        two_cell_net(&mut b, "n", a, z);
        let netlist = b.build().unwrap();
        let report = validate(&netlist, &ValidateOptions::default());
        assert!(report.is_placeable());
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn flags_zero_area_and_non_finite_dims_as_errors() {
        // The strict builder rejects these dims; permissive mode exists
        // precisely so diagnostics and repair can see them.
        let mut b = NetlistBuilder::new().permissive();
        let a = b.add_cell("flat", 1e-6, 0.0);
        let z = b.add_cell("nan", f64::NAN, 1e-6);
        two_cell_net(&mut b, "n", a, z);
        let netlist = b.build().unwrap();
        let report = validate(&netlist, &ValidateOptions::default());
        assert!(!report.is_placeable());
        assert!(codes(&report).contains(&DiagnosticCode::ZeroAreaCell));
        assert!(codes(&report).contains(&DiagnosticCode::NonFiniteCellDims));
        let flat = report.errors().find(|d| d.subject == "flat").unwrap();
        assert_eq!(flat.code, DiagnosticCode::ZeroAreaCell);
    }

    #[test]
    fn flags_degenerate_nets_as_warnings() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1e-6, 1e-6);
        let z = b.add_cell("z", 1e-6, 1e-6);
        two_cell_net(&mut b, "ok", a, z);
        b.add_net("empty");
        let single = b.add_net("single");
        b.connect(single, a, PinDirection::Output).unwrap();
        let netlist = b.build().unwrap();
        let report = validate(&netlist, &ValidateOptions::default());
        assert!(report.is_placeable(), "warnings only");
        assert_eq!(report.warnings().count(), 2);
        assert!(codes(&report).contains(&DiagnosticCode::EmptyNet));
        assert!(codes(&report).contains(&DiagnosticCode::SinglePinNet));
    }

    #[test]
    fn flags_disconnected_movable_and_all_fixed() {
        let mut b = NetlistBuilder::new();
        b.add_cell("loner", 1e-6, 1e-6);
        let netlist = b.build().unwrap();
        let report = validate(&netlist, &ValidateOptions::default());
        assert!(codes(&report).contains(&DiagnosticCode::DisconnectedCell));

        let mut b = NetlistBuilder::new();
        let a = b.add_cell_with_kind("p0", 1e-6, 1e-6, CellKind::Pad);
        let z = b.add_cell_with_kind("p1", 1e-6, 1e-6, CellKind::Fixed);
        two_cell_net(&mut b, "n", a, z);
        let netlist = b.build().unwrap();
        let report = validate(&netlist, &ValidateOptions::default());
        assert!(!report.is_placeable());
        assert!(codes(&report).contains(&DiagnosticCode::NoMovableCells));
    }

    #[test]
    fn flags_overlapping_fixed_cells_only_on_same_layer() {
        let mut b = NetlistBuilder::new();
        let f0 = b.add_cell_with_kind("f0", 2e-6, 2e-6, CellKind::Fixed);
        let f1 = b.add_cell_with_kind("f1", 2e-6, 2e-6, CellKind::Fixed);
        let m = b.add_cell("m", 1e-6, 1e-6);
        two_cell_net(&mut b, "n", f0, m);
        two_cell_net(&mut b, "n2", f1, m);
        let netlist = b.build().unwrap();

        let overlapping = [(f0, 0.0, 0.0, 0), (f1, 1e-6, 0.0, 0)];
        let report = validate(
            &netlist,
            &ValidateOptions {
                fixed_positions: &overlapping,
                ..ValidateOptions::default()
            },
        );
        assert!(codes(&report).contains(&DiagnosticCode::OverlappingFixedCells));

        for positions in [
            [(f0, 0.0, 0.0, 0), (f1, 1e-6, 0.0, 1)], // different layer
            [(f0, 0.0, 0.0, 0), (f1, 2e-6, 0.0, 0)], // abutting
        ] {
            let report = validate(
                &netlist,
                &ValidateOptions {
                    fixed_positions: &positions,
                    ..ValidateOptions::default()
                },
            );
            assert!(report.is_placeable(), "{positions:?}");
        }
    }

    #[test]
    fn row_checks_fire_only_with_rows() {
        let mut b = NetlistBuilder::new();
        let wide = b.add_cell("wide", 50e-6, 1e-6);
        let z = b.add_cell("z", 1e-6, 1e-6);
        two_cell_net(&mut b, "n", wide, z);
        let netlist = b.build().unwrap();

        let report = validate(&netlist, &ValidateOptions::default());
        assert!(report.is_placeable(), "no rows, no row checks");

        // One 10 µm x 1 µm row: the 50 µm cell cannot fit, and total area
        // exceeds capacity.
        let rows = [(0.0, 1e-6, 0.0, 10e-6)];
        let report = validate(
            &netlist,
            &ValidateOptions {
                rows: Some(&rows),
                num_layers: 1,
                ..ValidateOptions::default()
            },
        );
        assert!(codes(&report).contains(&DiagnosticCode::CellWiderThanRow));
        assert!(codes(&report).contains(&DiagnosticCode::AreaExceedsCapacity));
        // More layers give enough capacity, but the width error stays.
        let report = validate(
            &netlist,
            &ValidateOptions {
                rows: Some(&rows),
                num_layers: 8,
                ..ValidateOptions::default()
            },
        );
        assert!(codes(&report).contains(&DiagnosticCode::CellWiderThanRow));
        assert!(!codes(&report).contains(&DiagnosticCode::AreaExceedsCapacity));
    }

    #[test]
    fn inert_thermal_objective_is_a_warning_only_with_alpha_temp() {
        // A net that never switches deposits no power at its driver.
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1e-6, 1e-6);
        let z = b.add_cell("z", 1e-6, 1e-6);
        let quiet = b.add_net("n");
        b.connect(quiet, a, PinDirection::Output).unwrap();
        b.connect(quiet, z, PinDirection::Input).unwrap();
        b.set_switching_activity(quiet, 0.0).unwrap();
        // A switching net with no driver has nowhere to deposit power.
        let floating = b.add_net("f");
        b.connect(floating, a, PinDirection::Input).unwrap();
        b.connect(floating, z, PinDirection::Input).unwrap();
        let silent = b.build().unwrap();

        let report = validate(&silent, &ValidateOptions::default());
        assert!(
            !codes(&report).contains(&DiagnosticCode::ThermalObjectiveInert),
            "alpha_temp = 0 never warns"
        );
        let report = validate(
            &silent,
            &ValidateOptions {
                alpha_temp: 1.0e-4,
                ..ValidateOptions::default()
            },
        );
        assert!(codes(&report).contains(&DiagnosticCode::ThermalObjectiveInert));
        assert!(report.is_placeable(), "warning, not an error");

        // One switching net makes the power map non-zero: no warning.
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1e-6, 1e-6);
        let z = b.add_cell("z", 1e-6, 1e-6);
        let n = b.add_net("n");
        b.connect(n, a, PinDirection::Output).unwrap();
        b.connect(n, z, PinDirection::Input).unwrap();
        b.set_switching_activity(n, 0.2).unwrap();
        let switching = b.build().unwrap();
        let report = validate(
            &switching,
            &ValidateOptions {
                alpha_temp: 1.0e-4,
                ..ValidateOptions::default()
            },
        );
        assert!(!codes(&report).contains(&DiagnosticCode::ThermalObjectiveInert));
    }

    #[test]
    fn repair_round_trips_to_a_placeable_design() {
        let mut b = NetlistBuilder::new().permissive();
        let a = b.add_cell("a", 1e-6, 2e-6);
        let bad = b.add_cell("bad", f64::INFINITY, 0.0);
        two_cell_net(&mut b, "keep", a, bad);
        b.add_net("empty");
        let single = b.add_net("single");
        b.connect(single, a, PinDirection::Output).unwrap();
        let netlist = b.build().unwrap();
        assert!(!validate(&netlist, &ValidateOptions::default()).is_placeable());

        let (fixed, actions) = repair(&netlist).unwrap();
        assert_eq!(actions.len(), 3, "one clamp, two dropped nets: {actions:?}");
        let report = validate(&fixed, &ValidateOptions::default());
        assert!(report.is_placeable(), "{report:?}");
        assert_eq!(fixed.num_nets(), 1);
        // The clamped cell takes the design's typical dimensions.
        let bad_fixed = &fixed.cells()[bad.index()];
        assert_eq!(bad_fixed.width(), 1e-6);
        assert_eq!(bad_fixed.height(), 2e-6);
    }

    #[test]
    fn repair_preserves_kinds_weights_activities_and_offsets() {
        let mut b = NetlistBuilder::new();
        let pad = b.add_cell_with_kind("pad", 1e-6, 1e-6, CellKind::Pad);
        let m = b.add_cell("m", 1e-6, 1e-6);
        let n = b.add_net("n");
        b.connect_with_offset(n, pad, PinDirection::Output, 0.25e-6, -0.25e-6)
            .unwrap();
        b.connect(n, m, PinDirection::Input).unwrap();
        b.set_net_weight(n, 3.5).unwrap();
        b.set_switching_activity(n, 0.7).unwrap();
        let netlist = b.build().unwrap();

        let (fixed, actions) = repair(&netlist).unwrap();
        assert!(actions.is_empty());
        assert_eq!(fixed.cells()[0].kind(), CellKind::Pad);
        let net = &fixed.nets()[0];
        assert_eq!(net.weight(), 3.5);
        assert_eq!(net.switching_activity(), 0.7);
        let driver = fixed.pin(net.driver().unwrap());
        assert_eq!(driver.offset_x(), 0.25e-6);
        assert_eq!(driver.offset_y(), -0.25e-6);
        assert_eq!(fixed.num_pins(), netlist.num_pins());
    }

    #[test]
    fn diagnostics_render_code_and_subject() {
        let d = Diagnostic {
            code: DiagnosticCode::ZeroAreaCell,
            severity: Severity::Error,
            subject: "c7".into(),
            message: "dimensions 0 x 0 m enclose no area".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[zero-area-cell]: c7: dimensions 0 x 0 m enclose no area"
        );
    }
}
