//! The placement objective (Eq. 3) with O(degree) incremental evaluation.
//!
//! ```text
//! F = Σ_nets [ WL_i + α_ILV · ILV_i ]  +  α_TEMP · Σ_cells [ R_j · P_j ]
//! ```
//!
//! where `WL_i` is half-perimeter wirelength, `ILV_i` the net's layer span,
//! `R_j` the straight-path thermal resistance of cell `j` at its current
//! position, and `P_j` the dynamic power it dissipates (Eq. 10). Every
//! placement stage — moves, swaps, shifting, legalization — prices its
//! candidate moves through [`IncrementalObjective`].

use crate::power::PowerModel;
use crate::{Chip, Placement, PlacerConfig};
use tvp_netlist::{CellId, NetId, Netlist};
use tvp_parallel as parallel;
use tvp_thermal::ResistanceModel;

/// Minimum nets/cells per parallel chunk when rebuilding caches; smaller
/// designs run single-chunk (serially) where threading overhead would
/// dominate.
const REBUILD_MIN_CHUNK: usize = 512;
/// Minimum elements per chunk for the scalar reductions in
/// `compute_total`.
const SUM_MIN_CHUNK: usize = 4096;

/// Static (placement-independent) parts of the objective.
#[derive(Clone, Debug)]
pub struct ObjectiveModel {
    /// Interlayer via coefficient `α_ILV`, meters.
    pub alpha_ilv: f64,
    /// Thermal coefficient `α_TEMP`, meters per kelvin.
    pub alpha_temp: f64,
    power: PowerModel,
    resistance: ResistanceModel,
}

impl ObjectiveModel {
    /// Builds the objective model for a netlist on a chip.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model construction errors for invalid chip
    /// geometry.
    pub fn new(
        netlist: &Netlist,
        chip: &Chip,
        config: &PlacerConfig,
    ) -> Result<Self, crate::PlaceError> {
        // A 3D via crosses the bonding dielectric between tiers; its
        // capacitance is `C_per_ilv_length` times that crossing length.
        let power = PowerModel::new(netlist, &config.tech, chip.stack.interlayer_thickness);
        let resistance = ResistanceModel::new(chip.stack, chip.width, chip.depth)?;
        Ok(Self {
            alpha_ilv: config.alpha_ilv,
            alpha_temp: config.alpha_temp,
            power,
            resistance,
        })
    }

    /// The per-net power coefficients.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The straight-path resistance model.
    pub fn resistance(&self) -> &ResistanceModel {
        &self.resistance
    }

    /// `R_j^cell` for a cell of the given area at a position.
    pub fn cell_resistance(&self, x: f64, y: f64, layer: u16, cell_area: f64) -> f64 {
        self.resistance
            .cell_resistance(x, y, layer as usize, cell_area)
    }
}

/// Per-net geometry: HPWL components and layer span.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NetGeometry {
    /// X span of the net's pins, meters.
    pub wl_x: f64,
    /// Y span of the net's pins, meters.
    pub wl_y: f64,
    /// Layer span = number of interlayer boundaries the net crosses.
    pub ilv: f64,
}

impl NetGeometry {
    /// Half-perimeter wirelength, meters.
    #[inline]
    pub fn wirelength(&self) -> f64 {
        self.wl_x + self.wl_y
    }
}

/// Objective evaluator maintaining per-net geometry, per-cell power and
/// resistance caches, and the scalar total, all updated in O(degree) per
/// move.
#[derive(Clone, Debug)]
pub struct IncrementalObjective<'a> {
    netlist: &'a Netlist,
    model: &'a ObjectiveModel,
    placement: Placement,
    nets: Vec<NetGeometry>,
    cell_power: Vec<f64>,
    cell_resistance: Vec<f64>,
    total: f64,
}

impl<'a> IncrementalObjective<'a> {
    /// Builds the evaluator for a placement.
    pub fn new(netlist: &'a Netlist, model: &'a ObjectiveModel, placement: Placement) -> Self {
        let mut this = Self {
            netlist,
            model,
            placement,
            nets: vec![NetGeometry::default(); netlist.num_nets()],
            cell_power: vec![0.0; netlist.num_cells()],
            cell_resistance: vec![0.0; netlist.num_cells()],
            total: 0.0,
        };
        this.rebuild();
        this
    }

    /// Recomputes every cache from scratch (used after bulk placement
    /// changes and by consistency tests).
    ///
    /// Both passes are elementwise maps, parallelized over chunks of nets
    /// and cells; each element's arithmetic is independent of the
    /// chunking, so the rebuilt caches are bitwise identical for every
    /// thread count. Only the scalar reduction in `compute_total` is
    /// association-sensitive (see there).
    pub fn rebuild(&mut self) {
        let mut nets = std::mem::take(&mut self.nets);
        {
            let this: &Self = self;
            parallel::for_each_chunk_mut(&mut nets, REBUILD_MIN_CHUNK, |start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = this.compute_net_geometry(NetId::new(start + off), None);
                }
            });
        }
        self.nets = nets;

        let mut cell_power = std::mem::take(&mut self.cell_power);
        let mut cell_resistance = std::mem::take(&mut self.cell_resistance);
        {
            let this: &Self = self;
            parallel::for_each_chunk_mut2(
                &mut cell_power,
                &mut cell_resistance,
                REBUILD_MIN_CHUNK,
                |start, powers, resistances| {
                    for (off, (p, r)) in powers.iter_mut().zip(resistances.iter_mut()).enumerate() {
                        let cell = CellId::new(start + off);
                        *p = this.model.power.cell_power(this.netlist, cell, |e| {
                            let g = this.nets[e.index()];
                            (g.wirelength(), g.ilv)
                        });
                        *r = this.resistance_at(cell, this.placement.position(cell));
                    }
                },
            );
        }
        self.cell_power = cell_power;
        self.cell_resistance = cell_resistance;

        self.total = self.compute_total();
    }

    /// The objective from the current caches. One thread: the historical
    /// single-accumulator loop, bitwise identical to the serial engine.
    /// Parallel: chunk partials folded in chunk order — identical across
    /// all thread counts ≥ 2, and within ~1e-9 relative of the serial
    /// value (reassociation only).
    fn compute_total(&self) -> f64 {
        if parallel::threads() == 1 {
            let mut total = 0.0;
            for g in &self.nets {
                total += g.wirelength() + self.model.alpha_ilv * g.ilv;
            }
            if self.model.alpha_temp > 0.0 {
                for c in 0..self.netlist.num_cells() {
                    total += self.model.alpha_temp * self.cell_resistance[c] * self.cell_power[c];
                }
            }
            return total;
        }
        let alpha_ilv = self.model.alpha_ilv;
        let mut total = parallel::sum_chunks(self.nets.len(), SUM_MIN_CHUNK, |range| {
            self.nets[range]
                .iter()
                .map(|g| g.wirelength() + alpha_ilv * g.ilv)
                .sum()
        });
        if self.model.alpha_temp > 0.0 {
            let alpha_temp = self.model.alpha_temp;
            total += parallel::sum_chunks(self.cell_power.len(), SUM_MIN_CHUNK, |range| {
                self.cell_resistance[range.clone()]
                    .iter()
                    .zip(&self.cell_power[range])
                    .map(|(r, p)| alpha_temp * r * p)
                    .sum()
            });
        }
        total
    }

    /// The current objective value.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The current placement.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The objective model this evaluator prices against.
    #[inline]
    pub fn model(&self) -> &ObjectiveModel {
        self.model
    }

    /// Consumes the evaluator, returning the placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Geometry of net `e`.
    #[inline]
    pub fn net_geometry(&self, e: NetId) -> NetGeometry {
        self.nets[e.index()]
    }

    /// Cached power of `cell` (Eq. 10), W.
    #[inline]
    pub fn cell_power(&self, cell: CellId) -> f64 {
        self.cell_power[cell.index()]
    }

    /// Cached thermal resistance of `cell`, K/W.
    #[inline]
    pub fn cell_resistance(&self, cell: CellId) -> f64 {
        self.cell_resistance[cell.index()]
    }

    fn resistance_at(&self, cell: CellId, (x, y, layer): (f64, f64, u16)) -> f64 {
        if self.model.alpha_temp == 0.0 {
            return 0.0; // never read when the thermal term is off
        }
        self.model
            .cell_resistance(x, y, layer, self.netlist.cell(cell).area())
    }

    /// Net geometry with `moved` (cell, position) overriding the placement.
    fn compute_net_geometry(
        &self,
        e: NetId,
        moved: Option<(CellId, (f64, f64, u16))>,
    ) -> NetGeometry {
        let mut x0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y0 = f64::INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        let mut l0 = u16::MAX;
        let mut l1 = 0u16;
        let net = self.netlist.net(e);
        if net.pins().is_empty() {
            return NetGeometry::default();
        }
        for &p in net.pins() {
            let pin = self.netlist.pin(p);
            let cell = pin.cell();
            let (cx, cy, cl) = match moved {
                Some((m, pos)) if m == cell => pos,
                _ => self.placement.position(cell),
            };
            let px = cx + pin.offset_x();
            let py = cy + pin.offset_y();
            x0 = x0.min(px);
            x1 = x1.max(px);
            y0 = y0.min(py);
            y1 = y1.max(py);
            l0 = l0.min(cl);
            l1 = l1.max(cl);
        }
        NetGeometry {
            wl_x: x1 - x0,
            wl_y: y1 - y0,
            ilv: (l1 - l0) as f64,
        }
    }

    /// Objective change if `cell` moved to `(x, y, layer)`, without
    /// committing. Negative is an improvement.
    pub fn delta_move(&self, cell: CellId, x: f64, y: f64, layer: u16) -> f64 {
        self.delta_move_impl(cell, (x, y, layer)).0
    }

    /// Computes the delta plus the per-net geometry updates needed to
    /// commit.
    fn delta_move_impl(
        &self,
        cell: CellId,
        pos: (f64, f64, u16),
    ) -> (f64, Vec<(NetId, NetGeometry)>) {
        let alpha_ilv = self.model.alpha_ilv;
        let alpha_temp = self.model.alpha_temp;
        let mut delta = 0.0;
        let mut updates = Vec::with_capacity(self.netlist.cell_pins(cell).len());

        // Power deltas accumulate per driver; the moved cell's own terms
        // are handled separately because its resistance also changes.
        let mut moved_cell_dp = 0.0;
        for &p in self.netlist.cell_pins(cell) {
            let e = self.netlist.pin(p).net();
            let old = self.nets[e.index()];
            let new = self.compute_net_geometry(e, Some((cell, pos)));
            delta += (new.wirelength() - old.wirelength()) + alpha_ilv * (new.ilv - old.ilv);
            if alpha_temp > 0.0 {
                let dp = self.model.power.s_wl(e) * (new.wirelength() - old.wirelength())
                    + self.model.power.s_ilv(e) * (new.ilv - old.ilv);
                if dp != 0.0 {
                    if let Some(driver) = self.netlist.net_driver_cell(e) {
                        if driver == cell {
                            moved_cell_dp += dp;
                        } else {
                            delta += alpha_temp * self.cell_resistance[driver.index()] * dp;
                        }
                    }
                }
            }
            updates.push((e, new));
        }

        if alpha_temp > 0.0 {
            let c = cell.index();
            let old_r = self.cell_resistance[c];
            let new_r = self.resistance_at(cell, pos);
            let old_p = self.cell_power[c];
            let new_p = old_p + moved_cell_dp;
            delta += alpha_temp * (new_r * new_p - old_r * old_p);
        }
        (delta, updates)
    }

    /// Moves `cell` to `(x, y, layer)`, updating all caches. Returns the
    /// objective change that was applied.
    pub fn apply_move(&mut self, cell: CellId, x: f64, y: f64, layer: u16) -> f64 {
        let pos = (x, y, layer);
        let (delta, updates) = self.delta_move_impl(cell, pos);
        let alpha_temp = self.model.alpha_temp;
        for (e, new) in updates {
            if alpha_temp > 0.0 {
                let old = self.nets[e.index()];
                let dp = self.model.power.s_wl(e) * (new.wirelength() - old.wirelength())
                    + self.model.power.s_ilv(e) * (new.ilv - old.ilv);
                if dp != 0.0 {
                    if let Some(driver) = self.netlist.net_driver_cell(e) {
                        self.cell_power[driver.index()] += dp;
                    }
                }
            }
            self.nets[e.index()] = new;
        }
        if alpha_temp > 0.0 {
            self.cell_resistance[cell.index()] = self.resistance_at(cell, pos);
        }
        self.placement.set(cell, x, y, layer);
        self.total += delta;
        delta
    }

    /// Objective change for swapping the positions of two cells, without
    /// committing.
    pub fn delta_swap(&mut self, a: CellId, b: CellId) -> f64 {
        let pa = self.placement.position(a);
        let pb = self.placement.position(b);
        let d1 = self.apply_move(a, pb.0, pb.1, pb.2);
        let d2 = self.apply_move(b, pa.0, pa.1, pa.2);
        // Revert.
        self.apply_move(b, pb.0, pb.1, pb.2);
        self.apply_move(a, pa.0, pa.1, pa.2);
        d1 + d2
    }

    /// Swaps the positions of two cells. Returns the objective change.
    pub fn apply_swap(&mut self, a: CellId, b: CellId) -> f64 {
        let pa = self.placement.position(a);
        let pb = self.placement.position(b);
        let d1 = self.apply_move(a, pb.0, pb.1, pb.2);
        let d2 = self.apply_move(b, pa.0, pa.1, pa.2);
        d1 + d2
    }

    /// Sum of `WL_i` over all nets, meters.
    pub fn total_wirelength(&self) -> f64 {
        self.nets.iter().map(NetGeometry::wirelength).sum()
    }

    /// Sum of `ILV_i` over all nets.
    pub fn total_ilv(&self) -> f64 {
        self.nets.iter().map(|g| g.ilv).sum()
    }

    /// Total dynamic power at the current placement, W.
    pub fn total_power(&self) -> f64 {
        (0..self.netlist.num_nets())
            .map(|e| {
                let g = self.nets[e];
                self.model
                    .power
                    .net_power(NetId::new(e), g.wirelength(), g.ilv)
            })
            .sum()
    }

    /// Recomputes the objective from scratch and returns it (for
    /// consistency checks; does not modify the caches).
    pub fn recompute_total(&self) -> f64 {
        let mut clone = Self {
            netlist: self.netlist,
            model: self.model,
            placement: self.placement.clone(),
            nets: vec![NetGeometry::default(); self.netlist.num_nets()],
            cell_power: vec![0.0; self.netlist.num_cells()],
            cell_resistance: vec![0.0; self.netlist.num_cells()],
            total: 0.0,
        };
        clone.rebuild();
        clone.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn fixture(alpha_temp: f64) -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 120, 6.0e-10)).unwrap();
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    fn random_spread(netlist: &Netlist, chip: &Chip, seed: u64) -> Placement {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Placement::centered(netlist.num_cells(), chip);
        for i in 0..netlist.num_cells() {
            p.set(
                CellId::new(i),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
        }
        p
    }

    #[test]
    fn centered_start_has_zero_wl_and_ilv() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        assert_eq!(obj.total_wirelength(), 0.0);
        assert_eq!(obj.total_ilv(), 0.0);
        assert_eq!(obj.total(), 0.0);
        // Power is still positive: pin capacitances are placement-free.
        assert!(obj.total_power() > 0.0);
    }

    #[test]
    fn incremental_matches_scratch_wl_only() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 1);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            obj.apply_move(c, x, y, l);
        }
        let scratch = obj.recompute_total();
        assert!(
            (obj.total() - scratch).abs() < 1e-9 * scratch.abs().max(1e-12),
            "incremental {} vs scratch {}",
            obj.total(),
            scratch
        );
    }

    #[test]
    fn incremental_matches_scratch_with_thermal() {
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 3);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            obj.apply_move(c, x, y, l);
        }
        let scratch = obj.recompute_total();
        assert!(
            (obj.total() - scratch).abs() < 1e-6 * scratch.abs().max(1e-12),
            "incremental {} vs scratch {}",
            obj.total(),
            scratch
        );
    }

    #[test]
    fn delta_move_is_pure_and_matches_apply() {
        let (netlist, chip, config) = fixture(5.0e-5);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 5);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let before = obj.total();
        let c = CellId::new(17);
        let d_probe = obj.delta_move(c, chip.width * 0.1, chip.depth * 0.9, 2);
        assert_eq!(obj.total(), before, "delta_move must not mutate");
        let d_applied = obj.apply_move(c, chip.width * 0.1, chip.depth * 0.9, 2);
        assert!((d_probe - d_applied).abs() < 1e-15 * d_probe.abs().max(1e-12));
        assert!((obj.total() - (before + d_applied)).abs() < 1e-12 * before.max(1.0));
    }

    #[test]
    fn delta_swap_probe_is_reversible() {
        let (netlist, chip, config) = fixture(5.0e-5);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 6);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let before = obj.total();
        let pa = obj.placement().position(CellId::new(1));
        let pb = obj.placement().position(CellId::new(2));
        let probe = obj.delta_swap(CellId::new(1), CellId::new(2));
        assert!((obj.total() - before).abs() < 1e-9 * before.abs().max(1e-12));
        assert_eq!(obj.placement().position(CellId::new(1)), pa);
        assert_eq!(obj.placement().position(CellId::new(2)), pb);
        let applied = obj.apply_swap(CellId::new(1), CellId::new(2));
        assert!((probe - applied).abs() < 1e-9 * probe.abs().max(1e-12));
    }

    #[test]
    fn moving_apart_increases_wirelength_term() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        // Pick a cell that actually has nets (the generator can leave a
        // few cells unconnected).
        let connected = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.cell_nets(c).next().is_some())
            .expect("some connected cell");
        let d = obj.apply_move(connected, 0.0, 0.0, 0);
        assert!(d >= 0.0, "moving a cell away from the pack cannot help");
        assert!(obj.total_wirelength() > 0.0);
    }

    #[test]
    fn ilv_counts_layer_span() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        // Move one cell to layer 3: every net it touches now spans 3
        // boundaries.
        let c = CellId::new(0);
        let nets: Vec<NetId> = netlist.cell_nets(c).collect();
        obj.apply_move(c, chip.width / 2.0, chip.depth / 2.0, 3);
        for e in nets {
            assert_eq!(obj.net_geometry(e).ilv, 3.0);
        }
    }

    #[test]
    fn thermal_term_prefers_lower_layers() {
        let (netlist, chip, config) = fixture(1.0e-3);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 8);
        let obj = IncrementalObjective::new(&netlist, &model, placement);
        // Pick a driver cell and compare moving it down vs up, keeping
        // x/y identical so only the thermal term differs meaningfully.
        let driver = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.driven_nets(c).next().is_some() && obj.cell_power(c) > 0.0)
            .expect("some driver exists");
        let (x, y, _) = obj.placement().position(driver);
        let d_down = obj.delta_move(driver, x, y, 0);
        let d_up = obj.delta_move(driver, x, y, (chip.num_layers - 1) as u16);
        // The pure thermal component favors layer 0; ILV changes can mask
        // it, so compare the thermal residue after removing the ILV part.
        let g_down: f64 = netlist.cell_nets(driver).map(|_| 0.0).sum::<f64>();
        let _ = g_down;
        assert!(
            d_down - d_up < 0.0 - 1e-18 || obj.cell_power(driver) == 0.0,
            "down {d_down} should beat up {d_up} for a powered driver"
        );
    }
}
