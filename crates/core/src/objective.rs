//! The placement objective (Eq. 3) with O(1)-amortized incremental
//! evaluation.
//!
//! ```text
//! F = Σ_nets [ WL_i + α_ILV · ILV_i ]  +  α_TEMP · Σ_cells [ R_j · P_j ]
//! ```
//!
//! where `WL_i` is half-perimeter wirelength, `ILV_i` the net's layer span,
//! `R_j` the straight-path thermal resistance of cell `j` at its current
//! position, and `P_j` the dynamic power it dissipates (Eq. 10). Every
//! placement stage — moves, swaps, shifting, legalization — prices its
//! candidate moves through [`IncrementalObjective`].
//!
//! # Delta engine
//!
//! Instead of rescanning a net's full bounding box per probe, the evaluator
//! tracks per-net, per-axis extremes with their multiplicities
//! (`NetExtremes`): the min and max pin coordinate on each axis plus how
//! many pins sit exactly at each extreme. Moving a pin then prices in O(1)
//! per incident net — a full rescan is needed only when the *unique* pin at
//! an extreme retreats inward, which is amortized away over random move
//! sequences.
//!
//! Pricing (`delta_move`, `delta_moves`, `delta_swap`) is read-only and
//! allocation-free: candidate geometry, power, and resistance values are
//! staged in a reusable epoch-stamped `DeltaWorkspace` owned by the
//! evaluator, never touching the committed caches. Commit (`apply_move`,
//! `apply_moves`, `apply_swap`) prices through the same code path and then
//! patches the staged values into the caches, so a probe and its commit
//! return bitwise-identical deltas.
//!
//! Cells connecting to one net through several pins are handled by a
//! per-cell *distinct-net* CSR shared by pricing and commit: each incident
//! net is priced exactly once, with all of the cell's pins on it updated
//! together (the per-pin view double-counted such nets).
//!
//! Determinism contract (DESIGN.md §8, §11): every staged value is the
//! result of the same pin-order scan or exact O(1) extreme update, so the
//! incremental caches stay bitwise equal to a from-scratch `rebuild`
//! (`IncrementalObjective::rebuild`) after arbitrary move/swap sequences,
//! at every thread count.

use crate::power::PowerModel;
use crate::{Chip, Placement, PlacerConfig};
use std::cell::RefCell;
use tvp_netlist::{CellId, NetId, Netlist, PinId};
use tvp_parallel as parallel;
use tvp_thermal::ResistanceModel;

/// Minimum nets/cells per parallel chunk when rebuilding caches; smaller
/// designs run single-chunk (serially) where threading overhead would
/// dominate.
const REBUILD_MIN_CHUNK: usize = 512;

/// Below this many nets/cells the rebuild passes skip pool dispatch and
/// run their chunks inline (bitwise identical): BENCH_hotpaths.json showed
/// the dispatched path regressing 0.087 → 0.113 ms on small designs.
const REBUILD_SERIAL_BELOW: usize = 4096;
/// Minimum elements per chunk for the scalar reductions in
/// `compute_total`.
const SUM_MIN_CHUNK: usize = 4096;

/// Static (placement-independent) parts of the objective.
#[derive(Clone, Debug)]
pub struct ObjectiveModel {
    /// Interlayer via coefficient `α_ILV`, meters.
    pub alpha_ilv: f64,
    /// Thermal coefficient `α_TEMP`, meters per kelvin.
    pub alpha_temp: f64,
    power: PowerModel,
    resistance: ResistanceModel,
}

impl ObjectiveModel {
    /// Builds the objective model for a netlist on a chip.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model construction errors for invalid chip
    /// geometry.
    pub fn new(
        netlist: &Netlist,
        chip: &Chip,
        config: &PlacerConfig,
    ) -> Result<Self, crate::PlaceError> {
        // A 3D via crosses the bonding dielectric between tiers; its
        // capacitance is `C_per_ilv_length` times that crossing length.
        let power = PowerModel::new(netlist, &config.tech, chip.stack.interlayer_thickness);
        let resistance = ResistanceModel::new(chip.stack, chip.width, chip.depth)?;
        Ok(Self {
            alpha_ilv: config.alpha_ilv,
            alpha_temp: config.alpha_temp,
            power,
            resistance,
        })
    }

    /// The per-net power coefficients.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The straight-path resistance model.
    pub fn resistance(&self) -> &ResistanceModel {
        &self.resistance
    }

    /// `R_j^cell` for a cell of the given area at a position.
    pub fn cell_resistance(&self, x: f64, y: f64, layer: u16, cell_area: f64) -> f64 {
        self.resistance
            .cell_resistance(x, y, layer as usize, cell_area)
    }
}

/// Per-net geometry: HPWL components and layer span.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct NetGeometry {
    /// X span of the net's pins, meters.
    pub wl_x: f64,
    /// Y span of the net's pins, meters.
    pub wl_y: f64,
    /// Layer span = number of interlayer boundaries the net crosses.
    pub ilv: f64,
}

impl NetGeometry {
    /// Half-perimeter wirelength, meters.
    #[inline]
    pub fn wirelength(&self) -> f64 {
        self.wl_x + self.wl_y
    }
}

/// Per-net, per-axis extremes with multiplicities: the min/max pin
/// coordinate on each axis plus the number of pins sitting exactly at each
/// extreme. `x_min_n == 0` marks a pinless net (canonical zero geometry).
///
/// The counts are what make O(1) updates sound: a move away from an
/// extreme only forces a rescan when the count says the moved pin was the
/// *only* one there.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
struct NetExtremes {
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
    l_min: u16,
    l_max: u16,
    x_min_n: u32,
    x_max_n: u32,
    y_min_n: u32,
    y_max_n: u32,
    l_min_n: u32,
    l_max_n: u32,
}

impl NetExtremes {
    /// Derives the HPWL/ILV geometry. Bitwise identical to what the old
    /// full-scan produced: the same subtraction of the same extremes.
    #[inline]
    fn geometry(&self) -> NetGeometry {
        if self.x_min_n == 0 {
            return NetGeometry::default();
        }
        NetGeometry {
            wl_x: self.x_max - self.x_min,
            wl_y: self.y_max - self.y_min,
            ilv: (self.l_max - self.l_min) as f64,
        }
    }

    #[inline]
    fn first(px: f64, py: f64, l: u16) -> Self {
        Self {
            x_min: px,
            x_max: px,
            y_min: py,
            y_max: py,
            l_min: l,
            l_max: l,
            x_min_n: 1,
            x_max_n: 1,
            y_min_n: 1,
            y_max_n: 1,
            l_min_n: 1,
            l_max_n: 1,
        }
    }

    /// Folds one pin into the extremes (scan path).
    #[inline]
    fn accumulate(&mut self, px: f64, py: f64, l: u16) {
        if self.x_min_n == 0 {
            *self = Self::first(px, py, l);
            return;
        }
        acc_min(&mut self.x_min, &mut self.x_min_n, px);
        acc_max(&mut self.x_max, &mut self.x_max_n, px);
        acc_min(&mut self.y_min, &mut self.y_min_n, py);
        acc_max(&mut self.y_max, &mut self.y_max_n, py);
        acc_min(&mut self.l_min, &mut self.l_min_n, l);
        acc_max(&mut self.l_max, &mut self.l_max_n, l);
    }

    /// O(1) update for one pin moving `old → new` on every axis. Returns
    /// `false` when a unique extreme retreated and a rescan is required
    /// (`self` is then partially updated and must be discarded).
    #[inline]
    fn update(&mut self, (ox, oy, ol): (f64, f64, u16), (nx, ny, nl): (f64, f64, u16)) -> bool {
        upd_min(&mut self.x_min, &mut self.x_min_n, ox, nx)
            && upd_max(&mut self.x_max, &mut self.x_max_n, ox, nx)
            && upd_min(&mut self.y_min, &mut self.y_min_n, oy, ny)
            && upd_max(&mut self.y_max, &mut self.y_max_n, oy, ny)
            && upd_min(&mut self.l_min, &mut self.l_min_n, ol, nl)
            && upd_max(&mut self.l_max, &mut self.l_max_n, ol, nl)
    }
}

#[inline]
fn acc_min<T: PartialOrd + Copy>(m: &mut T, n: &mut u32, v: T) {
    if v < *m {
        *m = v;
        *n = 1;
    } else if v == *m {
        *n += 1;
    }
}

#[inline]
fn acc_max<T: PartialOrd + Copy>(m: &mut T, n: &mut u32, v: T) {
    if v > *m {
        *m = v;
        *n = 1;
    } else if v == *m {
        *n += 1;
    }
}

/// One pin leaves value `ov` and arrives at `nv`; maintain the min and its
/// multiplicity. `false` = the unique min pin retreated, rescan.
#[inline]
fn upd_min<T: PartialOrd + Copy>(m: &mut T, n: &mut u32, ov: T, nv: T) -> bool {
    if ov == *m {
        if nv < *m {
            *m = nv;
            *n = 1;
        } else if nv != *m {
            if *n == 1 {
                return false;
            }
            *n -= 1;
        }
        true
    } else {
        acc_min(m, n, nv);
        true
    }
}

/// Mirror of [`upd_min`] for the max side.
#[inline]
fn upd_max<T: PartialOrd + Copy>(m: &mut T, n: &mut u32, ov: T, nv: T) -> bool {
    if ov == *m {
        if nv > *m {
            *m = nv;
            *n = 1;
        } else if nv != *m {
            if *n == 1 {
                return false;
            }
            *n -= 1;
        }
        true
    } else {
        acc_max(m, n, nv);
        true
    }
}

/// Full pin scan of one net, with up to a handful of staged position
/// overrides (later entries win). Pin order matches the builder's net pin
/// order, so the result is deterministic and thread-count independent.
fn scan_net_extremes(
    netlist: &Netlist,
    placement: &Placement,
    e: NetId,
    moved: &[(CellId, (f64, f64, u16))],
) -> NetExtremes {
    let mut ext = NetExtremes::default();
    for &p in netlist.net_pins(e) {
        let pin = netlist.pin(p);
        let cell = pin.cell();
        let mut pos = placement.position(cell);
        for &(m, mp) in moved {
            if m == cell {
                pos = mp;
            }
        }
        ext.accumulate(pos.0 + pin.offset_x(), pos.1 + pin.offset_y(), pos.2);
    }
    ext
}

/// Count-free bounding-box scan with one cell's position overridden —
/// the arithmetic of the pre-delta-engine per-probe kernel, kept as the
/// benchmark reference and test oracle for
/// [`IncrementalObjective::delta_move_rescan`].
fn scan_net_bbox(
    netlist: &Netlist,
    placement: &Placement,
    e: NetId,
    moved: CellId,
    pos: (f64, f64, u16),
) -> NetGeometry {
    let mut first = true;
    let (mut x0, mut x1, mut y0, mut y1) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut l0, mut l1) = (0u16, 0u16);
    for &p in netlist.net_pins(e) {
        let pin = netlist.pin(p);
        let cell = pin.cell();
        let (cx, cy, cl) = if cell == moved {
            pos
        } else {
            placement.position(cell)
        };
        let (px, py) = (cx + pin.offset_x(), cy + pin.offset_y());
        if first {
            (x0, x1, y0, y1, l0, l1) = (px, px, py, py, cl, cl);
            first = false;
        } else {
            x0 = x0.min(px);
            x1 = x1.max(px);
            y0 = y0.min(py);
            y1 = y1.max(py);
            l0 = l0.min(cl);
            l1 = l1.max(cl);
        }
    }
    if first {
        return NetGeometry::default();
    }
    NetGeometry {
        wl_x: x1 - x0,
        wl_y: y1 - y0,
        ilv: (l1 - l0) as f64,
    }
}

/// Per-cell distinct-incident-net CSR: for each cell, one entry per
/// *distinct* net it touches (first-occurrence order, which equals pin
/// order for netlists without shared-net pins), with the cell's pins on
/// that net grouped together. Shared by pricing and commit so a
/// multi-pin-same-net cell prices each net exactly once.
#[derive(Clone, Debug, Default)]
struct DistinctNets {
    /// `entries[offsets[c]..offsets[c+1]]` are cell `c`'s distinct nets.
    offsets: Vec<u32>,
    /// `(net, pin_lo, pin_hi)`: pins are `pins[pin_lo..pin_hi]`.
    entries: Vec<(NetId, u32, u32)>,
    /// Pin IDs grouped by (cell, net).
    pins: Vec<PinId>,
}

impl DistinctNets {
    fn build(netlist: &Netlist) -> Self {
        let mut offsets = Vec::with_capacity(netlist.num_cells() + 1);
        let mut entries = Vec::with_capacity(netlist.num_pins());
        let mut pins = Vec::with_capacity(netlist.num_pins());
        let mut buf: Vec<(NetId, PinId)> = Vec::new();
        offsets.push(0u32);
        for c in 0..netlist.num_cells() {
            buf.clear();
            for &p in netlist.cell_pins(CellId::new(c)) {
                buf.push((netlist.pin(p).net(), p));
            }
            for i in 0..buf.len() {
                let (e, _) = buf[i];
                if buf[..i].iter().any(|&(e2, _)| e2 == e) {
                    continue; // net already emitted for this cell
                }
                let lo = pins.len() as u32;
                for &(e2, p2) in &buf[i..] {
                    if e2 == e {
                        pins.push(p2);
                    }
                }
                entries.push((e, lo, pins.len() as u32));
            }
            offsets.push(entries.len() as u32);
        }
        Self {
            offsets,
            entries,
            pins,
        }
    }

    #[inline]
    fn range(&self, cell: CellId) -> std::ops::Range<usize> {
        self.offsets[cell.index()] as usize..self.offsets[cell.index() + 1] as usize
    }
}

/// Per-(cell, net) probe-cache entry: the net's extremes *excluding* the
/// cell's own pins, plus the committed geometry. A candidate position
/// folds in with six branchless min/max ops — no rescan can ever be
/// needed, because the moved pins are not part of the reduced extremes.
///
/// Sentinels (`f64::INFINITY` / `u16::MAX` on the min side and their
/// mirrors on the max side) make a net whose only pins belong to the cell
/// fold correctly without a branch.
#[derive(Clone, Copy, Debug)]
struct ProbeEntry {
    /// Extremes of the other cells' pins on this net.
    rx0: f64,
    rx1: f64,
    ry0: f64,
    ry1: f64,
    /// Own pin offset (when the cell has exactly one pin on the net —
    /// the overwhelmingly common case; more pins fall back to the CSR).
    dx: f64,
    dy: f64,
    /// Committed geometry, for the `new − old` delta terms.
    old_wl: f64,
    old_ilv: f64,
    rl0: u16,
    rl1: u16,
    /// Number of the cell's own pins on this net.
    own_pins: u32,
}

impl Default for ProbeEntry {
    fn default() -> Self {
        Self {
            rx0: f64::INFINITY,
            rx1: f64::NEG_INFINITY,
            ry0: f64::INFINITY,
            ry1: f64::NEG_INFINITY,
            dx: 0.0,
            dy: 0.0,
            old_wl: 0.0,
            old_ilv: 0.0,
            rl0: u16::MAX,
            rl1: 0,
            own_pins: 0,
        }
    }
}

/// Builds the probe entry for distinct-net CSR slot `idx` of `cell`: the
/// net's extremes with the cell's own pins excluded, plus the committed
/// geometry. Shared by the probe cache and [`FrozenPricer`] so both
/// price bitwise identically.
fn probe_entry_at(
    netlist: &Netlist,
    placement: &Placement,
    nets: &[NetExtremes],
    cell_nets: &DistinctNets,
    idx: usize,
    cell: CellId,
) -> ProbeEntry {
    let (e, plo, phi) = cell_nets.entries[idx];
    let mut entry = ProbeEntry {
        own_pins: phi - plo,
        ..ProbeEntry::default()
    };
    if entry.own_pins == 1 {
        let pin = netlist.pin(cell_nets.pins[plo as usize]);
        entry.dx = pin.offset_x();
        entry.dy = pin.offset_y();
    }
    let ext = &nets[e.index()];
    let og = ext.geometry();
    entry.old_wl = og.wirelength();
    entry.old_ilv = og.ilv;

    // Fast path: the committed extremes carry multiplicity counts, so
    // when every extreme keeps at least one non-cell holder the
    // exclusion extremes ARE the committed ones — O(own pins) instead of
    // a full net scan, and bitwise identical to it (the counts were
    // accumulated from the very same `position + offset` arithmetic).
    // An own pin that empties an extreme's holder count falls through to
    // the scan, which recovers the unstored runner-up.
    if ext.x_min_n != 0 && netlist.net_pins(e).len() as u32 > entry.own_pins {
        let (cx, cy, cl) = placement.position(cell);
        let mut nx0 = ext.x_min_n;
        let mut nx1 = ext.x_max_n;
        let mut ny0 = ext.y_min_n;
        let mut ny1 = ext.y_max_n;
        let mut nl0 = ext.l_min_n;
        let mut nl1 = ext.l_max_n;
        for &p in &cell_nets.pins[plo as usize..phi as usize] {
            let pin = netlist.pin(p);
            let px = cx + pin.offset_x();
            let py = cy + pin.offset_y();
            nx0 -= (px == ext.x_min) as u32;
            nx1 -= (px == ext.x_max) as u32;
            ny0 -= (py == ext.y_min) as u32;
            ny1 -= (py == ext.y_max) as u32;
            nl0 -= (cl == ext.l_min) as u32;
            nl1 -= (cl == ext.l_max) as u32;
        }
        if nx0 > 0 && nx1 > 0 && ny0 > 0 && ny1 > 0 && nl0 > 0 && nl1 > 0 {
            entry.rx0 = ext.x_min;
            entry.rx1 = ext.x_max;
            entry.ry0 = ext.y_min;
            entry.ry1 = ext.y_max;
            entry.rl0 = ext.l_min;
            entry.rl1 = ext.l_max;
            return entry;
        }
    }
    for &p in netlist.net_pins(e) {
        let pin = netlist.pin(p);
        let c = pin.cell();
        if c == cell {
            continue;
        }
        let (cx, cy, cl) = placement.position(c);
        let (px, py) = (cx + pin.offset_x(), cy + pin.offset_y());
        entry.rx0 = entry.rx0.min(px);
        entry.rx1 = entry.rx1.max(px);
        entry.ry0 = entry.ry0.min(py);
        entry.ry1 = entry.ry1.max(py);
        entry.rl0 = entry.rl0.min(cl);
        entry.rl1 = entry.rl1.max(cl);
    }
    entry
}

/// Prices one net of a probe: folds the cell's pins at `pos` into the
/// entry's exclusion extremes and returns the WL + α_ILV·ILV change.
#[inline]
fn probe_entry_delta(
    netlist: &Netlist,
    cell_nets: &DistinctNets,
    idx: usize,
    entry: &ProbeEntry,
    pos: (f64, f64, u16),
    alpha_ilv: f64,
) -> f64 {
    let (mut x0, mut x1) = (entry.rx0, entry.rx1);
    let (mut y0, mut y1) = (entry.ry0, entry.ry1);
    let (mut l0, mut l1) = (entry.rl0, entry.rl1);
    if entry.own_pins == 1 {
        let (px, py) = (pos.0 + entry.dx, pos.1 + entry.dy);
        x0 = x0.min(px);
        x1 = x1.max(px);
        y0 = y0.min(py);
        y1 = y1.max(py);
        l0 = l0.min(pos.2);
        l1 = l1.max(pos.2);
    } else {
        let (_, plo, phi) = cell_nets.entries[idx];
        for &p in &cell_nets.pins[plo as usize..phi as usize] {
            let pin = netlist.pin(p);
            let (px, py) = (pos.0 + pin.offset_x(), pos.1 + pin.offset_y());
            x0 = x0.min(px);
            x1 = x1.max(px);
            y0 = y0.min(py);
            y1 = y1.max(py);
            l0 = l0.min(pos.2);
            l1 = l1.max(pos.2);
        }
    }
    let new_wl = (x1 - x0) + (y1 - y0);
    let new_ilv = (l1 - l0) as f64;
    (new_wl - entry.old_wl) + alpha_ilv * (new_ilv - entry.old_ilv)
}

/// Read-only pricing snapshot over the committed caches, for
/// data-parallel proposal generation (DESIGN.md §16). It is `Sync` —
/// unlike [`IncrementalObjective`], whose interior-mutable staging
/// workspace pins it to one thread — because it borrows only the
/// immutable caches. Only available in WL+ILV mode (`alpha_temp == 0`):
/// the thermal term needs staged power bookkeeping a snapshot cannot
/// provide.
///
/// Deltas are priced against the state at snapshot time. Callers that
/// interleave commits must re-validate each proposal against the live
/// objective before applying — the coarse batched passes do exactly
/// that.
pub struct FrozenPricer<'b> {
    netlist: &'b Netlist,
    placement: &'b Placement,
    nets: &'b [NetExtremes],
    cell_nets: &'b DistinctNets,
    alpha_ilv: f64,
}

/// Per-worker scratch for [`FrozenPricer`]: the probe entries of the one
/// cell currently being priced. Caller-owned so each worker thread
/// prices without shared mutable state. Entries are only valid against
/// the snapshot that built them — drop the scratch when taking a new
/// [`FrozenPricer`].
#[derive(Default)]
pub struct FrozenScratch {
    cell: Option<CellId>,
    entries: Vec<ProbeEntry>,
}

/// Cross-worker probe-entry memo for one [`FrozenPricer`] snapshot:
/// each cell's entries build once — by whichever worker probes the cell
/// first — and are shared read-only afterwards. Built for the coarse
/// passes' swap-partner pricing, where the candidate regions of a whole
/// batch of cells revisit the same hot-bin residents and rebuilding a
/// partner's entries is all cache-miss traffic (net extremes, CSR
/// spans, pin arrays).
///
/// Thread-invariance: entry values are a pure function of the snapshot,
/// so racing builders initialize identical values and every priced
/// delta is bitwise equal to [`FrozenScratch`] pricing, at any thread
/// count.
///
/// Entries are only valid against the snapshot that built them — take a
/// fresh cache with every new [`FrozenPricer`].
pub struct FrozenSharedCache {
    slots: Vec<std::sync::OnceLock<Box<[ProbeEntry]>>>,
}

impl FrozenSharedCache {
    /// An empty cache for a design of `num_cells` cells.
    pub fn new(num_cells: usize) -> Self {
        Self {
            slots: (0..num_cells).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    /// Drops the memoized entries of every cell whose pricing inputs a
    /// committed move may have changed: the moved cells themselves and
    /// every cell sharing a net with one. Everything else's entries
    /// stay valid against the *next* snapshot too — a net's extremes
    /// (and the positions a probe build reads) only change when one of
    /// that net's pin cells moves — which is what lets one cache
    /// persist across an entire batched pass instead of being rebuilt
    /// per snapshot.
    pub fn invalidate_moved(&mut self, netlist: &Netlist, moved: &[CellId]) {
        for &m in moved {
            for &p in netlist.cell_pins(m) {
                let e = netlist.pin(p).net();
                for &q in netlist.net_pins(e) {
                    self.slots[netlist.pin(q).cell().index()] = std::sync::OnceLock::new();
                }
            }
            self.slots[m.index()] = std::sync::OnceLock::new();
        }
    }
}

impl FrozenPricer<'_> {
    /// The snapshot's placement.
    #[inline]
    pub fn placement(&self) -> &Placement {
        self.placement
    }

    /// Objective change if `cell` moved to `(x, y, layer)`, priced
    /// against the snapshot. Bitwise equal to what
    /// [`IncrementalObjective::delta_move`] returned at snapshot time —
    /// both fold the same probe entries in the same CSR order. Repeated
    /// probes of one cell reuse its entries; a new cell rebuilds the
    /// scratch once.
    pub fn delta_move(
        &self,
        scratch: &mut FrozenScratch,
        cell: CellId,
        x: f64,
        y: f64,
        layer: u16,
    ) -> f64 {
        self.ensure_entries(scratch, cell);
        let mut delta = 0.0;
        for (entry, idx) in scratch.entries.iter().zip(self.cell_nets.range(cell)) {
            delta += probe_entry_delta(
                self.netlist,
                self.cell_nets,
                idx,
                entry,
                (x, y, layer),
                self.alpha_ilv,
            );
        }
        delta
    }

    /// Calls `push` with one `(x0, x1, y0, y1)` exclusion rectangle per
    /// own pin of `cell` whose net has at least one pin on another cell —
    /// the inputs of the coarse global pass's optimal-region medians.
    /// Reuses the very probe entries [`delta_move`](Self::delta_move)
    /// prices with (building them on miss), so each rectangle is bitwise
    /// identical to a fresh exclude-the-cell scan of the net, at
    /// O(own pins) in the common case instead of O(net degree).
    pub fn exclusion_rects(
        &self,
        scratch: &mut FrozenScratch,
        cell: CellId,
        mut push: impl FnMut(f64, f64, f64, f64),
    ) {
        self.ensure_entries(scratch, cell);
        for entry in &scratch.entries {
            // A finite min marks a non-empty exclusion (positions are
            // always finite); nets the cell fully owns are skipped, like
            // the historical scan's `others > 0` test. Multi-pin nets
            // repeat their rectangle once per own pin, matching the
            // per-pin iteration order's multiset of median inputs.
            if entry.rx0 != f64::INFINITY {
                for _ in 0..entry.own_pins {
                    push(entry.rx0, entry.rx1, entry.ry0, entry.ry1);
                }
            }
        }
    }

    /// [`delta_move`](Self::delta_move) through a [`FrozenSharedCache`]:
    /// the first probe of a cell — on any worker — builds its entries
    /// into the cache's slot; every later probe of the same cell, at
    /// any position, reuses them. Bitwise identical to the
    /// scratch-based path (the same entries fold in the same CSR
    /// order).
    pub fn delta_move_memo(
        &self,
        cache: &FrozenSharedCache,
        cell: CellId,
        x: f64,
        y: f64,
        layer: u16,
    ) -> f64 {
        let entries = cache.slots[cell.index()].get_or_init(|| {
            self.cell_nets
                .range(cell)
                .map(|idx| {
                    probe_entry_at(
                        self.netlist,
                        self.placement,
                        self.nets,
                        self.cell_nets,
                        idx,
                        cell,
                    )
                })
                .collect()
        });
        let mut delta = 0.0;
        for (entry, idx) in entries.iter().zip(self.cell_nets.range(cell)) {
            delta += probe_entry_delta(
                self.netlist,
                self.cell_nets,
                idx,
                entry,
                (x, y, layer),
                self.alpha_ilv,
            );
        }
        delta
    }

    /// Builds (or reuses) the scratch's probe entries for `cell`.
    fn ensure_entries(&self, scratch: &mut FrozenScratch, cell: CellId) {
        if scratch.cell != Some(cell) {
            scratch.entries.clear();
            scratch
                .entries
                .extend(self.cell_nets.range(cell).map(|idx| {
                    probe_entry_at(
                        self.netlist,
                        self.placement,
                        self.nets,
                        self.cell_nets,
                        idx,
                        cell,
                    )
                }));
            scratch.cell = Some(cell);
        }
    }
}

/// Reusable staging area for pricing: epoch-stamped sparse overlays over
/// the committed net/power/resistance caches, plus the staged move list
/// and per-move deltas. Pricing writes only here; commit patches the
/// staged values into the caches. Begin-of-probe cost is O(1) — clearing
/// is done by bumping the epoch, not by touching the stamp arrays.
#[derive(Clone, Debug, Default)]
struct DeltaWorkspace {
    epoch: u32,
    net_stamp: Vec<u32>,
    net_slot: Vec<u32>,
    net_entries: Vec<(NetId, NetExtremes)>,
    power_stamp: Vec<u32>,
    power_val: Vec<f64>,
    power_cells: Vec<CellId>,
    res_stamp: Vec<u32>,
    res_val: Vec<f64>,
    res_cells: Vec<CellId>,
    /// Staged moves, in pricing order (later entries win on conflict).
    moves: Vec<(CellId, (f64, f64, u16))>,
    /// Per-move deltas; commit folds them into `total` one by one, so a
    /// committed swap perturbs `total` exactly like two sequential moves.
    deltas: Vec<f64>,
    /// Scratch: drivers touched by the move being priced (deduplicated).
    drivers: Vec<CellId>,
    /// Probe cache: one [`ProbeEntry`] per distinct-net CSR entry, valid
    /// for cell `c` while `cell_probe_version[c] == probe_version`.
    /// Commits bump `probe_version`, invalidating everything at once.
    probe_version: u64,
    cell_probe_version: Vec<u64>,
    probe_entries: Vec<ProbeEntry>,
}

impl DeltaWorkspace {
    fn sized(nets: usize, cells: usize, csr_entries: usize) -> Self {
        Self {
            epoch: 0,
            net_stamp: vec![0; nets],
            net_slot: vec![0; nets],
            power_stamp: vec![0; cells],
            power_val: vec![0.0; cells],
            res_stamp: vec![0; cells],
            res_val: vec![0.0; cells],
            probe_version: 1,
            cell_probe_version: vec![0; cells],
            probe_entries: vec![ProbeEntry::default(); csr_entries],
            ..Self::default()
        }
    }

    /// Invalidates every cell's probe cache (the placement changed).
    fn invalidate_probes(&mut self) {
        if self.probe_version == u64::MAX {
            self.cell_probe_version.fill(0);
            self.probe_version = 0;
        }
        self.probe_version += 1;
    }

    /// Starts a fresh pricing sequence (invalidates all staged state).
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: reset the stamps once every 2^32 - 1 probes.
            self.net_stamp.fill(0);
            self.power_stamp.fill(0);
            self.res_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.net_entries.clear();
        self.power_cells.clear();
        self.res_cells.clear();
        self.moves.clear();
        self.deltas.clear();
    }

    /// The position a cell would have after the staged moves.
    #[inline]
    fn effective_position(&self, placement: &Placement, cell: CellId) -> (f64, f64, u16) {
        let mut pos = placement.position(cell);
        for &(m, p) in &self.moves {
            if m == cell {
                pos = p;
            }
        }
        pos
    }
}

/// One candidate relocation, for the multi-move pricing/commit APIs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CellMove {
    /// The cell to move.
    pub cell: CellId,
    /// Target x, meters (cell center).
    pub x: f64,
    /// Target y, meters (cell center).
    pub y: f64,
    /// Target device layer.
    pub layer: u16,
}

/// Objective evaluator maintaining per-net extreme caches, per-cell power
/// and resistance caches, and the scalar total. Probes price in O(1)
/// amortized per incident net, without mutating or allocating.
#[derive(Clone, Debug)]
pub struct IncrementalObjective<'a> {
    netlist: &'a Netlist,
    model: &'a ObjectiveModel,
    placement: Placement,
    nets: Vec<NetExtremes>,
    cell_power: Vec<f64>,
    cell_resistance: Vec<f64>,
    total: f64,
    cell_nets: DistinctNets,
    pricing: RefCell<DeltaWorkspace>,
}

impl<'a> IncrementalObjective<'a> {
    /// Builds the evaluator for a placement.
    pub fn new(netlist: &'a Netlist, model: &'a ObjectiveModel, placement: Placement) -> Self {
        let cell_nets = DistinctNets::build(netlist);
        let workspace = DeltaWorkspace::sized(
            netlist.num_nets(),
            netlist.num_cells(),
            cell_nets.entries.len(),
        );
        let mut this = Self {
            netlist,
            model,
            placement,
            nets: vec![NetExtremes::default(); netlist.num_nets()],
            cell_power: vec![0.0; netlist.num_cells()],
            cell_resistance: vec![0.0; netlist.num_cells()],
            total: 0.0,
            cell_nets,
            pricing: RefCell::new(workspace),
        };
        this.rebuild();
        this
    }

    /// Recomputes every cache from scratch (used after bulk placement
    /// changes and by consistency tests).
    ///
    /// Both passes are elementwise maps, parallelized over chunks of nets
    /// and cells; each element's arithmetic is independent of the
    /// chunking, so the rebuilt caches are bitwise identical for every
    /// thread count. Only the scalar reduction in `compute_total` is
    /// association-sensitive (see there).
    pub fn rebuild(&mut self) {
        let netlist = self.netlist;
        let mut nets = std::mem::take(&mut self.nets);
        {
            let placement = &self.placement;
            parallel::for_each_chunk_mut_cutoff(
                &mut nets,
                REBUILD_MIN_CHUNK,
                REBUILD_SERIAL_BELOW,
                |start, chunk| {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = scan_net_extremes(netlist, placement, NetId::new(start + off), &[]);
                    }
                },
            );
        }
        self.nets = nets;

        let mut cell_power = std::mem::take(&mut self.cell_power);
        let mut cell_resistance = std::mem::take(&mut self.cell_resistance);
        {
            let model = self.model;
            let placement = &self.placement;
            let nets = &self.nets;
            parallel::for_each_chunk_mut2_cutoff(
                &mut cell_power,
                &mut cell_resistance,
                REBUILD_MIN_CHUNK,
                REBUILD_SERIAL_BELOW,
                |start, powers, resistances| {
                    for (off, (p, r)) in powers.iter_mut().zip(resistances.iter_mut()).enumerate() {
                        let cell = CellId::new(start + off);
                        *p = model.power.cell_power(netlist, cell, |e| {
                            let g = nets[e.index()].geometry();
                            (g.wirelength(), g.ilv)
                        });
                        *r = resistance_at(model, netlist, cell, placement.position(cell));
                    }
                },
            );
        }
        self.cell_power = cell_power;
        self.cell_resistance = cell_resistance;

        self.total = self.compute_total();
        self.pricing.get_mut().invalidate_probes();
    }

    /// The objective from the current caches. One thread: the historical
    /// single-accumulator loop, bitwise identical to the serial engine.
    /// Parallel: chunk partials folded in chunk order — identical across
    /// all thread counts ≥ 2, and within ~1e-9 relative of the serial
    /// value (reassociation only).
    fn compute_total(&self) -> f64 {
        if parallel::threads() == 1 {
            let mut total = 0.0;
            for ext in &self.nets {
                let g = ext.geometry();
                total += g.wirelength() + self.model.alpha_ilv * g.ilv;
            }
            if self.model.alpha_temp > 0.0 {
                for c in 0..self.netlist.num_cells() {
                    total += self.model.alpha_temp * self.cell_resistance[c] * self.cell_power[c];
                }
            }
            return total;
        }
        let alpha_ilv = self.model.alpha_ilv;
        let nets = &self.nets;
        let mut total = parallel::sum_chunks(nets.len(), SUM_MIN_CHUNK, |range| {
            nets[range]
                .iter()
                .map(|ext| {
                    let g = ext.geometry();
                    g.wirelength() + alpha_ilv * g.ilv
                })
                .sum()
        });
        if self.model.alpha_temp > 0.0 {
            let alpha_temp = self.model.alpha_temp;
            let cell_power = &self.cell_power;
            let cell_resistance = &self.cell_resistance;
            total += parallel::sum_chunks(cell_power.len(), SUM_MIN_CHUNK, |range| {
                cell_resistance[range.clone()]
                    .iter()
                    .zip(&cell_power[range])
                    .map(|(r, p)| alpha_temp * r * p)
                    .sum()
            });
        }
        total
    }

    /// The current objective value.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The current placement.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The objective model this evaluator prices against.
    #[inline]
    pub fn model(&self) -> &ObjectiveModel {
        self.model
    }

    /// Consumes the evaluator, returning the placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Geometry of net `e`.
    #[inline]
    pub fn net_geometry(&self, e: NetId) -> NetGeometry {
        self.nets[e.index()].geometry()
    }

    /// Cached power of `cell` (Eq. 10), W.
    ///
    /// Maintained incrementally only while the thermal term is active
    /// (`alpha_temp > 0`); with the term off the cache stays at its last
    /// [`rebuild`](Self::rebuild) value — it never enters the objective
    /// then, and every consumer either scales it by `alpha_temp` or
    /// recomputes from the model.
    #[inline]
    pub fn cell_power(&self, cell: CellId) -> f64 {
        self.cell_power[cell.index()]
    }

    /// Cached thermal resistance of `cell`, K/W. Same maintenance
    /// contract as [`cell_power`](Self::cell_power).
    #[inline]
    pub fn cell_resistance(&self, cell: CellId) -> f64 {
        self.cell_resistance[cell.index()]
    }

    fn resistance_at(&self, cell: CellId, pos: (f64, f64, u16)) -> f64 {
        resistance_at(self.model, self.netlist, cell, pos)
    }

    /// The staged (if any) or committed geometry of a net.
    #[inline]
    fn staged_geometry(&self, ws: &DeltaWorkspace, e: NetId) -> NetGeometry {
        let ei = e.index();
        if ws.net_stamp[ei] == ws.epoch {
            ws.net_entries[ws.net_slot[ei] as usize].1.geometry()
        } else {
            self.nets[ei].geometry()
        }
    }

    /// From-scratch cell power against staged-or-committed geometry — the
    /// exact arithmetic `rebuild` uses, so committed power caches stay
    /// bitwise equal to a rebuild.
    fn staged_cell_power(&self, ws: &DeltaWorkspace, cell: CellId) -> f64 {
        self.model.power.cell_power(self.netlist, cell, |e| {
            let g = self.staged_geometry(ws, e);
            (g.wirelength(), g.ilv)
        })
    }

    /// Rescan of net `e` with all staged moves plus the candidate applied.
    fn rescan(
        &self,
        ws: &DeltaWorkspace,
        e: NetId,
        cell: CellId,
        pos: (f64, f64, u16),
    ) -> NetExtremes {
        let mut ext = NetExtremes::default();
        for &p in self.netlist.net_pins(e) {
            let pin = self.netlist.pin(p);
            let c = pin.cell();
            let cpos = if c == cell {
                pos
            } else {
                ws.effective_position(&self.placement, c)
            };
            ext.accumulate(cpos.0 + pin.offset_x(), cpos.1 + pin.offset_y(), cpos.2);
        }
        ext
    }

    /// Prices one move on top of the staged state, staging its geometry,
    /// power, and resistance effects. The returned delta is exactly what
    /// committing this move (after the already-staged ones) adds to
    /// `total`.
    fn price_move(&self, ws: &mut DeltaWorkspace, cell: CellId, pos: (f64, f64, u16)) -> f64 {
        let alpha_ilv = self.model.alpha_ilv;
        let alpha_temp = self.model.alpha_temp;
        let old_pos = ws.effective_position(&self.placement, cell);
        let mut delta = 0.0;
        ws.drivers.clear();

        for idx in self.cell_nets.range(cell) {
            let (e, plo, phi) = self.cell_nets.entries[idx];
            let ei = e.index();
            let staged = ws.net_stamp[ei] == ws.epoch;
            let old_ext = if staged {
                ws.net_entries[ws.net_slot[ei] as usize].1
            } else {
                self.nets[ei]
            };
            let mut new_ext = old_ext;
            let mut ok = true;
            for &p in &self.cell_nets.pins[plo as usize..phi as usize] {
                let pin = self.netlist.pin(p);
                let (dx, dy) = (pin.offset_x(), pin.offset_y());
                if !new_ext.update(
                    (old_pos.0 + dx, old_pos.1 + dy, old_pos.2),
                    (pos.0 + dx, pos.1 + dy, pos.2),
                ) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                new_ext = self.rescan(ws, e, cell, pos);
            }
            let og = old_ext.geometry();
            let ng = new_ext.geometry();
            delta += (ng.wirelength() - og.wirelength()) + alpha_ilv * (ng.ilv - og.ilv);
            if staged {
                ws.net_entries[ws.net_slot[ei] as usize].1 = new_ext;
            } else {
                ws.net_stamp[ei] = ws.epoch;
                ws.net_slot[ei] = ws.net_entries.len() as u32;
                ws.net_entries.push((e, new_ext));
            }
            if alpha_temp > 0.0 && ng != og {
                if let Some(d) = self.netlist.net_driver_cell(e) {
                    if d != cell && !ws.drivers.contains(&d) {
                        ws.drivers.push(d);
                    }
                }
            }
        }

        if alpha_temp > 0.0 {
            // Drivers of changed nets: their power changes at a fixed
            // resistance. Recomputed from scratch against the staged
            // geometry so the committed cache matches a rebuild bitwise.
            for i in 0..ws.drivers.len() {
                let d = ws.drivers[i];
                let di = d.index();
                let p_old = if ws.power_stamp[di] == ws.epoch {
                    ws.power_val[di]
                } else {
                    self.cell_power[di]
                };
                let p_new = self.staged_cell_power(ws, d);
                let r_d = if ws.res_stamp[di] == ws.epoch {
                    ws.res_val[di]
                } else {
                    self.cell_resistance[di]
                };
                delta += alpha_temp * r_d * (p_new - p_old);
                if ws.power_stamp[di] != ws.epoch {
                    ws.power_stamp[di] = ws.epoch;
                    ws.power_cells.push(d);
                }
                ws.power_val[di] = p_new;
            }
            // The moved cell: both its resistance and (if it drives any of
            // its own nets) its power change.
            let ci = cell.index();
            let p_old = if ws.power_stamp[ci] == ws.epoch {
                ws.power_val[ci]
            } else {
                self.cell_power[ci]
            };
            let p_new = self.staged_cell_power(ws, cell);
            let r_old = if ws.res_stamp[ci] == ws.epoch {
                ws.res_val[ci]
            } else {
                self.cell_resistance[ci]
            };
            let r_new = self.resistance_at(cell, pos);
            delta += alpha_temp * (r_new * p_new - r_old * p_old);
            if ws.power_stamp[ci] != ws.epoch {
                ws.power_stamp[ci] = ws.epoch;
                ws.power_cells.push(cell);
            }
            ws.power_val[ci] = p_new;
            if ws.res_stamp[ci] != ws.epoch {
                ws.res_stamp[ci] = ws.epoch;
                ws.res_cells.push(cell);
            }
            ws.res_val[ci] = r_new;
        }

        ws.moves.push((cell, pos));
        ws.deltas.push(delta);
        delta
    }

    /// Patches all staged values into the caches.
    fn commit(&mut self, ws: &DeltaWorkspace) {
        for &(e, ext) in &ws.net_entries {
            self.nets[e.index()] = ext;
        }
        for &c in &ws.power_cells {
            self.cell_power[c.index()] = ws.power_val[c.index()];
        }
        for &c in &ws.res_cells {
            self.cell_resistance[c.index()] = ws.res_val[c.index()];
        }
        for &(c, (x, y, l)) in &ws.moves {
            self.placement.set(c, x, y, l);
        }
        for &d in &ws.deltas {
            self.total += d;
        }
    }

    /// (Re)builds the probe cache for `cell`: each incident net's
    /// extremes with the cell's own pins scanned out, plus the committed
    /// geometry. O(sum of incident net degrees) — amortized away when a
    /// cell is probed with several candidates between commits, which is
    /// exactly how the coarse and detail loops price.
    fn build_probe_cache(&self, ws: &mut DeltaWorkspace, cell: CellId) {
        for idx in self.cell_nets.range(cell) {
            ws.probe_entries[idx] = probe_entry_at(
                self.netlist,
                &self.placement,
                &self.nets,
                &self.cell_nets,
                idx,
                cell,
            );
        }
        ws.cell_probe_version[cell.index()] = ws.probe_version;
    }

    /// Fast probe against the cached exclusion extremes: per incident net
    /// six branchless min/max folds, never a rescan. Bitwise equal to the
    /// staged pricing path — both subtract the same committed geometry
    /// from extremes of the same pin multiset, in the same CSR order.
    fn probe_cached(&self, ws: &DeltaWorkspace, cell: CellId, pos: (f64, f64, u16)) -> f64 {
        let alpha_ilv = self.model.alpha_ilv;
        let mut delta = 0.0;
        for idx in self.cell_nets.range(cell) {
            delta += probe_entry_delta(
                self.netlist,
                &self.cell_nets,
                idx,
                &ws.probe_entries[idx],
                pos,
                alpha_ilv,
            );
        }
        delta
    }

    /// True when the probe fast path prices exactly like the staged path:
    /// WL-only mode (the thermal term needs staged power bookkeeping).
    #[inline]
    fn fast_probes(&self) -> bool {
        self.model.alpha_temp == 0.0
    }

    /// A [`FrozenPricer`] snapshot of the committed state, or `None`
    /// when the thermal term is active (pricing then needs staged power
    /// bookkeeping a read-only snapshot cannot provide).
    pub fn frozen_pricer(&self) -> Option<FrozenPricer<'_>> {
        self.fast_probes().then(|| FrozenPricer {
            netlist: self.netlist,
            placement: &self.placement,
            nets: &self.nets,
            cell_nets: &self.cell_nets,
            alpha_ilv: self.model.alpha_ilv,
        })
    }

    /// Fast-path single-move probe; builds the cell's cache on miss.
    fn delta_move_cached(&self, cell: CellId, pos: (f64, f64, u16)) -> f64 {
        let mut ws = self.pricing.borrow_mut();
        let ws = &mut *ws;
        if ws.cell_probe_version[cell.index()] != ws.probe_version {
            self.build_probe_cache(ws, cell);
        }
        self.probe_cached(ws, cell, pos)
    }

    /// Objective change if `cell` moved to `(x, y, layer)`, without
    /// committing. Read-only and allocation-free. Negative is an
    /// improvement.
    pub fn delta_move(&self, cell: CellId, x: f64, y: f64, layer: u16) -> f64 {
        if self.fast_probes() {
            return self.delta_move_cached(cell, (x, y, layer));
        }
        let mut ws = self.pricing.borrow_mut();
        let ws = &mut *ws;
        ws.begin();
        self.price_move(ws, cell, (x, y, layer))
    }

    /// Objective change for executing `moves` in order (later moves are
    /// priced on top of earlier ones), without committing. The sum equals
    /// folding the per-move deltas left to right, exactly as
    /// [`apply_moves`](Self::apply_moves) would add them to `total`.
    pub fn delta_moves(&self, moves: &[CellMove]) -> f64 {
        match moves {
            [m] if self.fast_probes() => self.delta_move_cached(m.cell, (m.x, m.y, m.layer)),
            [a, b] if self.fast_probes() && self.nets_disjoint(a.cell, b.cell) => {
                // Disjoint cells price independently: the staged path
                // would see no cross-talk between the two legs, so two
                // cached probes summed in order are bitwise identical.
                let mut sum = self.delta_move_cached(a.cell, (a.x, a.y, a.layer));
                sum += self.delta_move_cached(b.cell, (b.x, b.y, b.layer));
                sum
            }
            _ => {
                let mut ws = self.pricing.borrow_mut();
                let ws = &mut *ws;
                ws.begin();
                let mut sum = 0.0;
                for m in moves {
                    sum += self.price_move(ws, m.cell, (m.x, m.y, m.layer));
                }
                sum
            }
        }
    }

    /// True when `a` and `b` share no net (their moves price
    /// independently). O(deg(a) · deg(b)) over the distinct-net CSR —
    /// cell degrees are small.
    fn nets_disjoint(&self, a: CellId, b: CellId) -> bool {
        if a == b {
            return false;
        }
        let ra = self.cell_nets.range(a);
        for idx in self.cell_nets.range(b) {
            let (e, _, _) = self.cell_nets.entries[idx];
            if self.cell_nets.entries[ra.clone()]
                .iter()
                .any(|&(e2, _, _)| e2 == e)
            {
                return false;
            }
        }
        true
    }

    /// Objective change for swapping the positions of two cells, without
    /// committing. Read-only: `total`, the caches, and the placement are
    /// untouched.
    pub fn delta_swap(&self, a: CellId, b: CellId) -> f64 {
        let pa = self.placement.position(a);
        let pb = self.placement.position(b);
        self.delta_moves(&[
            CellMove {
                cell: a,
                x: pb.0,
                y: pb.1,
                layer: pb.2,
            },
            CellMove {
                cell: b,
                x: pa.0,
                y: pa.1,
                layer: pa.2,
            },
        ])
    }

    /// Moves `cell` to `(x, y, layer)`, updating all caches. Returns the
    /// objective change that was applied.
    pub fn apply_move(&mut self, cell: CellId, x: f64, y: f64, layer: u16) -> f64 {
        if !self.fast_probes() {
            return self.apply_moves(&[CellMove { cell, x, y, layer }]);
        }
        // WL-only single-move commit: patch the caches in place — the
        // same per-net update-or-rescan and the same delta arithmetic as
        // the staged path, minus the staging round trip. A commit is the
        // staged path's one-move sequence, so the returned delta is
        // bitwise identical (and equals the cached probe's).
        let pos = (x, y, layer);
        let old_pos = self.placement.position(cell);
        let alpha_ilv = self.model.alpha_ilv;
        let mut delta = 0.0;
        for idx in self.cell_nets.range(cell) {
            let (e, plo, phi) = self.cell_nets.entries[idx];
            let old_ext = self.nets[e.index()];
            let mut new_ext = old_ext;
            let mut ok = true;
            for &p in &self.cell_nets.pins[plo as usize..phi as usize] {
                let pin = self.netlist.pin(p);
                let (dx, dy) = (pin.offset_x(), pin.offset_y());
                if !new_ext.update(
                    (old_pos.0 + dx, old_pos.1 + dy, old_pos.2),
                    (pos.0 + dx, pos.1 + dy, pos.2),
                ) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                new_ext = scan_net_extremes(self.netlist, &self.placement, e, &[(cell, pos)]);
            }
            let og = old_ext.geometry();
            let ng = new_ext.geometry();
            delta += (ng.wirelength() - og.wirelength()) + alpha_ilv * (ng.ilv - og.ilv);
            self.nets[e.index()] = new_ext;
        }
        self.placement.set(cell, x, y, layer);
        self.total += delta;
        self.pricing.get_mut().invalidate_probes();
        delta
    }

    /// Executes `moves` in order, updating all caches once. Returns the
    /// total objective change, bitwise equal to what
    /// [`delta_moves`](Self::delta_moves) predicted.
    pub fn apply_moves(&mut self, moves: &[CellMove]) -> f64 {
        let mut ws = self.pricing.take();
        ws.begin();
        let mut sum = 0.0;
        for m in moves {
            sum += self.price_move(&mut ws, m.cell, (m.x, m.y, m.layer));
        }
        self.commit(&ws);
        ws.invalidate_probes();
        *self.pricing.get_mut() = ws;
        sum
    }

    /// Commits one planned row of shift moves. Every entry goes through
    /// the single-move commit path in order, so the caches, `total`, and
    /// the returned summed delta are bitwise identical to calling
    /// [`apply_move`](Self::apply_move) per cell — the contract the
    /// row-parallel shift engine's serial commit phase relies on. Unlike
    /// [`apply_moves`](Self::apply_moves) this never stages: a row plan
    /// touches each cell at most once, so there is no cross-move
    /// dependence to stage for, and in WL+ILV mode every commit takes
    /// the in-place fast path.
    pub fn apply_row_moves(&mut self, moves: &[CellMove]) -> f64 {
        let mut sum = 0.0;
        for m in moves {
            sum += self.apply_move(m.cell, m.x, m.y, m.layer);
        }
        sum
    }

    /// Swaps the positions of two cells. Returns the objective change.
    pub fn apply_swap(&mut self, a: CellId, b: CellId) -> f64 {
        let pa = self.placement.position(a);
        let pb = self.placement.position(b);
        self.apply_moves(&[
            CellMove {
                cell: a,
                x: pb.0,
                y: pb.1,
                layer: pb.2,
            },
            CellMove {
                cell: b,
                x: pa.0,
                y: pa.1,
                layer: pa.2,
            },
        ])
    }

    /// Reference pricing kernel: prices a move by fully rescanning every
    /// incident net's bounding box, one scan per pin — the pre-delta-engine
    /// algorithm. Kept for benches (the speedup baseline) and as an
    /// independent oracle in tests. With `alpha_temp == 0` it returns the
    /// same delta as [`delta_move`](Self::delta_move) bitwise (for
    /// netlists without shared-net pins; with them, this kernel
    /// double-counts — the historical bug the distinct-net CSR fixes).
    pub fn delta_move_rescan(&self, cell: CellId, x: f64, y: f64, layer: u16) -> f64 {
        let pos = (x, y, layer);
        let alpha_ilv = self.model.alpha_ilv;
        let alpha_temp = self.model.alpha_temp;
        let mut delta = 0.0;
        let mut moved_cell_dp = 0.0;
        for &p in self.netlist.cell_pins(cell) {
            let e = self.netlist.pin(p).net();
            let old = self.nets[e.index()].geometry();
            let new = scan_net_bbox(self.netlist, &self.placement, e, cell, pos);
            delta += (new.wirelength() - old.wirelength()) + alpha_ilv * (new.ilv - old.ilv);
            if alpha_temp > 0.0 {
                let dp = self.model.power.s_wl(e) * (new.wirelength() - old.wirelength())
                    + self.model.power.s_ilv(e) * (new.ilv - old.ilv);
                if dp != 0.0 {
                    if let Some(driver) = self.netlist.net_driver_cell(e) {
                        if driver == cell {
                            moved_cell_dp += dp;
                        } else {
                            delta += alpha_temp * self.cell_resistance[driver.index()] * dp;
                        }
                    }
                }
            }
        }
        if alpha_temp > 0.0 {
            let c = cell.index();
            let old_r = self.cell_resistance[c];
            let new_r = self.resistance_at(cell, pos);
            let old_p = self.cell_power[c];
            let new_p = old_p + moved_cell_dp;
            delta += alpha_temp * (new_r * new_p - old_r * old_p);
        }
        delta
    }

    /// Sum of `WL_i` over all nets, meters.
    pub fn total_wirelength(&self) -> f64 {
        self.nets
            .iter()
            .map(|ext| ext.geometry().wirelength())
            .sum()
    }

    /// Sum of `ILV_i` over all nets.
    pub fn total_ilv(&self) -> f64 {
        self.nets.iter().map(|ext| ext.geometry().ilv).sum()
    }

    /// Total dynamic power at the current placement, W.
    pub fn total_power(&self) -> f64 {
        (0..self.netlist.num_nets())
            .map(|e| {
                let g = self.nets[e].geometry();
                self.model
                    .power
                    .net_power(NetId::new(e), g.wirelength(), g.ilv)
            })
            .sum()
    }

    /// Recomputes the objective from scratch and returns it (for
    /// consistency checks; does not modify the caches).
    pub fn recompute_total(&self) -> f64 {
        let mut clone = Self {
            netlist: self.netlist,
            model: self.model,
            placement: self.placement.clone(),
            nets: vec![NetExtremes::default(); self.netlist.num_nets()],
            cell_power: vec![0.0; self.netlist.num_cells()],
            cell_resistance: vec![0.0; self.netlist.num_cells()],
            total: 0.0,
            cell_nets: DistinctNets::default(),
            pricing: RefCell::new(DeltaWorkspace::default()),
        };
        clone.rebuild();
        clone.total
    }

    /// Re-syncs the accumulated `total` with a from-scratch recomputation
    /// and returns the drift (`accumulated − recomputed`) that was
    /// corrected. Called at stage boundaries so float round-off from long
    /// move sequences never compounds across stages.
    pub fn resync_total(&mut self) -> f64 {
        let fresh = self.recompute_total();
        let drift = self.total - fresh;
        self.total = fresh;
        drift
    }
}

fn resistance_at(
    model: &ObjectiveModel,
    netlist: &Netlist,
    cell: CellId,
    (x, y, layer): (f64, f64, u16),
) -> f64 {
    if model.alpha_temp == 0.0 {
        return 0.0; // never read when the thermal term is off
    }
    model.cell_resistance(x, y, layer, netlist.cell(cell).area())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use tvp_bookshelf::synth::{generate, SynthConfig};
    use tvp_netlist::{NetlistBuilder, PinDirection};

    fn fixture(alpha_temp: f64) -> (Netlist, Chip, PlacerConfig) {
        let netlist = generate(&SynthConfig::named("t", 120, 6.0e-10)).unwrap();
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        (netlist, chip, config)
    }

    fn random_spread(netlist: &Netlist, chip: &Chip, seed: u64) -> Placement {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Placement::centered(netlist.num_cells(), chip);
        for i in 0..netlist.num_cells() {
            p.set(
                CellId::new(i),
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
        }
        p
    }

    #[test]
    fn centered_start_has_zero_wl_and_ilv() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        assert_eq!(obj.total_wirelength(), 0.0);
        assert_eq!(obj.total_ilv(), 0.0);
        assert_eq!(obj.total(), 0.0);
        // Power is still positive: pin capacitances are placement-free.
        assert!(obj.total_power() > 0.0);
    }

    #[test]
    fn incremental_matches_scratch_wl_only() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 1);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            obj.apply_move(c, x, y, l);
        }
        let scratch = obj.recompute_total();
        assert!(
            (obj.total() - scratch).abs() < 1e-9 * scratch.abs().max(1e-12),
            "incremental {} vs scratch {}",
            obj.total(),
            scratch
        );
    }

    #[test]
    fn incremental_matches_scratch_with_thermal() {
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 3);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            obj.apply_move(c, x, y, l);
        }
        let scratch = obj.recompute_total();
        assert!(
            (obj.total() - scratch).abs() < 1e-6 * scratch.abs().max(1e-12),
            "incremental {} vs scratch {}",
            obj.total(),
            scratch
        );
    }

    #[test]
    fn delta_move_is_pure_and_matches_apply() {
        let (netlist, chip, config) = fixture(5.0e-5);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 5);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let before = obj.total();
        let c = CellId::new(17);
        let d_probe = obj.delta_move(c, chip.width * 0.1, chip.depth * 0.9, 2);
        assert_eq!(obj.total(), before, "delta_move must not mutate");
        let d_applied = obj.apply_move(c, chip.width * 0.1, chip.depth * 0.9, 2);
        assert_eq!(d_probe, d_applied, "probe and commit price identically");
        assert!((obj.total() - (before + d_applied)).abs() < 1e-12 * before.max(1.0));
    }

    #[test]
    fn delta_matches_rescan_reference_wl_only() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 9);
        let obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..500 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            assert_eq!(
                obj.delta_move(c, x, y, l),
                obj.delta_move_rescan(c, x, y, l),
                "incremental and full-rescan pricing must agree bitwise"
            );
        }
    }

    #[test]
    fn cached_probe_matches_staged_commit_wl_only() {
        // WL-only probes go through the exclusion-cache fast path while
        // commits price through the staged path; the two must agree
        // bitwise, for moves and for swaps (disjoint and net-sharing).
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 11);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut shared = 0;
        for i in 0..500 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            if i % 3 == 0 {
                let mut b = CellId::new(rng.random_range(0..netlist.num_cells()));
                if b == c {
                    b = CellId::new((b.index() + 1) % netlist.num_cells());
                }
                if netlist
                    .cell_nets(c)
                    .any(|e| netlist.cell_nets(b).any(|e2| e2 == e))
                {
                    shared += 1;
                }
                let probe = obj.delta_swap(c, b);
                let applied = obj.apply_swap(c, b);
                assert_eq!(probe, applied, "swap probe == staged commit");
            } else {
                let x = rng.random_range(0.0..chip.width);
                let y = rng.random_range(0.0..chip.depth);
                let l = rng.random_range(0..chip.num_layers as u16);
                let probe = obj.delta_move(c, x, y, l);
                let applied = obj.apply_move(c, x, y, l);
                assert_eq!(probe, applied, "move probe == staged commit");
            }
        }
        // The random pairs must have covered both swap pricing paths.
        assert!(shared > 0, "no net-sharing swap pair was exercised");
    }

    #[test]
    fn delta_swap_probe_leaves_everything_bitwise_unchanged() {
        let (netlist, chip, config) = fixture(5.0e-5);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 6);
        let obj = IncrementalObjective::new(&netlist, &model, placement);
        let snapshot = obj.clone();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let a = CellId::new(rng.random_range(0..netlist.num_cells()));
            let mut b = CellId::new(rng.random_range(0..netlist.num_cells()));
            if b == a {
                b = CellId::new((b.index() + 1) % netlist.num_cells());
            }
            let _ = obj.delta_swap(a, b);
        }
        // `total`, every cache, and the placement are bitwise untouched.
        assert_eq!(obj.total(), snapshot.total());
        assert_eq!(obj.nets, snapshot.nets);
        assert_eq!(obj.cell_power, snapshot.cell_power);
        assert_eq!(obj.cell_resistance, snapshot.cell_resistance);
        assert_eq!(obj.placement, snapshot.placement);
    }

    #[test]
    fn delta_swap_probe_matches_apply() {
        let (netlist, chip, config) = fixture(5.0e-5);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 6);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let before = obj.total();
        let pa = obj.placement().position(CellId::new(1));
        let pb = obj.placement().position(CellId::new(2));
        let probe = obj.delta_swap(CellId::new(1), CellId::new(2));
        assert_eq!(obj.total(), before, "probe must not perturb total");
        assert_eq!(obj.placement().position(CellId::new(1)), pa);
        assert_eq!(obj.placement().position(CellId::new(2)), pb);
        let applied = obj.apply_swap(CellId::new(1), CellId::new(2));
        assert_eq!(probe, applied, "swap probe and commit price identically");
        assert_eq!(obj.placement().position(CellId::new(1)), pb);
        assert_eq!(obj.placement().position(CellId::new(2)), pa);
    }

    #[test]
    fn shared_net_pins_price_each_net_once() {
        // A cell with two pins on the same net: the per-pin view counted
        // that net's WL/ILV delta twice. The distinct-net CSR prices it
        // once; the probe must match the true objective change.
        let mut b = NetlistBuilder::new().allow_shared_net_pins();
        let m = b.add_cell("m", 1.0e-6, 1.0e-6);
        let s = b.add_cell("s", 1.0e-6, 1.0e-6);
        let t = b.add_cell("t", 1.0e-6, 1.0e-6);
        let n = b.add_net("n");
        b.connect_with_offset(n, m, PinDirection::Output, -2.0e-7, 0.0)
            .unwrap();
        b.connect_with_offset(n, m, PinDirection::Input, 2.0e-7, 1.0e-7)
            .unwrap();
        b.connect(n, s, PinDirection::Input).unwrap();
        let n2 = b.add_net("n2");
        b.connect(n2, m, PinDirection::Input).unwrap();
        b.connect(n2, t, PinDirection::Output).unwrap();
        let netlist = b.build().unwrap();
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 21);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);

        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..50 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            let before = obj.total();
            let probe = obj.delta_move(c, x, y, l);
            let applied = obj.apply_move(c, x, y, l);
            assert_eq!(probe, applied);
            // The delta must be the true objective change, not the
            // double-counted one: compare against a from-scratch total.
            let scratch = obj.recompute_total();
            assert!(
                (before + applied - scratch).abs() < 1e-9 * scratch.abs().max(1e-15),
                "delta {applied} drifts from scratch change {}",
                scratch - before
            );
        }
        // And the caches stay bitwise equal to a rebuild.
        let mut fresh = obj.clone();
        fresh.rebuild();
        assert_eq!(obj.nets, fresh.nets);
        assert_eq!(obj.cell_power, fresh.cell_power);
        assert_eq!(obj.cell_resistance, fresh.cell_resistance);
    }

    #[test]
    fn caches_stay_bitwise_equal_to_rebuild() {
        for &alpha_temp in &[0.0, 1.0e-4] {
            let (netlist, chip, config) = fixture(alpha_temp);
            let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
            let placement = random_spread(&netlist, &chip, 31);
            let mut obj = IncrementalObjective::new(&netlist, &model, placement);
            let mut rng = SmallRng::seed_from_u64(32);
            for i in 0..500 {
                let c = CellId::new(rng.random_range(0..netlist.num_cells()));
                if i % 3 == 0 {
                    let mut b = CellId::new(rng.random_range(0..netlist.num_cells()));
                    if b == c {
                        b = CellId::new((b.index() + 1) % netlist.num_cells());
                    }
                    obj.apply_swap(c, b);
                } else {
                    obj.apply_move(
                        c,
                        rng.random_range(0.0..chip.width),
                        rng.random_range(0.0..chip.depth),
                        rng.random_range(0..chip.num_layers as u16),
                    );
                }
            }
            let mut fresh = obj.clone();
            fresh.rebuild();
            assert_eq!(obj.nets, fresh.nets, "net extremes == rebuild");
            if alpha_temp > 0.0 {
                // Thermal caches are only maintained while the term is
                // active; with it off they freeze at the rebuild values.
                assert_eq!(obj.cell_power, fresh.cell_power, "cell power == rebuild");
                assert_eq!(
                    obj.cell_resistance, fresh.cell_resistance,
                    "cell resistance == rebuild"
                );
            }
        }
    }

    #[test]
    fn total_drift_stays_bounded_and_resyncs() {
        let (netlist, chip, config) = fixture(1.0e-4);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 41);
        let mut obj = IncrementalObjective::new(&netlist, &model, placement);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            obj.apply_move(
                c,
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
        }
        let scratch = obj.recompute_total();
        assert!(
            (obj.total() - scratch).abs() < 1e-6 * scratch.abs().max(1e-12),
            "accumulated {} vs recomputed {} after 10k moves",
            obj.total(),
            scratch
        );
        let drift = obj.resync_total();
        assert!(drift.abs() < 1e-6 * scratch.abs().max(1e-12));
        assert_eq!(
            obj.total(),
            scratch,
            "resync pins total to the recomputation"
        );
        // A second resync is a no-op.
        assert_eq!(obj.resync_total(), 0.0);
    }

    #[test]
    fn moving_apart_increases_wirelength_term() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        // Pick a cell that actually has nets (the generator can leave a
        // few cells unconnected).
        let connected = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.cell_nets(c).next().is_some())
            .expect("some connected cell");
        let d = obj.apply_move(connected, 0.0, 0.0, 0);
        assert!(d >= 0.0, "moving a cell away from the pack cannot help");
        assert!(obj.total_wirelength() > 0.0);
    }

    #[test]
    fn ilv_counts_layer_span() {
        let (netlist, chip, config) = fixture(0.0);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        // Move one cell to layer 3: every net it touches now spans 3
        // boundaries.
        let c = CellId::new(0);
        let nets: Vec<NetId> = netlist.cell_nets(c).collect();
        obj.apply_move(c, chip.width / 2.0, chip.depth / 2.0, 3);
        for e in nets {
            assert_eq!(obj.net_geometry(e).ilv, 3.0);
        }
    }

    #[test]
    fn thermal_term_prefers_lower_layers() {
        let (netlist, chip, config) = fixture(1.0e-3);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let placement = random_spread(&netlist, &chip, 8);
        let obj = IncrementalObjective::new(&netlist, &model, placement);
        // Pick a driver cell and compare moving it down vs up, keeping
        // x/y identical so only the thermal term differs meaningfully.
        let driver = (0..netlist.num_cells())
            .map(CellId::new)
            .find(|&c| netlist.driven_nets(c).next().is_some() && obj.cell_power(c) > 0.0)
            .expect("some driver exists");
        let (x, y, _) = obj.placement().position(driver);
        let d_down = obj.delta_move(driver, x, y, 0);
        let d_up = obj.delta_move(driver, x, y, (chip.num_layers - 1) as u16);
        assert!(
            d_down - d_up < 0.0 - 1e-18 || obj.cell_power(driver) == 0.0,
            "down {d_down} should beat up {d_up} for a powered driver"
        );
    }

    #[test]
    fn extreme_multiplicity_survives_coincident_pins() {
        // Three cells at the same x: moving one off the shared extreme
        // must not force a stale bbox (the multiplicity path), and moving
        // the unique extreme must trigger a correct rescan.
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("c0", 1.0e-6, 1.0e-6);
        let c1 = b.add_cell("c1", 1.0e-6, 1.0e-6);
        let c2 = b.add_cell("c2", 1.0e-6, 1.0e-6);
        let n = b.add_net("n");
        b.connect(n, c0, PinDirection::Output).unwrap();
        b.connect(n, c1, PinDirection::Input).unwrap();
        b.connect(n, c2, PinDirection::Input).unwrap();
        let netlist = b.build().unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut p = Placement::centered(3, &chip);
        let (w, d) = (chip.width, chip.depth);
        p.set(c0, 0.0, 0.0, 0);
        p.set(c1, 0.0, d * 0.5, 0);
        p.set(c2, w * 0.5, d * 0.25, 0);
        let mut obj = IncrementalObjective::new(&netlist, &model, p);
        let e = NetId::new(0);
        assert_eq!(obj.net_geometry(e).wl_x, w * 0.5);
        // Two pins share x_min = 0; moving one away keeps the extreme.
        obj.apply_move(c1, w * 0.25, d * 0.5, 0);
        assert_eq!(obj.net_geometry(e).wl_x, w * 0.5);
        // Moving the last pin at x_min forces the rescan path.
        obj.apply_move(c0, w * 0.5, 0.0, 0);
        assert_eq!(obj.net_geometry(e).wl_x, w * 0.25);
        let mut fresh = obj.clone();
        fresh.rebuild();
        assert_eq!(obj.nets, fresh.nets);
    }
}
