//! The complete placement pipeline (paper §6).

use crate::coarse::coarse_legalize;
use crate::detail::{check_legal, detail_legalize, refine_legal, LegalizeStats};
use crate::metrics::{self, PlacementMetrics};
use crate::objective::{IncrementalObjective, ObjectiveModel};
use crate::{Chip, PlaceError, Placement, PlacerConfig};
use std::time::{Duration, Instant};
use tvp_netlist::Netlist;
use tvp_thermal::{ThermalSimulator, ThermalSolveContext};

/// Wall-clock duration of each pipeline stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StageTimings {
    /// Recursive-bisection global placement.
    pub global: Duration,
    /// Coarse legalization (moves/swaps + cell shifting).
    pub coarse: Duration,
    /// Detailed legalization.
    pub detail: Duration,
    /// Whole pipeline including metric evaluation.
    pub total: Duration,
}

/// Temperatures and thermal-solver effort at one pipeline stage boundary.
///
/// The pipeline evaluates the thermal field after every stage through one
/// shared CG context, so each snapshot after the first warm-starts from
/// the previous stage's field; `cg_iterations` records what that saved.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThermalSnapshot {
    /// Pipeline stage this snapshot was taken after.
    pub stage: &'static str,
    /// Mean cell temperature, °C.
    pub avg_temperature: f64,
    /// Maximum device temperature, °C.
    pub max_temperature: f64,
    /// CG iterations the solve consumed.
    pub cg_iterations: usize,
    /// Whether the solve warm-started from the previous stage's field.
    pub warm_started: bool,
}

/// Everything the pipeline produces.
#[derive(Clone, PartialEq, Debug)]
pub struct PlacementResult {
    /// The final legal placement.
    pub placement: Placement,
    /// Quality metrics (wirelength, vias, power, temperatures).
    pub metrics: PlacementMetrics,
    /// Detailed-legalization statistics of the final round.
    pub legalize: LegalizeStats,
    /// Per-stage wall-clock timings (Fig. 10 material).
    pub timings: StageTimings,
    /// Thermal field after each pipeline stage, all solved through one
    /// warm-started CG context (the last entry matches `metrics`).
    pub thermal_trajectory: Vec<ThermalSnapshot>,
    /// The chip geometry the netlist was placed on.
    pub chip: Chip,
}

/// The thermal/via-aware 3D placer.
///
/// # Example
///
/// ```
/// use tvp_core::{Placer, PlacerConfig};
/// use tvp_bookshelf::synth::{SynthConfig, generate};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = generate(&SynthConfig::named("demo", 150, 0.75e-9))?;
/// let result = Placer::new(PlacerConfig::new(2)).place(&netlist)?;
/// assert!(result.metrics.wirelength > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self { config }
    }

    /// The placer's configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs the full §6 pipeline: TRR-net-aware global placement, coarse
    /// legalization, detailed legalization, and optional post-optimization
    /// rounds; then evaluates metrics (including the thermal simulation).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] for an invalid configuration, an empty
    /// netlist, or a thermal-model failure.
    ///
    /// # Panics
    ///
    /// Panics if detailed legalization produces an illegal placement —
    /// this is an internal invariant; failing it is a bug, not a usage
    /// error.
    pub fn place(&self, netlist: &Netlist) -> Result<PlacementResult, PlaceError> {
        self.place_with_fixed(netlist, &[])
    }

    /// Like [`place`](Self::place), but seeds positions for fixed cells
    /// (pads, pre-placed macros) before placement. Fixed cells never move;
    /// their positions steer terminal propagation and the objective.
    /// Positions are clamped to the derived chip footprint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`place`](Self::place).
    pub fn place_with_fixed(
        &self,
        netlist: &Netlist,
        fixed_positions: &[(tvp_netlist::CellId, f64, f64, u16)],
    ) -> Result<PlacementResult, PlaceError> {
        // All parallel hot paths below (thermal CG, objective rebuilds,
        // recursive bisection) read the effective thread count from this
        // scope; `config.threads == 0` means all hardware threads.
        tvp_parallel::with_threads(self.config.threads, || {
            self.place_with_fixed_inner(netlist, fixed_positions)
        })
    }

    fn place_with_fixed_inner(
        &self,
        netlist: &Netlist,
        fixed_positions: &[(tvp_netlist::CellId, f64, f64, u16)],
    ) -> Result<PlacementResult, PlaceError> {
        let start = Instant::now();
        let config = &self.config;
        let chip = Chip::from_netlist(netlist, config)?;
        let model = ObjectiveModel::new(netlist, &chip, config)?;

        // One simulator + CG context for every thermal evaluation of this
        // run: the Jacobi preconditioner is built once, and each stage's
        // solve warm-starts from the previous stage's field.
        let (nx, ny) = config.thermal_grid;
        let sim = ThermalSimulator::new(chip.stack, chip.width, chip.depth, nx, ny)?;
        let mut thermal_ctx = sim.context();
        let mut trajectory: Vec<ThermalSnapshot> = Vec::new();

        let t_global = Instant::now();
        let placement =
            crate::global::global_place_with_fixed(netlist, &chip, &model, config, fixed_positions);
        let global_time = t_global.elapsed();

        let mut objective = IncrementalObjective::new(netlist, &model, placement);
        snapshot(
            "global",
            netlist,
            &chip,
            &model,
            &objective,
            &sim,
            &mut thermal_ctx,
            &mut trajectory,
        )?;

        let t_coarse = Instant::now();
        coarse_legalize(&mut objective, netlist, &chip, config);
        let mut coarse_time = t_coarse.elapsed();
        snapshot(
            "coarse",
            netlist,
            &chip,
            &model,
            &objective,
            &sim,
            &mut thermal_ctx,
            &mut trajectory,
        )?;

        let t_detail = Instant::now();
        let mut legalize =
            detail_legalize(&mut objective, netlist, &chip, config.detail_row_window);
        refine_legal(&mut objective, netlist, &chip, config.legal_refine_passes);
        let mut detail_time = t_detail.elapsed();

        // §6: coarse and detailed legalization can be repeated for further
        // optimization (the §7 effort experiment runs up to 10 rounds).
        for _ in 0..config.post_opt_rounds {
            let t = Instant::now();
            coarse_legalize(&mut objective, netlist, &chip, config);
            coarse_time += t.elapsed();
            let t = Instant::now();
            legalize = detail_legalize(&mut objective, netlist, &chip, config.detail_row_window);
            refine_legal(&mut objective, netlist, &chip, config.legal_refine_passes);
            detail_time += t.elapsed();
        }

        if let Some(violation) = check_legal(netlist, &chip, objective.placement()) {
            panic!("detailed legalization produced an illegal placement: {violation}");
        }

        let metrics =
            metrics::compute_with(netlist, &chip, &model, &objective, &sim, &mut thermal_ctx)?;
        let stats = thermal_ctx.last_stats().expect("metrics ran a solve");
        trajectory.push(ThermalSnapshot {
            stage: "final",
            avg_temperature: metrics.avg_temperature,
            max_temperature: metrics.max_temperature,
            cg_iterations: stats.iterations,
            warm_started: stats.warm_started,
        });
        Ok(PlacementResult {
            placement: objective.into_placement(),
            metrics,
            legalize,
            timings: StageTimings {
                global: global_time,
                coarse: coarse_time,
                detail: detail_time,
                total: start.elapsed(),
            },
            thermal_trajectory: trajectory,
            chip,
        })
    }
}

/// Solves the thermal field of the current placement through the shared
/// warm-started context and appends the outcome to the trajectory.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    stage: &'static str,
    netlist: &Netlist,
    chip: &Chip,
    model: &ObjectiveModel,
    objective: &IncrementalObjective<'_>,
    sim: &ThermalSimulator,
    thermal_ctx: &mut ThermalSolveContext,
    trajectory: &mut Vec<ThermalSnapshot>,
) -> Result<(), PlaceError> {
    let (avg, max) =
        metrics::solve_temperatures(netlist, chip, model, objective, sim, thermal_ctx)?;
    let stats = thermal_ctx.last_stats().expect("solve just ran");
    trajectory.push(ThermalSnapshot {
        stage,
        avg_temperature: avg,
        max_temperature: max,
        cg_iterations: stats.iterations,
        warm_started: stats.warm_started,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn end_to_end_pipeline_is_legal_and_reports_metrics() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        assert_eq!(result.legalize.placed, 250);
        assert!(result.metrics.wirelength > 0.0);
        assert!(result.metrics.avg_temperature > 0.0);
        assert!(result.timings.total >= result.timings.global);
        // check_legal ran inside place(); re-verify from the outside.
        assert_eq!(
            crate::detail::check_legal(&netlist, &result.chip, &result.placement),
            None
        );
    }

    #[test]
    fn empty_netlist_is_an_error() {
        let netlist = tvp_netlist::NetlistBuilder::new().build().unwrap();
        let err = Placer::new(PlacerConfig::new(2))
            .place(&netlist)
            .unwrap_err();
        assert!(matches!(err, PlaceError::EmptyNetlist));
    }

    #[test]
    fn invalid_config_is_an_error() {
        let netlist = generate(&SynthConfig::named("t", 50, 2.5e-10)).unwrap();
        let config = PlacerConfig::new(2).with_alpha_ilv(0.0);
        let err = Placer::new(config).place(&netlist).unwrap_err();
        assert!(matches!(err, PlaceError::InvalidConfig { .. }));
    }

    #[test]
    fn post_opt_rounds_do_not_break_legality() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let mut config = PlacerConfig::new(2);
        config.post_opt_rounds = 1;
        let result = Placer::new(config).place(&netlist).unwrap();
        assert_eq!(
            crate::detail::check_legal(&netlist, &result.chip, &result.placement),
            None
        );
    }

    #[test]
    fn fixed_pads_pull_connected_cells() {
        // A pad fixed at the left edge should attract its sinks compared
        // to one fixed at the right edge.
        use tvp_netlist::{CellKind, NetlistBuilder, PinDirection};
        let mut b = NetlistBuilder::new();
        let pad = b.add_cell_with_kind("pad", 1.0e-6, 1.58e-6, CellKind::Pad);
        let mut sinks = Vec::new();
        for i in 0..240 {
            sinks.push(b.add_cell(format!("c{i}"), 2.0e-6, 1.58e-6));
        }
        // The pad drives several bus nets; the rest form a background mesh.
        for chunk in sinks.chunks(4) {
            let n = b.add_net(format!("bg{}", chunk[0].index()));
            b.connect(n, chunk[0], PinDirection::Output).unwrap();
            for &c in &chunk[1..] {
                b.connect(n, c, PinDirection::Input).unwrap();
            }
        }
        // Bus sinks spread across the index space so clustering doesn't
        // bind them to one background region.
        let bus_sinks: Vec<_> = sinks.iter().step_by(8).copied().collect();
        for (i, chunk) in bus_sinks.chunks(6).enumerate() {
            let bus = b.add_net(format!("bus{i}"));
            if i == 0 {
                b.connect(bus, pad, PinDirection::Output).unwrap();
            } else {
                b.connect(bus, pad, PinDirection::Input).unwrap();
            }
            for &c in chunk {
                b.connect(
                    bus,
                    c,
                    if i == 0 {
                        PinDirection::Input
                    } else if c == chunk[0] {
                        PinDirection::Output
                    } else {
                        PinDirection::Input
                    },
                )
                .unwrap();
            }
        }
        let netlist = b.build().unwrap();
        let placer = Placer::new(PlacerConfig::new(1));
        let left = placer
            .place_with_fixed(&netlist, &[(pad, 0.0, 0.0, 0)])
            .unwrap();
        let right_x = left.chip.width;
        let right = placer
            .place_with_fixed(&netlist, &[(pad, right_x, 0.0, 0)])
            .unwrap();
        let mean_x = |r: &PlacementResult| -> f64 {
            bus_sinks.iter().map(|&c| r.placement.x(c)).sum::<f64>() / bus_sinks.len() as f64
        };
        assert_eq!(left.placement.position(pad).0, 0.0, "pad must not move");
        assert!(
            mean_x(&left) < mean_x(&right),
            "bus sinks should follow the pad: left {} vs right {}",
            mean_x(&left),
            mean_x(&right)
        );
    }

    #[test]
    fn thermal_trajectory_warm_starts_and_saves_iterations() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        let t = &result.thermal_trajectory;
        assert_eq!(t.len(), 3, "global, coarse, final");
        assert_eq!(t[0].stage, "global");
        assert_eq!(t.last().unwrap().stage, "final");
        assert!(!t[0].warm_started, "first solve is cold");
        assert!(t[1..].iter().all(|s| s.warm_started));
        // Legalization rearranges the whole power map, so stage-boundary
        // warm starts are not guaranteed to *save* iterations (the small
        // per-move perturbation case is covered in tvp-thermal); they must
        // at least never cost materially more than the cold solve.
        let cold = t[0].cg_iterations;
        assert!(
            t[1..].iter().all(|s| s.cg_iterations <= cold + cold / 10),
            "warm solves should not converge slower: {t:?}"
        );
        // The last snapshot is exactly the reported metrics solve.
        assert_eq!(
            t.last().unwrap().avg_temperature,
            result.metrics.avg_temperature
        );
        assert_eq!(
            t.last().unwrap().max_temperature,
            result.metrics.max_temperature
        );
    }

    #[test]
    fn placement_is_identical_for_any_thread_count() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let serial = Placer::new(PlacerConfig::new(4).with_threads(1))
            .place(&netlist)
            .unwrap();
        let parallel = Placer::new(PlacerConfig::new(4).with_threads(4))
            .place(&netlist)
            .unwrap();
        assert_eq!(serial.placement, parallel.placement);
        assert_eq!(serial.metrics.wirelength, parallel.metrics.wirelength);
        assert_eq!(serial.metrics.ilv_count, parallel.metrics.ilv_count);
        // Temperatures go through CG with reordered reductions; they agree
        // to far better than the solver tolerance.
        let rel = (serial.metrics.avg_temperature - parallel.metrics.avg_temperature).abs()
            / serial.metrics.avg_temperature;
        assert!(rel < 1e-6, "temperature drift {rel}");
    }

    #[test]
    fn thermal_run_reduces_temperature() {
        let netlist = generate(&SynthConfig::named("t", 400, 2.0e-9)).unwrap();
        let base = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        let thermal = Placer::new(PlacerConfig::new(4).with_alpha_temp(1.0e-4))
            .place(&netlist)
            .unwrap();
        assert!(
            thermal.metrics.avg_temperature < base.metrics.avg_temperature,
            "thermal placement must cool the chip: {} vs {}",
            thermal.metrics.avg_temperature,
            base.metrics.avg_temperature
        );
    }
}
