//! The complete placement pipeline (paper §6), run by the stage engine.
//!
//! [`Placer::place`] executes the default plan (global → coarse → detail
//! → post-opt rounds) with nothing attached. [`Placer::place_with_options`]
//! is the full entry point: attach a [`PlacerObserver`] for structured
//! progress events, a [`CancelToken`] and/or wall-clock time budget for
//! graceful early stops, and a checkpoint directory for stage-boundary
//! snapshots and resume (DESIGN.md §9).

use crate::control::CancelToken;
use crate::detail::LegalizeStats;
use crate::engine;
use crate::faults::{Degradation, FaultPlan};
use crate::metrics::PlacementMetrics;
use crate::observer::PlacerObserver;
use crate::{Chip, PlaceError, Placement, PlacerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Wall-clock timing of one coarse+detail optimization round.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RoundTiming {
    /// Coarse legalization (moves/swaps + cell shifting) of this round.
    pub coarse: Duration,
    /// Detailed legalization + refinement of this round.
    pub detail: Duration,
}

/// Wall-clock duration of each pipeline stage.
///
/// `coarse` and `detail` are totals across every optimization round;
/// `rounds` breaks the same time down per round (round 0 is the first
/// legalization, rounds 1.. the post-opt rounds; an interrupted run
/// reports only the rounds that executed).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StageTimings {
    /// Recursive-bisection global placement.
    pub global: Duration,
    /// Coarse legalization (moves/swaps + cell shifting), all rounds.
    pub coarse: Duration,
    /// Detailed legalization, all rounds.
    pub detail: Duration,
    /// Per-round breakdown of `coarse`/`detail`.
    pub rounds: Vec<RoundTiming>,
    /// Whole pipeline including metric evaluation.
    pub total: Duration,
}

/// Temperatures and thermal-solver effort at one pipeline stage boundary.
///
/// Each snapshot records which oracle tier answered (DESIGN.md §14).
/// Grid tiers solve through one shared CG context per oracle, so each
/// snapshot after the first warm-starts from the previous stage's field;
/// `cg_iterations` records what that saved. When a cheaper tier than the
/// full grid answered, `cross_model_max_error`/`cross_model_avg_error`
/// hold its per-cell deviation from a fresh full-grid reference solve
/// (NaN — rendered `null` in trace events — when the full grid itself
/// answered and there is nothing to compare).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThermalSnapshot {
    /// Pipeline stage this snapshot was taken after.
    pub stage: &'static str,
    /// Oracle tier that produced the field (`"full-grid"`,
    /// `"coarse-grid"`, or `"compact"`).
    pub tier: &'static str,
    /// Mean cell temperature, °C.
    pub avg_temperature: f64,
    /// Maximum device temperature, °C.
    pub max_temperature: f64,
    /// CG iterations the solve consumed (0 for the compact tier — it
    /// never iterates).
    pub cg_iterations: usize,
    /// Whether the solve warm-started from the previous stage's field.
    pub warm_started: bool,
    /// Preconditioner that drove the solve (`"multigrid"`, `"jacobi"`,
    /// `"damped-jacobi"` when CG gave way to the fallback, or `"none"`
    /// for the compact tier).
    pub preconditioner: &'static str,
    /// Relative residual of the starting vector (1 for a cold start;
    /// small values mean the warm start was already close).
    pub initial_residual: f64,
    /// Maximum per-cell |ΔT| against the full-grid reference, K. NaN on
    /// full-grid snapshots.
    pub cross_model_max_error: f64,
    /// Mean per-cell |ΔT| against the full-grid reference, K. NaN on
    /// full-grid snapshots.
    pub cross_model_avg_error: f64,
}

/// Everything the pipeline produces.
#[derive(Clone, PartialEq, Debug)]
pub struct PlacementResult {
    /// The final legal placement.
    pub placement: Placement,
    /// Quality metrics (wirelength, vias, power, temperatures).
    pub metrics: PlacementMetrics,
    /// Detailed-legalization statistics of the final round.
    pub legalize: LegalizeStats,
    /// Per-stage wall-clock timings (Fig. 10 material), including the
    /// per-round breakdown.
    pub timings: StageTimings,
    /// Thermal field after each pipeline stage, all solved through one
    /// warm-started CG context (the last entry matches `metrics`).
    pub thermal_trajectory: Vec<ThermalSnapshot>,
    /// The chip geometry the netlist was placed on.
    pub chip: Chip,
    /// Whether cancellation or the time budget stopped the pipeline
    /// before every planned stage ran. The placement is still legal.
    pub stopped_early: bool,
    /// Name of the checkpointed stage this run resumed from, if any.
    pub resumed_from: Option<String>,
    /// Every graceful degradation the run performed instead of failing
    /// (thermal fallback, partition retries, checkpoint quarantine).
    /// Empty for a clean run; the placement is legal either way.
    pub degradations: Vec<Degradation>,
}

/// Per-run options for [`Placer::place_with_options`]: everything that
/// controls *how* a run executes without changing *what* it computes.
///
/// The default options attach nothing; the run then behaves exactly like
/// [`Placer::place`].
#[derive(Default)]
pub struct PlaceOptions<'o> {
    /// Event sink for structured progress (stage/pass boundaries,
    /// objective values, CG stats). `None` uses the zero-overhead no-op.
    pub observer: Option<&'o mut dyn PlacerObserver>,
    /// Cooperative cancellation token, checked at stage/pass boundaries.
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget for the run; when exceeded the pipeline stops at
    /// the next boundary and returns the legal best-so-far placement.
    pub time_budget: Option<Duration>,
    /// Directory for stage-boundary checkpoints. When it already holds a
    /// compatible manifest, the run resumes from the newest checkpoint,
    /// skipping completed stages.
    pub checkpoint_dir: Option<PathBuf>,
    /// Deterministic fault plan for robustness testing: the listed faults
    /// fire at their stage-boundary sites and the pipeline must degrade
    /// gracefully instead of failing. `None` (the default) injects
    /// nothing.
    pub faults: Option<FaultPlan>,
    /// Fair-share thread grant from a [`tvp_parallel::ThreadBudget`].
    /// When set, the run's `with_threads` scope uses the granted count
    /// instead of `config.threads`, so concurrent placements (e.g. jobs
    /// in the `tvp serve` daemon) share the global pool fairly instead of
    /// each claiming one-run ownership. The lease is held for the whole
    /// run and released when placement returns. Checkpoint fingerprints
    /// zero the thread count, so a job may resume under a different grant
    /// and still reproduce bitwise.
    pub thread_lease: Option<tvp_parallel::ThreadLease>,
}

impl std::fmt::Debug for PlaceOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlaceOptions")
            .field("observer", &self.observer.as_ref().map(|_| "..."))
            .field("cancel", &self.cancel)
            .field("time_budget", &self.time_budget)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("faults", &self.faults)
            .field("thread_lease", &self.thread_lease)
            .finish()
    }
}

/// The thermal/via-aware 3D placer.
///
/// # Example
///
/// ```
/// use tvp_core::{Placer, PlacerConfig};
/// use tvp_bookshelf::synth::{SynthConfig, generate};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let netlist = generate(&SynthConfig::named("demo", 150, 0.75e-9))?;
/// let result = Placer::new(PlacerConfig::new(2)).place(&netlist)?;
/// assert!(result.metrics.wirelength > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self { config }
    }

    /// The placer's configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Runs the full §6 pipeline: TRR-net-aware global placement, coarse
    /// legalization, detailed legalization, and optional post-optimization
    /// rounds; then evaluates metrics (including the thermal simulation).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] for an invalid configuration, an empty
    /// netlist, a thermal-model failure, or (never expected in practice)
    /// an internal legalization failure.
    pub fn place(&self, netlist: &tvp_netlist::Netlist) -> Result<PlacementResult, PlaceError> {
        self.place_with_fixed(netlist, &[])
    }

    /// Like [`place`](Self::place), but seeds positions for fixed cells
    /// (pads, pre-placed macros) before placement. Fixed cells never move;
    /// their positions steer terminal propagation and the objective.
    /// Positions are clamped to the derived chip footprint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`place`](Self::place).
    pub fn place_with_fixed(
        &self,
        netlist: &tvp_netlist::Netlist,
        fixed_positions: &[(tvp_netlist::CellId, f64, f64, u16)],
    ) -> Result<PlacementResult, PlaceError> {
        self.place_with_options(netlist, fixed_positions, PlaceOptions::default())
    }

    /// The full-control entry point: [`place_with_fixed`] plus per-run
    /// [`PlaceOptions`] — observer, cancellation, time budget, and
    /// checkpoint/resume.
    ///
    /// Cancellation and budget exhaustion are *not* errors: the run
    /// returns `Ok` with a legal placement and
    /// [`stopped_early`](PlacementResult::stopped_early) set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`place`](Self::place), plus
    /// [`PlaceError::Checkpoint`] for checkpoint I/O or compatibility
    /// failures.
    ///
    /// [`place_with_fixed`]: Self::place_with_fixed
    pub fn place_with_options(
        &self,
        netlist: &tvp_netlist::Netlist,
        fixed_positions: &[(tvp_netlist::CellId, f64, f64, u16)],
        mut options: PlaceOptions<'_>,
    ) -> Result<PlacementResult, PlaceError> {
        // All parallel hot paths (thermal CG, objective rebuilds,
        // recursive bisection) read the effective thread count from this
        // scope; `config.threads == 0` means all hardware threads. A
        // thread lease, when attached, overrides the configured count so
        // concurrent runs share the pool fairly; it stays held (and its
        // grant reserved) until the run returns.
        let lease = options.thread_lease.take();
        let threads = lease
            .as_ref()
            .map(tvp_parallel::ThreadLease::granted)
            .unwrap_or(self.config.threads);
        tvp_parallel::with_threads(threads, || {
            engine::run_pipeline(&self.config, netlist, fixed_positions, &mut options)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    #[test]
    fn end_to_end_pipeline_is_legal_and_reports_metrics() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        assert_eq!(result.legalize.placed, 250);
        assert!(result.metrics.wirelength > 0.0);
        assert!(result.metrics.avg_temperature > 0.0);
        assert!(result.timings.total >= result.timings.global);
        assert!(!result.stopped_early);
        assert_eq!(result.resumed_from, None);
        // check_legal ran inside place(); re-verify from the outside.
        assert_eq!(
            crate::detail::check_legal(&netlist, &result.chip, &result.placement),
            None
        );
    }

    #[test]
    fn timings_report_one_round_by_default() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let result = Placer::new(PlacerConfig::new(2)).place(&netlist).unwrap();
        assert_eq!(result.timings.rounds.len(), 1);
        let r = &result.timings.rounds[0];
        assert_eq!(r.coarse, result.timings.coarse);
        assert_eq!(r.detail, result.timings.detail);
    }

    #[test]
    fn timings_report_per_round_breakdown_with_post_opt() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let mut config = PlacerConfig::new(2);
        config.post_opt_rounds = 2;
        let result = Placer::new(config).place(&netlist).unwrap();
        assert_eq!(result.timings.rounds.len(), 3);
        let coarse_sum: Duration = result.timings.rounds.iter().map(|r| r.coarse).sum();
        let detail_sum: Duration = result.timings.rounds.iter().map(|r| r.detail).sum();
        assert_eq!(coarse_sum, result.timings.coarse);
        assert_eq!(detail_sum, result.timings.detail);
    }

    #[test]
    fn empty_netlist_is_an_error() {
        let netlist = tvp_netlist::NetlistBuilder::new().build().unwrap();
        let err = Placer::new(PlacerConfig::new(2))
            .place(&netlist)
            .unwrap_err();
        assert!(matches!(err, PlaceError::EmptyNetlist));
    }

    #[test]
    fn invalid_config_is_an_error() {
        let netlist = generate(&SynthConfig::named("t", 50, 2.5e-10)).unwrap();
        let config = PlacerConfig::new(2).with_alpha_ilv(0.0);
        let err = Placer::new(config).place(&netlist).unwrap_err();
        assert!(matches!(err, PlaceError::InvalidConfig { .. }));
    }

    #[test]
    fn post_opt_rounds_do_not_break_legality() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let mut config = PlacerConfig::new(2);
        config.post_opt_rounds = 1;
        let result = Placer::new(config).place(&netlist).unwrap();
        assert_eq!(
            crate::detail::check_legal(&netlist, &result.chip, &result.placement),
            None
        );
    }

    #[test]
    fn fixed_pads_pull_connected_cells() {
        // A pad fixed at the left edge should attract its sinks compared
        // to one fixed at the right edge.
        use tvp_netlist::{CellKind, NetlistBuilder, PinDirection};
        let mut b = NetlistBuilder::new();
        let pad = b.add_cell_with_kind("pad", 1.0e-6, 1.58e-6, CellKind::Pad);
        let mut sinks = Vec::new();
        for i in 0..240 {
            sinks.push(b.add_cell(format!("c{i}"), 2.0e-6, 1.58e-6));
        }
        // The pad drives several bus nets; the rest form a background mesh.
        for chunk in sinks.chunks(4) {
            let n = b.add_net(format!("bg{}", chunk[0].index()));
            b.connect(n, chunk[0], PinDirection::Output).unwrap();
            for &c in &chunk[1..] {
                b.connect(n, c, PinDirection::Input).unwrap();
            }
        }
        // Bus sinks spread across the index space so clustering doesn't
        // bind them to one background region.
        let bus_sinks: Vec<_> = sinks.iter().step_by(8).copied().collect();
        for (i, chunk) in bus_sinks.chunks(6).enumerate() {
            let bus = b.add_net(format!("bus{i}"));
            if i == 0 {
                b.connect(bus, pad, PinDirection::Output).unwrap();
            } else {
                b.connect(bus, pad, PinDirection::Input).unwrap();
            }
            for &c in chunk {
                b.connect(
                    bus,
                    c,
                    if i == 0 {
                        PinDirection::Input
                    } else if c == chunk[0] {
                        PinDirection::Output
                    } else {
                        PinDirection::Input
                    },
                )
                .unwrap();
            }
        }
        let netlist = b.build().unwrap();
        let placer = Placer::new(PlacerConfig::new(1));
        let left = placer
            .place_with_fixed(&netlist, &[(pad, 0.0, 0.0, 0)])
            .unwrap();
        let right_x = left.chip.width;
        let right = placer
            .place_with_fixed(&netlist, &[(pad, right_x, 0.0, 0)])
            .unwrap();
        let mean_x = |r: &PlacementResult| -> f64 {
            bus_sinks.iter().map(|&c| r.placement.x(c)).sum::<f64>() / bus_sinks.len() as f64
        };
        assert_eq!(left.placement.position(pad).0, 0.0, "pad must not move");
        assert!(
            mean_x(&left) < mean_x(&right),
            "bus sinks should follow the pad: left {} vs right {}",
            mean_x(&left),
            mean_x(&right)
        );
    }

    #[test]
    fn thermal_trajectory_warm_starts_and_saves_iterations() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let result = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        let t = &result.thermal_trajectory;
        assert_eq!(t.len(), 3, "global, coarse, final");
        assert_eq!(t[0].stage, "global");
        assert_eq!(t.last().unwrap().stage, "final");
        assert!(!t[0].warm_started, "first solve is cold");
        assert!(t[1..].iter().all(|s| s.warm_started));
        // The default tier policy answers everything from the full grid,
        // so there is no cross-model reference to compare against.
        assert!(t.iter().all(|s| s.tier == "full-grid"));
        assert!(t
            .iter()
            .all(|s| s.cross_model_max_error.is_nan() && s.cross_model_avg_error.is_nan()));
        // Legalization rearranges the whole power map, so stage-boundary
        // warm starts are not guaranteed to *save* iterations (the small
        // per-move perturbation case is covered in tvp-thermal); they must
        // at least never cost materially more than the cold solve.
        let cold = t[0].cg_iterations;
        assert!(
            t[1..].iter().all(|s| s.cg_iterations <= cold + cold / 10),
            "warm solves should not converge slower: {t:?}"
        );
        // The last snapshot is exactly the reported metrics solve.
        assert_eq!(
            t.last().unwrap().avg_temperature,
            result.metrics.avg_temperature
        );
        assert_eq!(
            t.last().unwrap().max_temperature,
            result.metrics.max_temperature
        );
    }

    #[test]
    fn placement_is_identical_for_any_thread_count() {
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let serial = Placer::new(PlacerConfig::new(4).with_threads(1))
            .place(&netlist)
            .unwrap();
        let parallel = Placer::new(PlacerConfig::new(4).with_threads(4))
            .place(&netlist)
            .unwrap();
        assert_eq!(serial.placement, parallel.placement);
        assert_eq!(serial.metrics.wirelength, parallel.metrics.wirelength);
        assert_eq!(serial.metrics.ilv_count, parallel.metrics.ilv_count);
        // Temperatures go through CG with reordered reductions; they agree
        // to far better than the solver tolerance.
        let rel = (serial.metrics.avg_temperature - parallel.metrics.avg_temperature).abs()
            / serial.metrics.avg_temperature;
        assert!(rel < 1e-6, "temperature drift {rel}");
    }

    #[test]
    fn tier_policy_routes_snapshots_and_tracks_cross_model_error() {
        use tvp_thermal::ThermalTier;
        let netlist = generate(&SynthConfig::named("t", 250, 1.25e-9)).unwrap();
        let config = PlacerConfig::new(4)
            .with_alpha_temp(1.0e-4)
            .with_thermal_tier("global", ThermalTier::CoarseGrid)
            .with_thermal_tier("coarse", ThermalTier::Compact)
            .with_thermal_tier("detail", ThermalTier::Compact)
            .with_thermal_tier("final", ThermalTier::FullGrid);
        let result = Placer::new(config).place(&netlist).unwrap();
        let t = &result.thermal_trajectory;
        assert_eq!(t.len(), 3, "global, coarse, final");

        assert_eq!(t[0].tier, "coarse-grid");
        assert!(t[0].cross_model_max_error.is_finite());
        assert!(t[0].cross_model_avg_error <= t[0].cross_model_max_error);

        // The compact tier never iterates and uses no preconditioner.
        assert_eq!(t[1].tier, "compact");
        assert_eq!(t[1].cg_iterations, 0);
        assert_eq!(t[1].preconditioner, "none");
        assert!(t[1].cross_model_max_error.is_finite());

        // The final evaluation went back to the reference model: nothing
        // to compare against.
        assert_eq!(t[2].tier, "full-grid");
        assert!(t[2].cross_model_max_error.is_nan());

        // The cheaper tiers steer intermediate solves only; the result is
        // still legal and fully evaluated.
        assert_eq!(
            crate::detail::check_legal(&netlist, &result.chip, &result.placement),
            None
        );
        assert!(result.metrics.avg_temperature > 0.0);
    }

    #[test]
    fn thread_lease_scopes_the_run_and_is_released_on_return() {
        let netlist = generate(&SynthConfig::named("t", 150, 7.5e-10)).unwrap();
        let budget = tvp_parallel::ThreadBudget::new(2);
        let placer = Placer::new(PlacerConfig::new(2).with_threads(4));
        let leased = placer
            .place_with_options(
                &netlist,
                &[],
                PlaceOptions {
                    thread_lease: Some(budget.lease(0)),
                    ..PlaceOptions::default()
                },
            )
            .unwrap();
        assert_eq!(
            budget.active(),
            0,
            "lease must be released when the run ends"
        );
        assert_eq!(budget.leased(), 0);
        // The grant only scopes execution; results stay thread-invariant.
        let direct = Placer::new(PlacerConfig::new(2).with_threads(1))
            .place(&netlist)
            .unwrap();
        assert_eq!(leased.placement, direct.placement);
    }

    #[test]
    fn thermal_run_reduces_temperature() {
        let netlist = generate(&SynthConfig::named("t", 400, 2.0e-9)).unwrap();
        let base = Placer::new(PlacerConfig::new(4)).place(&netlist).unwrap();
        let thermal = Placer::new(PlacerConfig::new(4).with_alpha_temp(1.0e-4))
            .place(&netlist)
            .unwrap();
        assert!(
            thermal.metrics.avg_temperature < base.metrics.avg_temperature,
            "thermal placement must cool the chip: {} vs {}",
            thermal.metrics.avg_temperature,
            base.metrics.avg_temperature
        );
    }
}
