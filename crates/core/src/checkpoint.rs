//! Stage-boundary checkpoints: Bookshelf `.pl` snapshots plus a manifest.
//!
//! When a checkpoint directory is configured
//! ([`PlaceOptions::checkpoint_dir`](crate::PlaceOptions)), the engine
//! writes the full placement after every *completed* stage and rewrites
//! `manifest.tvp` to point at it. A later run with the same directory
//! resumes from the newest checkpoint, skipping every stage the manifest
//! covers; because stage boundaries are also RNG boundaries (each stage
//! reseeds deterministically) and `.pl` coordinates round-trip `f64`
//! exactly, the resumed run finishes bitwise identical to an
//! uninterrupted one.
//!
//! Manifest format (`manifest.tvp`, one `key value` pair per line):
//!
//! ```text
//! tvp-checkpoint v1
//! stage_index 1
//! stage coarse[0]
//! stages 3
//! legal false
//! fingerprint 00a1b2c3d4e5f607
//! cells 250
//! placement stage-001.pl
//! ```
//!
//! The fingerprint hashes every placement-relevant configuration field
//! (thread count excluded — placements are thread-count independent) plus
//! the netlist shape; a mismatch is reported as
//! [`PlaceError::Checkpoint`] rather than silently restarting on
//! incompatible state.

use crate::{Chip, PlaceError, Placement, PlacerConfig};
use std::collections::HashMap;
use std::path::Path;
use tvp_bookshelf::{parse_pl, write_pl, PlFile, PlRecord};
use tvp_netlist::{CellId, Netlist};

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "manifest.tvp";

/// The state restored from the newest checkpoint of a directory.
#[derive(Clone, PartialEq, Debug)]
pub struct ResumePoint {
    /// Index (in the stage plan) of the last completed stage.
    pub stage_index: usize,
    /// Name of that stage.
    pub stage: String,
    /// Whether the checkpointed placement is row-legal.
    pub legal: bool,
    /// The restored placement.
    pub placement: Placement,
}

fn ck_err(path: &Path, reason: impl Into<String>) -> PlaceError {
    PlaceError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Fingerprint of everything that determines the placement trajectory:
/// the full configuration (thread count normalized away) and the netlist
/// shape. FNV-1a over the debug rendering — stability across *builds* is
/// not required, only agreement between the run that wrote a checkpoint
/// and the run resuming from it.
pub fn fingerprint(netlist: &Netlist, config: &PlacerConfig) -> u64 {
    let mut cfg = config.clone();
    cfg.threads = 0; // any thread count produces the same placement
    let text = format!(
        "{cfg:?}|cells={}|nets={}|pins={}",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.num_pins()
    );
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes the checkpoint for stage `stage_index` and updates the
/// manifest. Returns the path of the written `.pl` file.
///
/// # Errors
///
/// Returns [`PlaceError::Checkpoint`] for any I/O failure.
#[allow(clippy::too_many_arguments)]
pub fn write_checkpoint(
    dir: &Path,
    stage_index: usize,
    stage: &str,
    num_stages: usize,
    legal: bool,
    netlist: &Netlist,
    placement: &Placement,
    fingerprint: u64,
) -> Result<String, PlaceError> {
    std::fs::create_dir_all(dir).map_err(|e| ck_err(dir, e.to_string()))?;

    let pl_name = format!("stage-{stage_index:03}.pl");
    let mut file = PlFile::default();
    for (cell, x, y, layer) in placement.iter() {
        file.records.push(PlRecord {
            name: netlist.cell(cell).name().to_string(),
            x,
            y,
            layer: Some(layer as u32),
            orient: "N".to_string(),
            fixed: !netlist.cell(cell).is_movable(),
        });
    }
    let pl_path = dir.join(&pl_name);
    std::fs::write(&pl_path, write_pl(&file)).map_err(|e| ck_err(&pl_path, e.to_string()))?;

    // The manifest is written second: a crash between the two writes
    // leaves the previous manifest intact and still consistent.
    let manifest = format!(
        "tvp-checkpoint v1\n\
         stage_index {stage_index}\n\
         stage {stage}\n\
         stages {num_stages}\n\
         legal {legal}\n\
         fingerprint {fingerprint:016x}\n\
         cells {}\n\
         placement {pl_name}\n",
        placement.len()
    );
    let manifest_path = dir.join(MANIFEST_NAME);
    std::fs::write(&manifest_path, manifest).map_err(|e| ck_err(&manifest_path, e.to_string()))?;
    Ok(pl_path.display().to_string())
}

/// Loads the newest checkpoint of `dir`, if one exists.
///
/// Returns `Ok(None)` when the directory has no manifest (a fresh run).
///
/// # Errors
///
/// Returns [`PlaceError::Checkpoint`] when the manifest is malformed,
/// was written for a different design/configuration (fingerprint, cell
/// count, or stage-plan mismatch), or its placement file cannot be
/// restored onto `netlist`.
pub fn load_latest(
    dir: &Path,
    netlist: &Netlist,
    expected_fingerprint: u64,
    num_stages: usize,
    chip: &Chip,
) -> Result<Option<ResumePoint>, PlaceError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ck_err(&manifest_path, e.to_string())),
    };

    let mut lines = text.lines();
    match lines.next() {
        Some("tvp-checkpoint v1") => {}
        other => {
            return Err(ck_err(
                &manifest_path,
                format!("unsupported header {other:?}"),
            ))
        }
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| ck_err(&manifest_path, format!("malformed line `{line}`")))?;
        fields.insert(key, value.trim());
    }
    let field = |key: &str| -> Result<&str, PlaceError> {
        fields
            .get(key)
            .copied()
            .ok_or_else(|| ck_err(&manifest_path, format!("missing field `{key}`")))
    };
    let parse_usize = |key: &str| -> Result<usize, PlaceError> {
        field(key)?
            .parse()
            .map_err(|_| ck_err(&manifest_path, format!("field `{key}` is not an integer")))
    };

    let stage_index = parse_usize("stage_index")?;
    let stages = parse_usize("stages")?;
    let cells = parse_usize("cells")?;
    let legal = field("legal")? == "true";
    let fp = u64::from_str_radix(field("fingerprint")?, 16)
        .map_err(|_| ck_err(&manifest_path, "fingerprint is not hex"))?;

    if fp != expected_fingerprint {
        return Err(ck_err(
            &manifest_path,
            "checkpoint was written for a different design or configuration \
             (fingerprint mismatch)",
        ));
    }
    if cells != netlist.num_cells() {
        return Err(ck_err(
            &manifest_path,
            format!(
                "checkpoint has {cells} cells, netlist has {}",
                netlist.num_cells()
            ),
        ));
    }
    if stages != num_stages || stage_index >= num_stages {
        return Err(ck_err(
            &manifest_path,
            format!("stage plan mismatch: manifest {stage_index}/{stages}, run has {num_stages}"),
        ));
    }

    let pl_path = dir.join(field("placement")?);
    let pl_text = std::fs::read_to_string(&pl_path).map_err(|e| ck_err(&pl_path, e.to_string()))?;
    let file = parse_pl(&pl_text).map_err(|e| ck_err(&pl_path, e.to_string()))?;

    let by_name: HashMap<&str, CellId> =
        netlist.iter_cells().map(|(id, c)| (c.name(), id)).collect();
    let n = netlist.num_cells();
    let mut placement = Placement::centered(n, chip);
    let mut seen = vec![false; n];
    for r in &file.records {
        let id = *by_name
            .get(r.name.as_str())
            .ok_or_else(|| ck_err(&pl_path, format!("unknown cell `{}`", r.name)))?;
        let layer = r.layer.unwrap_or(0) as u16;
        placement.set(id, r.x, r.y, layer);
        seen[id.index()] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(ck_err(
            &pl_path,
            format!(
                "no position for cell `{}`",
                netlist.cell(CellId::new(missing)).name()
            ),
        ));
    }

    Ok(Some(ResumePoint {
        stage_index,
        stage: field("stage")?.to_string(),
        legal,
        placement,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp_ck_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (Netlist, Chip, PlacerConfig, Placement) {
        let netlist = generate(&SynthConfig::named("ck", 60, 3.0e-10)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        // Awkward, non-round coordinates to exercise exact round-tripping.
        for i in 0..netlist.num_cells() {
            placement.set(
                CellId::new(i),
                chip.width * (i as f64 + 0.1) / 61.0,
                chip.depth * (i as f64 + 0.7) / 61.3,
                (i % 2) as u16,
            );
        }
        (netlist, chip, config, placement)
    }

    #[test]
    fn write_then_load_round_trips_bitwise() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("rt");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 1, "coarse[0]", 3, false, &netlist, &placement, fp).unwrap();
        let resume = load_latest(&dir, &netlist, fp, 3, &chip).unwrap().unwrap();
        assert_eq!(resume.stage_index, 1);
        assert_eq!(resume.stage, "coarse[0]");
        assert!(!resume.legal);
        assert_eq!(resume.placement, placement, "f64 positions must round-trip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_fresh_run() {
        let (netlist, chip, config, _) = fixture();
        let dir = tmpdir("fresh");
        let fp = fingerprint(&netlist, &config);
        assert_eq!(load_latest(&dir, &netlist, fp, 3, &chip).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_an_error() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("fp");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 0, "global", 3, false, &netlist, &placement, fp).unwrap();
        let err = load_latest(&dir, &netlist, fp ^ 1, 3, &chip).unwrap_err();
        assert!(matches!(err, PlaceError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_seed() {
        let (netlist, _, config, _) = fixture();
        let serial = fingerprint(&netlist, &config.clone().with_threads(1));
        let parallel = fingerprint(&netlist, &config.clone().with_threads(8));
        assert_eq!(serial, parallel, "thread count never changes placement");
        assert_ne!(
            fingerprint(&netlist, &config.clone().with_seed(1)),
            fingerprint(&netlist, &config.clone().with_seed(2))
        );
    }

    #[test]
    fn stage_plan_mismatch_is_an_error() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("plan");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 2, "detail[0]", 3, true, &netlist, &placement, fp).unwrap();
        let err = load_latest(&dir, &netlist, fp, 5, &chip).unwrap_err();
        assert!(err.to_string().contains("stage plan"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
