//! Stage-boundary checkpoints: Bookshelf `.pl` snapshots plus a manifest.
//!
//! When a checkpoint directory is configured
//! ([`PlaceOptions::checkpoint_dir`](crate::PlaceOptions)), the engine
//! writes the full placement after every *completed* stage and rewrites
//! `manifest.tvp` to point at it. A later run with the same directory
//! resumes from the newest checkpoint, skipping every stage the manifest
//! covers; because stage boundaries are also RNG boundaries (each stage
//! reseeds deterministically) and `.pl` coordinates round-trip `f64`
//! exactly, the resumed run finishes bitwise identical to an
//! uninterrupted one.
//!
//! Both files are written crash-safely: content goes to a temp file in
//! the same directory, is fsynced, then renamed over the target, so a
//! crash mid-write can never leave a half-written checkpoint under the
//! final name. The manifest additionally records an FNV-1a hash of the
//! `.pl` bytes, so damage that slips past the atomic write (filesystem
//! corruption, manual truncation, fault injection) is detected on
//! resume: [`load_latest`] then *quarantines* the damaged files — renames
//! them to `*.corrupt` — and reports
//! [`CheckpointLoad::Quarantined`], letting the run restart fresh instead
//! of failing or resuming from garbage.
//!
//! Manifest format (`manifest.tvp`, one `key value` pair per line):
//!
//! ```text
//! tvp-checkpoint v1
//! stage_index 1
//! stage coarse[0]
//! stages 3
//! legal false
//! fingerprint 00a1b2c3d4e5f607
//! cells 250
//! placement stage-001.pl
//! placement_hash 8f1a2b3c4d5e6f70
//! ```
//!
//! The fingerprint hashes every placement-relevant configuration field
//! (thread count excluded — placements are thread-count independent) plus
//! the netlist shape; a mismatch means the checkpoint belongs to a
//! *different run* and is reported as [`PlaceError::Checkpoint`] rather
//! than quarantined or silently restarted — the files are intact and the
//! user should point the run at the right directory (or clear it).

use crate::{Chip, PlaceError, Placement, PlacerConfig};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tvp_bookshelf::{parse_pl, write_pl, PlFile, PlRecord};
use tvp_netlist::{CellId, Netlist};

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "manifest.tvp";

/// The state restored from the newest checkpoint of a directory.
#[derive(Clone, PartialEq, Debug)]
pub struct ResumePoint {
    /// Index (in the stage plan) of the last completed stage.
    pub stage_index: usize,
    /// Name of that stage.
    pub stage: String,
    /// Whether the checkpointed placement is row-legal.
    pub legal: bool,
    /// The restored placement.
    pub placement: Placement,
}

/// What [`load_latest`] found in a checkpoint directory.
#[derive(Clone, PartialEq, Debug)]
pub enum CheckpointLoad {
    /// No manifest: a fresh run.
    Fresh,
    /// A valid checkpoint to resume from.
    Resume(ResumePoint),
    /// The checkpoint was damaged (truncated or corrupted content); the
    /// offending files were renamed to `*.corrupt` and the run should
    /// start fresh.
    Quarantined {
        /// The `*.corrupt` paths the damaged files now live under.
        quarantined: Vec<String>,
        /// What was wrong with the checkpoint.
        reason: String,
    },
}

fn ck_err(path: &Path, reason: impl Into<String>) -> PlaceError {
    PlaceError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything that determines the placement trajectory:
/// the full configuration (thread count normalized away) and the netlist
/// shape. FNV-1a over the debug rendering — stability across *builds* is
/// not required, only agreement between the run that wrote a checkpoint
/// and the run resuming from it.
pub fn fingerprint(netlist: &Netlist, config: &PlacerConfig) -> u64 {
    let mut cfg = config.clone();
    cfg.threads = 0; // any thread count produces the same placement
    let text = format!(
        "{cfg:?}|cells={}|nets={}|pins={}",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.num_pins()
    );
    fnv1a(text.as_bytes())
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// flushed and fsynced, then renamed over the target. A crash at any
/// point leaves either the old file or the new one, never a mix.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PlaceError> {
    let tmp: PathBuf = {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(".tmp");
        path.with_file_name(name)
    };
    let result = (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result.map_err(|e| ck_err(path, e.to_string()))
}

/// Writes the checkpoint for stage `stage_index` and updates the
/// manifest. Both writes are atomic (temp file + fsync + rename) and the
/// manifest carries a content hash of the `.pl` bytes, so a later resume
/// detects any partial or damaged write. Returns the path of the written
/// `.pl` file.
///
/// # Errors
///
/// Returns [`PlaceError::Checkpoint`] for any I/O failure.
#[allow(clippy::too_many_arguments)]
pub fn write_checkpoint(
    dir: &Path,
    stage_index: usize,
    stage: &str,
    num_stages: usize,
    legal: bool,
    netlist: &Netlist,
    placement: &Placement,
    fingerprint: u64,
) -> Result<String, PlaceError> {
    std::fs::create_dir_all(dir).map_err(|e| ck_err(dir, e.to_string()))?;

    let pl_name = format!("stage-{stage_index:03}.pl");
    let mut file = PlFile::default();
    for (cell, x, y, layer) in placement.iter() {
        file.records.push(PlRecord {
            name: netlist.cell(cell).name().to_string(),
            x,
            y,
            layer: Some(layer as u32),
            orient: "N".to_string(),
            fixed: !netlist.cell(cell).is_movable(),
        });
    }
    let pl_bytes = write_pl(&file).into_bytes();
    let pl_path = dir.join(&pl_name);
    write_atomic(&pl_path, &pl_bytes)?;

    // The manifest is written second: a crash between the two writes
    // leaves the previous manifest intact and still consistent.
    let manifest = format!(
        "tvp-checkpoint v1\n\
         stage_index {stage_index}\n\
         stage {stage}\n\
         stages {num_stages}\n\
         legal {legal}\n\
         fingerprint {fingerprint:016x}\n\
         cells {}\n\
         placement {pl_name}\n\
         placement_hash {:016x}\n",
        placement.len(),
        fnv1a(&pl_bytes)
    );
    write_atomic(&dir.join(MANIFEST_NAME), manifest.as_bytes())?;
    Ok(pl_path.display().to_string())
}

/// Truncates a checkpoint file to half its length, simulating a partial
/// write that slipped past the atomic rename (the
/// [`FaultKind::CorruptCheckpoint`](crate::FaultKind) injection).
///
/// # Errors
///
/// Returns [`PlaceError::Checkpoint`] for any I/O failure.
pub fn truncate_for_fault(path: &Path) -> Result<(), PlaceError> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| ck_err(path, e.to_string()))?;
    let len = file
        .metadata()
        .map_err(|e| ck_err(path, e.to_string()))?
        .len();
    file.set_len(len / 2)
        .map_err(|e| ck_err(path, e.to_string()))?;
    file.sync_all().map_err(|e| ck_err(path, e.to_string()))?;
    Ok(())
}

/// Renames each existing file to `<name>.corrupt` (best effort) and
/// returns the new paths of those that were moved.
fn quarantine(paths: &[&Path]) -> Vec<String> {
    let mut moved = Vec::new();
    for path in paths {
        if !path.exists() {
            continue;
        }
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(".corrupt");
        let target = path.with_file_name(name);
        if std::fs::rename(path, &target).is_ok() {
            moved.push(target.display().to_string());
        }
    }
    moved
}

/// Loads the newest checkpoint of `dir`.
///
/// Returns [`CheckpointLoad::Fresh`] when the directory has no manifest,
/// and [`CheckpointLoad::Quarantined`] when the checkpoint content is
/// damaged — truncated or malformed manifest, placement-hash mismatch,
/// unreadable or inconsistent `.pl` — in which case the damaged files
/// have been renamed to `*.corrupt` and the caller should start fresh.
///
/// # Errors
///
/// Returns [`PlaceError::Checkpoint`] for I/O failures and for *intact*
/// checkpoints that belong to a different run (fingerprint, cell count,
/// or stage-plan mismatch): those are caller mistakes, not file damage,
/// so the files are left in place.
pub fn load_latest(
    dir: &Path,
    netlist: &Netlist,
    expected_fingerprint: u64,
    num_stages: usize,
    chip: &Chip,
) -> Result<CheckpointLoad, PlaceError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CheckpointLoad::Fresh),
        Err(e) => return Err(ck_err(&manifest_path, e.to_string())),
    };

    // Phase 1: parse the manifest. Any failure here means the file is
    // damaged -> quarantine.
    let parsed = match parse_manifest(&text) {
        Ok(p) => p,
        Err(reason) => {
            return Ok(CheckpointLoad::Quarantined {
                quarantined: quarantine(&[&manifest_path]),
                reason: format!("{}: {reason}", manifest_path.display()),
            })
        }
    };

    // Phase 2: compatibility. The manifest is intact but may describe a
    // different run -> hard error, leave the files alone.
    if parsed.fingerprint != expected_fingerprint {
        return Err(ck_err(
            &manifest_path,
            "checkpoint was written for a different design or configuration \
             (fingerprint mismatch)",
        ));
    }
    if parsed.cells != netlist.num_cells() {
        return Err(ck_err(
            &manifest_path,
            format!(
                "checkpoint has {} cells, netlist has {}",
                parsed.cells,
                netlist.num_cells()
            ),
        ));
    }
    if parsed.stages != num_stages || parsed.stage_index >= num_stages {
        return Err(ck_err(
            &manifest_path,
            format!(
                "stage plan mismatch: manifest {}/{}, run has {num_stages}",
                parsed.stage_index, parsed.stages
            ),
        ));
    }

    // Phase 3: restore the placement. Content damage -> quarantine both
    // files; genuine I/O failures (permissions, ...) stay hard errors.
    let pl_path = dir.join(&parsed.pl_name);
    let damaged = |reason: String| -> Result<CheckpointLoad, PlaceError> {
        Ok(CheckpointLoad::Quarantined {
            quarantined: quarantine(&[&manifest_path, &pl_path]),
            reason,
        })
    };
    let pl_bytes = match std::fs::read(&pl_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return damaged(format!("{}: placement file is missing", pl_path.display()))
        }
        Err(e) => return Err(ck_err(&pl_path, e.to_string())),
    };
    if let Some(expected) = parsed.pl_hash {
        let actual = fnv1a(&pl_bytes);
        if actual != expected {
            return damaged(format!(
                "{}: placement hash mismatch (expected {expected:016x}, got {actual:016x}; \
                 truncated or partial write)",
                pl_path.display()
            ));
        }
    }
    let pl_text = match String::from_utf8(pl_bytes) {
        Ok(t) => t,
        Err(_) => return damaged(format!("{}: placement is not UTF-8", pl_path.display())),
    };
    let file = match parse_pl(&pl_text) {
        Ok(f) => f,
        Err(e) => return damaged(format!("{}: {e}", pl_path.display())),
    };

    let by_name: HashMap<&str, CellId> =
        netlist.iter_cells().map(|(id, c)| (c.name(), id)).collect();
    let n = netlist.num_cells();
    let mut placement = Placement::centered(n, chip);
    let mut seen = vec![false; n];
    for r in &file.records {
        let Some(&id) = by_name.get(r.name.as_str()) else {
            return damaged(format!("{}: unknown cell `{}`", pl_path.display(), r.name));
        };
        let layer = r.layer.unwrap_or(0) as u16;
        placement.set(id, r.x, r.y, layer);
        seen[id.index()] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return damaged(format!(
            "{}: no position for cell `{}`",
            pl_path.display(),
            netlist.cell(CellId::new(missing)).name()
        ));
    }

    Ok(CheckpointLoad::Resume(ResumePoint {
        stage_index: parsed.stage_index,
        stage: parsed.stage,
        legal: parsed.legal,
        placement,
    }))
}

/// Policy for [`gc_store`]: what counts as garbage and how much disk the
/// store may keep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GcPolicy {
    /// Anything quarantined (`*.corrupt`) or abandoned (a per-job
    /// subdirectory the caller no longer claims) is deleted once its
    /// newest content is at least this old.
    pub max_age: std::time::Duration,
    /// After age-based collection, abandoned subdirectories are deleted
    /// oldest-first until the bytes they hold drop to this cap.
    /// Directories the caller still claims never count against the cap
    /// and are never deleted.
    pub max_total_bytes: u64,
}

impl Default for GcPolicy {
    fn default() -> Self {
        Self {
            max_age: std::time::Duration::from_secs(7 * 24 * 3600),
            max_total_bytes: 256 << 20,
        }
    }
}

/// What one [`gc_store`] sweep removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcReport {
    /// Aged `*.corrupt` quarantine files deleted (store-wide).
    pub corrupt_files_removed: usize,
    /// Abandoned per-job checkpoint directories deleted.
    pub dirs_removed: usize,
    /// Total bytes reclaimed.
    pub bytes_freed: u64,
}

impl GcReport {
    /// Whether the sweep removed anything at all.
    pub fn removed_anything(&self) -> bool {
        self.corrupt_files_removed > 0 || self.dirs_removed > 0
    }
}

/// Garbage-collects a checkpoint store rooted at `root`.
///
/// Two classes of garbage accumulate without this: `*.corrupt` files
/// left behind by quarantine (by design — damaged files are moved aside,
/// never destroyed, so they stay inspectable for a while) and whole
/// per-job checkpoint directories whose job finished or was abandoned
/// (e.g. a daemon was killed and the job never reclaimed). The sweep:
///
/// 1. deletes every `*.corrupt` file anywhere under `root` whose
///    modification time is at least [`GcPolicy::max_age`] old;
/// 2. treats each immediate subdirectory of `root` for which
///    `in_use(name)` returns `false` as abandoned, deletes those whose
///    newest content is at least `max_age` old, then — oldest first —
///    deletes further abandoned directories until the bytes they hold
///    fit under [`GcPolicy::max_total_bytes`].
///
/// Directories the caller claims via `in_use` are never touched, and
/// neither are live (non-corrupt) files directly under `root` — a plain
/// `--checkpoint-dir` used by a single run is only ever cleaned of its
/// aged quarantine files. The sweep is best-effort: entries that cannot
/// be read or removed are skipped, never an error — hygiene must not
/// take down the caller.
pub fn gc_store(root: &Path, policy: &GcPolicy, in_use: &dyn Fn(&str) -> bool) -> GcReport {
    let mut report = GcReport::default();
    let now = std::time::SystemTime::now();
    let aged = |t: std::time::SystemTime| -> bool {
        now.duration_since(t)
            .map(|age| age >= policy.max_age)
            .unwrap_or(false)
    };

    // Pass 1: aged quarantine files, anywhere in the store.
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let Ok(meta) = entry.metadata() else { continue };
            let path = entry.path();
            if meta.is_dir() {
                stack.push(path);
            } else if path.to_string_lossy().ends_with(".corrupt")
                && meta.modified().map(&aged).unwrap_or(false)
                && std::fs::remove_file(&path).is_ok()
            {
                report.corrupt_files_removed += 1;
                report.bytes_freed += meta.len();
            }
        }
    }

    // Pass 2: abandoned per-job directories, oldest first.
    let Ok(entries) = std::fs::read_dir(root) else {
        return report;
    };
    let mut abandoned: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if in_use(&name) {
            continue;
        }
        let (bytes, newest) = dir_stats(&entry.path());
        abandoned.push((entry.path(), newest, bytes));
    }
    abandoned.sort_by_key(|(_, newest, _)| *newest);
    let mut held: u64 = abandoned.iter().map(|(_, _, b)| b).sum();
    for (path, newest, bytes) in &abandoned {
        if (aged(*newest) || held > policy.max_total_bytes) && std::fs::remove_dir_all(path).is_ok()
        {
            report.dirs_removed += 1;
            report.bytes_freed += bytes;
            held -= bytes;
        }
    }
    report
}

/// Total file bytes under `dir` and the newest modification time found
/// (the UNIX epoch for an empty directory, which therefore always reads
/// as aged).
fn dir_stats(dir: &Path) -> (u64, std::time::SystemTime) {
    let mut bytes = 0u64;
    let mut newest = std::time::SystemTime::UNIX_EPOCH;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let Ok(meta) = entry.metadata() else { continue };
            if meta.is_dir() {
                stack.push(entry.path());
            } else {
                bytes += meta.len();
                if let Ok(m) = meta.modified() {
                    newest = newest.max(m);
                }
            }
        }
    }
    (bytes, newest)
}

struct ParsedManifest {
    stage_index: usize,
    stage: String,
    stages: usize,
    legal: bool,
    fingerprint: u64,
    cells: usize,
    pl_name: String,
    /// Absent in manifests written before the hash was introduced.
    pl_hash: Option<u64>,
}

fn parse_manifest(text: &str) -> Result<ParsedManifest, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("tvp-checkpoint v1") => {}
        other => return Err(format!("unsupported header {other:?}")),
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed line `{line}`"))?;
        fields.insert(key, value.trim());
    }
    let field = |key: &str| -> Result<&str, String> {
        fields
            .get(key)
            .copied()
            .ok_or_else(|| format!("missing field `{key}`"))
    };
    let parse_usize = |key: &str| -> Result<usize, String> {
        field(key)?
            .parse()
            .map_err(|_| format!("field `{key}` is not an integer"))
    };
    Ok(ParsedManifest {
        stage_index: parse_usize("stage_index")?,
        stage: field("stage")?.to_string(),
        stages: parse_usize("stages")?,
        legal: field("legal")? == "true",
        fingerprint: u64::from_str_radix(field("fingerprint")?, 16)
            .map_err(|_| "fingerprint is not hex".to_string())?,
        cells: parse_usize("cells")?,
        pl_name: field("placement")?.to_string(),
        pl_hash: match fields.get("placement_hash") {
            None => None,
            Some(v) => Some(
                u64::from_str_radix(v, 16).map_err(|_| "placement_hash is not hex".to_string())?,
            ),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_bookshelf::synth::{generate, SynthConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tvp_ck_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fixture() -> (Netlist, Chip, PlacerConfig, Placement) {
        let netlist = generate(&SynthConfig::named("ck", 60, 3.0e-10)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        // Awkward, non-round coordinates to exercise exact round-tripping.
        for i in 0..netlist.num_cells() {
            placement.set(
                CellId::new(i),
                chip.width * (i as f64 + 0.1) / 61.0,
                chip.depth * (i as f64 + 0.7) / 61.3,
                (i % 2) as u16,
            );
        }
        (netlist, chip, config, placement)
    }

    fn expect_resume(load: CheckpointLoad) -> ResumePoint {
        match load {
            CheckpointLoad::Resume(r) => r,
            other => panic!("expected a resume, got {other:?}"),
        }
    }

    fn expect_quarantine(load: CheckpointLoad) -> (Vec<String>, String) {
        match load {
            CheckpointLoad::Quarantined {
                quarantined,
                reason,
            } => (quarantined, reason),
            other => panic!("expected a quarantine, got {other:?}"),
        }
    }

    #[test]
    fn write_then_load_round_trips_bitwise() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("rt");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 1, "coarse[0]", 3, false, &netlist, &placement, fp).unwrap();
        let resume = expect_resume(load_latest(&dir, &netlist, fp, 3, &chip).unwrap());
        assert_eq!(resume.stage_index, 1);
        assert_eq!(resume.stage, "coarse[0]");
        assert!(!resume.legal);
        assert_eq!(resume.placement, placement, "f64 positions must round-trip");
        // Atomic writes leave no temp droppings behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_fresh_run() {
        let (netlist, chip, config, _) = fixture();
        let dir = tmpdir("fresh");
        let fp = fingerprint(&netlist, &config);
        assert_eq!(
            load_latest(&dir, &netlist, fp, 3, &chip).unwrap(),
            CheckpointLoad::Fresh
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_an_error() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("fp");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 0, "global", 3, false, &netlist, &placement, fp).unwrap();
        let err = load_latest(&dir, &netlist, fp ^ 1, 3, &chip).unwrap_err();
        assert!(matches!(err, PlaceError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"));
        // Incompatibility must NOT quarantine: the files are intact.
        assert!(dir.join(MANIFEST_NAME).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_seed() {
        let (netlist, _, config, _) = fixture();
        let serial = fingerprint(&netlist, &config.clone().with_threads(1));
        let parallel = fingerprint(&netlist, &config.clone().with_threads(8));
        assert_eq!(serial, parallel, "thread count never changes placement");
        assert_ne!(
            fingerprint(&netlist, &config.clone().with_seed(1)),
            fingerprint(&netlist, &config.clone().with_seed(2))
        );
    }

    #[test]
    fn stage_plan_mismatch_is_an_error() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("plan");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 2, "detail[0]", 3, true, &netlist, &placement, fp).unwrap();
        let err = load_latest(&dir, &netlist, fp, 5, &chip).unwrap_err();
        assert!(err.to_string().contains("stage plan"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_manifest_is_quarantined() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("trunc_manifest");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 1, "coarse[0]", 3, false, &netlist, &placement, fp).unwrap();
        // Chop the manifest mid-file: a field goes missing.
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(&manifest_path, &text[..text.len() / 3]).unwrap();

        let (quarantined, reason) =
            expect_quarantine(load_latest(&dir, &netlist, fp, 3, &chip).unwrap());
        // Depending on where the cut lands, the damage reads as a
        // half-line (`malformed line`) or a whole missing field.
        assert!(
            reason.contains("missing field") || reason.contains("malformed line"),
            "{reason}"
        );
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].ends_with("manifest.tvp.corrupt"));
        assert!(!manifest_path.exists(), "damaged manifest moved aside");
        // The directory now reads as a fresh run.
        assert_eq!(
            load_latest(&dir, &netlist, fp, 3, &chip).unwrap(),
            CheckpointLoad::Fresh
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_placement_is_quarantined_via_hash() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("trunc_pl");
        let fp = fingerprint(&netlist, &config);
        let pl =
            write_checkpoint(&dir, 1, "coarse[0]", 3, false, &netlist, &placement, fp).unwrap();
        truncate_for_fault(Path::new(&pl)).unwrap();

        let (quarantined, reason) =
            expect_quarantine(load_latest(&dir, &netlist, fp, 3, &chip).unwrap());
        assert!(reason.contains("hash mismatch"), "{reason}");
        assert_eq!(quarantined.len(), 2, "manifest and pl: {quarantined:?}");
        assert!(quarantined.iter().all(|p| p.ends_with(".corrupt")));
        assert_eq!(
            load_latest(&dir, &netlist, fp, 3, &chip).unwrap(),
            CheckpointLoad::Fresh
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_placement_file_is_quarantined() {
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("missing_pl");
        let fp = fingerprint(&netlist, &config);
        let pl = write_checkpoint(&dir, 0, "global", 3, false, &netlist, &placement, fp).unwrap();
        std::fs::remove_file(&pl).unwrap();
        let (quarantined, reason) =
            expect_quarantine(load_latest(&dir, &netlist, fp, 3, &chip).unwrap());
        assert!(reason.contains("missing"), "{reason}");
        assert_eq!(quarantined.len(), 1, "only the manifest existed to move");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_aged_corrupt_files_and_keeps_fresh_ones() {
        let dir = tmpdir("gc_corrupt");
        let nested = dir.join("job-1");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(dir.join("manifest.tvp.corrupt"), b"damaged").unwrap();
        std::fs::write(nested.join("stage-000.pl.corrupt"), b"damaged").unwrap();
        std::fs::write(nested.join("stage-001.pl"), b"healthy").unwrap();

        // A generous age keeps everything.
        let keep = GcPolicy {
            max_age: std::time::Duration::from_secs(3600),
            max_total_bytes: u64::MAX,
        };
        let report = gc_store(&dir, &keep, &|_| true);
        assert_eq!(report, GcReport::default());
        assert!(dir.join("manifest.tvp.corrupt").exists());

        // Age zero: every quarantine file is garbage, healthy files stay.
        let sweep = GcPolicy {
            max_age: std::time::Duration::ZERO,
            max_total_bytes: u64::MAX,
        };
        let report = gc_store(&dir, &sweep, &|_| true);
        assert_eq!(report.corrupt_files_removed, 2);
        assert!(report.bytes_freed >= 14);
        assert!(!dir.join("manifest.tvp.corrupt").exists());
        assert!(!nested.join("stage-000.pl.corrupt").exists());
        assert!(nested.join("stage-001.pl").exists(), "live files untouched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_aged_abandoned_dirs_but_never_claimed_ones() {
        let dir = tmpdir("gc_dirs");
        for job in ["job-old", "job-live"] {
            let d = dir.join(job);
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("stage-000.pl"), b"snapshot").unwrap();
        }
        let sweep = GcPolicy {
            max_age: std::time::Duration::ZERO,
            max_total_bytes: u64::MAX,
        };
        let report = gc_store(&dir, &sweep, &|name| name == "job-live");
        assert_eq!(report.dirs_removed, 1);
        assert!(!dir.join("job-old").exists());
        assert!(
            dir.join("job-live").join("stage-000.pl").exists(),
            "claimed directories survive even at age zero"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_size_cap_evicts_oldest_abandoned_dirs_first() {
        let dir = tmpdir("gc_size");
        for (i, job) in ["job-a", "job-b", "job-c"].iter().enumerate() {
            let d = dir.join(job);
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("stage-000.pl"), vec![b'x'; 100]).unwrap();
            // Distinct mtimes so the eviction order is well-defined.
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
        // Nothing is old enough to age out, but three 100-byte dirs
        // exceed the 150-byte cap: the two oldest must go.
        let policy = GcPolicy {
            max_age: std::time::Duration::from_secs(3600),
            max_total_bytes: 150,
        };
        let report = gc_store(&dir, &policy, &|_| false);
        assert_eq!(report.dirs_removed, 2, "{report:?}");
        assert!(!dir.join("job-a").exists());
        assert!(!dir.join("job-b").exists());
        assert!(dir.join("job-c").exists(), "newest survivor fits the cap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_of_a_missing_or_empty_store_is_a_quiet_no_op() {
        let dir = tmpdir("gc_empty");
        let report = gc_store(&dir, &GcPolicy::default(), &|_| false);
        assert_eq!(report, GcReport::default());
        std::fs::remove_dir_all(&dir).ok();
        let report = gc_store(&dir.join("never-existed"), &GcPolicy::default(), &|_| false);
        assert_eq!(report, GcReport::default());
    }

    #[test]
    fn manifest_without_hash_still_resumes() {
        // Back-compat: manifests from before the hash field.
        let (netlist, chip, config, placement) = fixture();
        let dir = tmpdir("nohash");
        let fp = fingerprint(&netlist, &config);
        write_checkpoint(&dir, 1, "coarse[0]", 3, false, &netlist, &placement, fp).unwrap();
        let manifest_path = dir.join(MANIFEST_NAME);
        let stripped: String = std::fs::read_to_string(&manifest_path)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("placement_hash"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&manifest_path, stripped).unwrap();
        let resume = expect_resume(load_latest(&dir, &netlist, fp, 3, &chip).unwrap());
        assert_eq!(resume.placement, placement);
        std::fs::remove_dir_all(&dir).ok();
    }
}
