//! Pipeline observability: structured events emitted by the stage engine.
//!
//! The engine (DESIGN.md §9) reports its progress through a
//! [`PlacerObserver`] — an event sink attached to one run via
//! [`PlaceOptions`](crate::PlaceOptions). Observers are strictly
//! *listeners*: they receive every event by reference and cannot touch the
//! placement, so attaching one never changes the produced result (covered
//! by the `observer_determinism` integration tests).
//!
//! Three sinks ship with the crate:
//!
//! * [`NopObserver`] — the default; reports [`enabled`] = `false`, which
//!   lets the engine skip event construction entirely (zero overhead).
//! * [`RecordingObserver`] — buffers events in memory, for tests and
//!   programmatic consumers.
//! * [`JsonlObserver`] — serializes each event as one JSON object per
//!   line, the format behind `tvp place --trace-out`.
//!
//! [`enabled`]: PlacerObserver::enabled

use crate::placer::ThermalSnapshot;
use std::io::Write;

/// Fine-grained progress inside one stage, emitted at pass boundaries
/// (the same boundaries where cancellation is honored).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PassEvent {
    /// One coarse-legalization pass of global + local moves/swaps.
    CoarseMoves {
        /// Pass number within the stage, from 0.
        pass: usize,
        /// Improving actions executed (moves + swaps).
        improved: usize,
        /// Objective value after the pass.
        objective: f64,
    },
    /// One cell-shifting phase run to convergence.
    CoarseShift {
        /// Shifting iterations executed.
        iterations: usize,
        /// Maximum bin density after shifting.
        max_density: f64,
        /// Objective value after shifting.
        objective: f64,
    },
    /// One cell-shifting pass inside a [`CoarseShift`](Self::CoarseShift)
    /// phase — the per-pass signal the convergence detector reads.
    ShiftPass {
        /// Pass index within the phase, from 0.
        pass: usize,
        /// Cells moved by the pass (x rows + y rows + z columns).
        moved: usize,
        /// Largest relative bin-boundary displacement any row solved for
        /// (|new − old| / old bin width).
        max_boundary_delta: f64,
        /// Maximum bin density after the pass — the stall-detection
        /// signal.
        max_density: f64,
        /// Wall-clock milliseconds the pass took.
        wall_ms: f64,
    },
    /// One layer fully packed by detailed legalization.
    DetailRows {
        /// Layer index.
        layer: usize,
        /// Rows that received at least one cell.
        rows: usize,
        /// Cells packed on the layer.
        cells: usize,
    },
    /// One legality-preserving refinement pass.
    RefinePass {
        /// Pass number, from 0.
        pass: usize,
        /// Objective improvement accumulated so far (positive = better).
        improvement: f64,
    },
}

/// One structured event from the stage engine.
///
/// The JSONL rendering of each variant is documented in DESIGN.md §9; the
/// in-memory form here is what [`RecordingObserver`] stores.
#[derive(Clone, PartialEq, Debug)]
pub enum PlacerEvent {
    /// The run is starting; lists every planned stage in execution order.
    RunBegin {
        /// Stage names, in order.
        stages: Vec<String>,
        /// Index of the last stage restored from a checkpoint, if the run
        /// resumed.
        resumed_from: Option<usize>,
    },
    /// A stage was skipped because a checkpoint already covers it.
    StageSkipped {
        /// Stage index in the plan.
        index: usize,
        /// Stage name.
        stage: String,
    },
    /// A stage is starting.
    StageBegin {
        /// Stage index in the plan.
        index: usize,
        /// Stage name.
        stage: String,
    },
    /// Progress inside the currently running stage.
    Pass {
        /// Stage index in the plan.
        index: usize,
        /// Stage name.
        stage: String,
        /// The pass-level payload.
        pass: PassEvent,
    },
    /// A stage finished (completed or interrupted at a pass boundary).
    StageEnd {
        /// Stage index in the plan.
        index: usize,
        /// Stage name.
        stage: String,
        /// Wall-clock seconds the stage took.
        seconds: f64,
        /// Objective value when the stage ended.
        objective: f64,
        /// Whether the stage stopped early at a cancellation point.
        interrupted: bool,
    },
    /// A thermal solve ran at a stage boundary (CG statistics included).
    ThermalSolved {
        /// The snapshot appended to the thermal trajectory.
        snapshot: ThermalSnapshot,
    },
    /// A checkpoint was written after a stage.
    CheckpointWritten {
        /// Stage index the checkpoint covers.
        index: usize,
        /// Stage name.
        stage: String,
        /// Path of the written `.pl` file.
        path: String,
    },
    /// A planned fault fired ([`FaultPlan`](crate::FaultPlan)).
    FaultInjected {
        /// The fault class (`nan-power`, `cg-breakdown`, ...).
        kind: String,
        /// The stage-boundary site it fired at.
        site: String,
    },
    /// The pipeline recovered from a failure by degrading gracefully
    /// (also recorded in
    /// [`PlacementResult::degradations`](crate::PlacementResult)).
    Degraded {
        /// The degradation class (`thermal-degraded`, ...).
        kind: String,
        /// Human-readable description of what was given up.
        detail: String,
    },
    /// A corrupted checkpoint was renamed to `*.corrupt`; the run starts
    /// fresh instead of resuming.
    CheckpointQuarantined {
        /// New path of the quarantined file.
        path: String,
        /// Why the checkpoint was rejected.
        reason: String,
    },
    /// The run is over; the result is about to be returned.
    RunEnd {
        /// Total wall-clock seconds.
        seconds: f64,
        /// Whether cancellation or the time budget stopped the pipeline
        /// before every planned stage ran.
        stopped_early: bool,
    },
}

/// An event sink for one placement run.
///
/// Implementations must not assume anything about call timing beyond the
/// documented order: `RunBegin`, then per stage either `StageSkipped` or
/// `StageBegin` → `Pass`* → `StageEnd` (with `ThermalSolved` /
/// `CheckpointWritten` interleaved at stage boundaries), then `RunEnd`.
pub trait PlacerObserver {
    /// Whether the sink wants events at all. The engine skips event
    /// construction when this returns `false`, so a disabled observer
    /// costs nothing on the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event.
    fn event(&mut self, event: &PlacerEvent);
}

/// The default observer: discards everything and reports itself disabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NopObserver;

impl PlacerObserver for NopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&mut self, _event: &PlacerEvent) {}
}

/// Buffers every event in memory.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RecordingObserver {
    /// All events received so far, in order.
    pub events: Vec<PlacerEvent>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names of all stages that emitted `StageEnd`, in order.
    pub fn completed_stages(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                PlacerEvent::StageEnd { stage, .. } => Some(stage.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl PlacerObserver for RecordingObserver {
    fn event(&mut self, event: &PlacerEvent) {
        self.events.push(event.clone());
    }
}

/// Serializes each event as one JSON object per line (JSON Lines).
///
/// This is the sink behind `tvp place --trace-out`. Write errors are
/// remembered and reported by [`finish`](Self::finish) rather than
/// aborting the placement.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlObserver<W> {
    /// Creates a sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            error: None,
        }
    }

    /// Flushes the writer and returns the first write error, if any.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while writing or flushing.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> PlacerObserver for JsonlObserver<W> {
    fn event(&mut self, event: &PlacerEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event_to_json(event);
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one finite float as JSON (JSON has no NaN/∞; those become
/// `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders one event as a single-line JSON object (no trailing newline).
pub fn event_to_json(event: &PlacerEvent) -> String {
    match event {
        PlacerEvent::RunBegin {
            stages,
            resumed_from,
        } => {
            let list = stages
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(",");
            let resumed = match resumed_from {
                Some(i) => i.to_string(),
                None => "null".to_string(),
            };
            format!("{{\"event\":\"run_begin\",\"stages\":[{list}],\"resumed_from\":{resumed}}}")
        }
        PlacerEvent::StageSkipped { index, stage } => format!(
            "{{\"event\":\"stage_skipped\",\"index\":{index},\"stage\":\"{}\"}}",
            json_escape(stage)
        ),
        PlacerEvent::StageBegin { index, stage } => format!(
            "{{\"event\":\"stage_begin\",\"index\":{index},\"stage\":\"{}\"}}",
            json_escape(stage)
        ),
        PlacerEvent::Pass { index, stage, pass } => {
            let body = match pass {
                PassEvent::CoarseMoves {
                    pass,
                    improved,
                    objective,
                } => format!(
                    "\"kind\":\"coarse_moves\",\"pass\":{pass},\"improved\":{improved},\
                     \"objective\":{}",
                    json_f64(*objective)
                ),
                PassEvent::CoarseShift {
                    iterations,
                    max_density,
                    objective,
                } => format!(
                    "\"kind\":\"coarse_shift\",\"iterations\":{iterations},\"max_density\":{},\
                     \"objective\":{}",
                    json_f64(*max_density),
                    json_f64(*objective)
                ),
                PassEvent::ShiftPass {
                    pass,
                    moved,
                    max_boundary_delta,
                    max_density,
                    wall_ms,
                } => format!(
                    "\"kind\":\"shift_pass\",\"pass\":{pass},\"moved\":{moved},\
                     \"max_boundary_delta\":{},\"max_density\":{},\"wall_ms\":{}",
                    json_f64(*max_boundary_delta),
                    json_f64(*max_density),
                    json_f64(*wall_ms)
                ),
                PassEvent::DetailRows { layer, rows, cells } => format!(
                    "\"kind\":\"detail_rows\",\"layer\":{layer},\"rows\":{rows},\"cells\":{cells}"
                ),
                PassEvent::RefinePass { pass, improvement } => format!(
                    "\"kind\":\"refine_pass\",\"pass\":{pass},\"improvement\":{}",
                    json_f64(*improvement)
                ),
            };
            format!(
                "{{\"event\":\"pass\",\"index\":{index},\"stage\":\"{}\",{body}}}",
                json_escape(stage)
            )
        }
        PlacerEvent::StageEnd {
            index,
            stage,
            seconds,
            objective,
            interrupted,
        } => format!(
            "{{\"event\":\"stage_end\",\"index\":{index},\"stage\":\"{}\",\"seconds\":{},\
             \"objective\":{},\"interrupted\":{interrupted}}}",
            json_escape(stage),
            json_f64(*seconds),
            json_f64(*objective)
        ),
        PlacerEvent::ThermalSolved { snapshot } => format!(
            "{{\"event\":\"thermal\",\"stage\":\"{}\",\"tier\":\"{}\",\"avg_c\":{},\"max_c\":{},\
             \"cg_iterations\":{},\"warm_started\":{},\"preconditioner\":\"{}\",\
             \"initial_residual\":{},\"cross_model_max_error\":{},\"cross_model_avg_error\":{}}}",
            json_escape(snapshot.stage),
            json_escape(snapshot.tier),
            json_f64(snapshot.avg_temperature),
            json_f64(snapshot.max_temperature),
            snapshot.cg_iterations,
            snapshot.warm_started,
            json_escape(snapshot.preconditioner),
            json_f64(snapshot.initial_residual),
            json_f64(snapshot.cross_model_max_error),
            json_f64(snapshot.cross_model_avg_error)
        ),
        PlacerEvent::CheckpointWritten { index, stage, path } => format!(
            "{{\"event\":\"checkpoint\",\"index\":{index},\"stage\":\"{}\",\"path\":\"{}\"}}",
            json_escape(stage),
            json_escape(path)
        ),
        PlacerEvent::FaultInjected { kind, site } => format!(
            "{{\"event\":\"fault_injected\",\"kind\":\"{}\",\"site\":\"{}\"}}",
            json_escape(kind),
            json_escape(site)
        ),
        PlacerEvent::Degraded { kind, detail } => format!(
            "{{\"event\":\"degraded\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
            json_escape(kind),
            json_escape(detail)
        ),
        PlacerEvent::CheckpointQuarantined { path, reason } => format!(
            "{{\"event\":\"checkpoint_quarantined\",\"path\":\"{}\",\"reason\":\"{}\"}}",
            json_escape(path),
            json_escape(reason)
        ),
        PlacerEvent::RunEnd {
            seconds,
            stopped_early,
        } => format!(
            "{{\"event\":\"run_end\",\"seconds\":{},\"stopped_early\":{stopped_early}}}",
            json_f64(*seconds)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_observer_is_disabled() {
        assert!(!NopObserver.enabled());
    }

    #[test]
    fn recording_observer_collects_in_order() {
        let mut rec = RecordingObserver::new();
        rec.event(&PlacerEvent::StageBegin {
            index: 0,
            stage: "global".into(),
        });
        rec.event(&PlacerEvent::StageEnd {
            index: 0,
            stage: "global".into(),
            seconds: 0.5,
            objective: 1.0,
            interrupted: false,
        });
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.completed_stages(), vec!["global"]);
    }

    #[test]
    fn jsonl_lines_are_valid_objects() {
        let events = [
            PlacerEvent::RunBegin {
                stages: vec!["global".into(), "coarse[0]".into()],
                resumed_from: None,
            },
            PlacerEvent::Pass {
                index: 1,
                stage: "coarse[0]".into(),
                pass: PassEvent::CoarseMoves {
                    pass: 0,
                    improved: 3,
                    objective: 0.25,
                },
            },
            PlacerEvent::RunEnd {
                seconds: 1.5,
                stopped_early: true,
            },
        ];
        let mut sink = JsonlObserver::new(Vec::new());
        for e in &events {
            sink.event(e);
        }
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":"));
        }
        assert!(text.contains("\"resumed_from\":null"));
        assert!(text.contains("\"stopped_early\":true"));
    }

    #[test]
    fn shift_pass_events_render_as_json() {
        let line = event_to_json(&PlacerEvent::Pass {
            index: 1,
            stage: "coarse[0]".into(),
            pass: PassEvent::ShiftPass {
                pass: 7,
                moved: 1234,
                max_boundary_delta: 0.025,
                max_density: 1.875,
                wall_ms: 12.5,
            },
        });
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\":\"shift_pass\""));
        assert!(line.contains("\"pass\":7"));
        assert!(line.contains("\"moved\":1234"));
        assert!(line.contains("\"max_boundary_delta\":0.025"));
        assert!(line.contains("\"max_density\":1.875"));
        assert!(line.contains("\"wall_ms\":12.5"));
    }

    #[test]
    fn fault_and_degradation_events_render_as_json() {
        let events = [
            PlacerEvent::FaultInjected {
                kind: "nan-power".into(),
                site: "global".into(),
            },
            PlacerEvent::Degraded {
                kind: "thermal-degraded".into(),
                detail: "CG gave way to damped Jacobi".into(),
            },
            PlacerEvent::CheckpointQuarantined {
                path: "/tmp/ck/manifest.tvp.corrupt".into(),
                reason: "placement hash mismatch".into(),
            },
        ];
        for e in &events {
            let line = event_to_json(e);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(event_to_json(&events[0]).contains("\"event\":\"fault_injected\""));
        assert!(event_to_json(&events[1]).contains("\"kind\":\"thermal-degraded\""));
        assert!(event_to_json(&events[2]).contains("\"event\":\"checkpoint_quarantined\""));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
