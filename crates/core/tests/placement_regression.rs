//! Bitwise placement regression for the hotpaths reference designs.
//!
//! The threading contract says the pipeline's result is a pure function
//! of the input and the seed — never the worker count. These tests pin
//! that promise on the exact designs the hotpaths harness uses: the
//! FNV-1a digest of every cell's `(x, y, layer)` bits must be identical
//! at 1, 2, and 4 threads. Any divergence means a reduction or
//! work-decomposition order leaked thread count into the math.
//!
//! (The digest itself is hardware-run history, not an assertion: pinning
//! the literal would couple the test to one libm/CPU; pinning
//! cross-thread equality catches the bugs this guards against on every
//! machine. On the reference box the 1k value was `ebbdbc0c5bcd4a79`
//! through the serial coarse-pass era and moved to `eb13799fa98c9973`
//! when the coarse global/local passes switched to the batched
//! propose/commit engine — a documented transition with measured quality
//! parity: objective 2.400667e-2 vs 2.340347e-2 (+2.6%, noise-scale at
//! 1k) and at 10k (`91c23d0deb32ba2f`) objective 5.462374e-1 vs
//! 5.460820e-1 (+0.03%) with ILV *improved* 8974 → 8837. The digests
//! moved a second time when cell shifting switched to the row-parallel
//! frozen-pricing engine with stall-detected convergence-adaptive
//! spreads (DESIGN.md §17): 1k `eb13799fa98c9973` → `f82aa0d01e436964`
//! with objective 2.400667e-2 → 2.403208e-2 (+0.11%) and 10k
//! `91c23d0deb32ba2f` → `c71075bc67d2a904` with objective 5.462374e-1 →
//! 5.475507e-1 (+0.24%), ILV 8837 → 8846 — noise-scale both ways.)

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};
use tvp_netlist::CellId;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn placement_digest(cells: usize, threads: usize) -> u64 {
    let netlist =
        generate(&SynthConfig::named("hot", cells, cells as f64 * 5.0e-12)).expect("synth");
    let placer = Placer::new(
        PlacerConfig::new(4)
            .with_partition_starts(4)
            .with_threads(threads),
    );
    let result = placer.place(&netlist).expect("placement succeeds");
    let mut bytes = Vec::with_capacity(netlist.num_cells() * 18);
    for i in 0..netlist.num_cells() {
        let (x, y, layer) = result.placement.position(CellId::new(i));
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&y.to_bits().to_le_bytes());
        bytes.extend_from_slice(&layer.to_le_bytes());
    }
    fnv1a(&bytes)
}

#[test]
fn reference_1k_placement_hash_is_identical_across_threads() {
    let serial = placement_digest(1000, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            placement_digest(1000, threads),
            "placement digest diverged at threads={threads}"
        );
    }
}

/// The 10k design drives the batched coarse engine through many more
/// batches (and the parallel phase-A chunking through many more chunk
/// boundaries) than the 1k design does, so it exercises the
/// deterministic-merge contract where it is most likely to break.
#[test]
fn reference_10k_placement_hash_is_identical_across_threads() {
    let serial = placement_digest(10_000, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            placement_digest(10_000, threads),
            "placement digest diverged at threads={threads}"
        );
    }
}
