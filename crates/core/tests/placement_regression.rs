//! Bitwise placement regression for the 1k-cell reference design.
//!
//! The threading contract says the pipeline's result is a pure function
//! of the input and the seed — never the worker count. This test pins
//! that promise on the exact design the hotpaths harness uses: the
//! FNV-1a digest of every cell's `(x, y, layer)` bits must be identical
//! at 1, 2, and 4 threads. Any divergence means a reduction or
//! work-decomposition order leaked thread count into the math.
//!
//! (The digest itself is hardware-run history, not an assertion: on the
//! reference box the current value is `ebbdbc0c5bcd4a79`. Pinning the
//! literal would couple the test to one libm/CPU; pinning cross-thread
//! equality catches the bugs this guards against on every machine.)

use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::{Placer, PlacerConfig};
use tvp_netlist::CellId;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn placement_digest(threads: usize) -> u64 {
    let netlist = generate(&SynthConfig::named("hot", 1000, 1000.0 * 5.0e-12)).expect("synth");
    let placer = Placer::new(
        PlacerConfig::new(4)
            .with_partition_starts(4)
            .with_threads(threads),
    );
    let result = placer.place(&netlist).expect("placement succeeds");
    let mut bytes = Vec::with_capacity(netlist.num_cells() * 18);
    for i in 0..netlist.num_cells() {
        let (x, y, layer) = result.placement.position(CellId::new(i));
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        bytes.extend_from_slice(&y.to_bits().to_le_bytes());
        bytes.extend_from_slice(&layer.to_le_bytes());
    }
    fnv1a(&bytes)
}

#[test]
fn reference_1k_placement_hash_is_identical_across_threads() {
    let serial = placement_digest(1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            placement_digest(threads),
            "placement digest diverged at threads={threads}"
        );
    }
}
