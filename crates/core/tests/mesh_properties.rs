//! Property-based tests for the coarse density mesh: incremental
//! relocation must always agree with a from-scratch rebuild.

use proptest::prelude::*;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::coarse::DensityMesh;
use tvp_core::{Chip, Placement, PlacerConfig};
use tvp_netlist::CellId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn relocate_matches_rebuild(
        moves in prop::collection::vec((0usize..80, 0.0f64..1.0, 0.0f64..1.0, 0u16..3), 1..60),
        seed in 0u64..3,
    ) {
        let netlist = generate(&SynthConfig::named("m", 80, 4.0e-10).with_seed(seed)).unwrap();
        let config = PlacerConfig::new(3);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);

        for &(c, fx, fy, layer) in &moves {
            let cell = CellId::new(c % netlist.num_cells());
            let (x, y) = (fx * chip.width, fy * chip.depth);
            placement.set(cell, x, y, layer);
            mesh.relocate(&netlist, cell, x, y, layer);
        }

        let mut fresh = DensityMesh::coarse(&chip);
        fresh.rebuild(&netlist, &placement);
        let (nx, ny, nz) = mesh.dims();
        let mut total = 0.0;
        for b in 0..nx * ny * nz {
            prop_assert!(
                (mesh.bin_area(b) - fresh.bin_area(b)).abs() < 1e-15,
                "bin {b}: incremental {} vs rebuilt {}",
                mesh.bin_area(b),
                fresh.bin_area(b)
            );
            prop_assert_eq!(mesh.bin_cells(b).len(), fresh.bin_cells(b).len());
            total += mesh.bin_area(b);
        }
        // Area conservation: nothing leaks.
        prop_assert!((total - netlist.total_cell_area()).abs() < 1e-12);
        // Every cell's registered bin matches its position.
        for (cell, x, y, layer) in placement.iter() {
            prop_assert_eq!(mesh.bin_of(cell), mesh.bin_at(x, y, layer));
        }
    }

    #[test]
    fn densities_are_never_negative(
        moves in prop::collection::vec((0usize..40, 0.0f64..1.0, 0.0f64..1.0, 0u16..2), 1..40),
    ) {
        let netlist = generate(&SynthConfig::named("m2", 40, 2.0e-10)).unwrap();
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        let mut mesh = DensityMesh::coarse(&chip);
        mesh.rebuild(&netlist, &placement);
        for &(c, fx, fy, layer) in &moves {
            let cell = CellId::new(c % netlist.num_cells());
            let (x, y) = (fx * chip.width, fy * chip.depth);
            placement.set(cell, x, y, layer);
            mesh.relocate(&netlist, cell, x, y, layer);
            let (nx, ny, nz) = mesh.dims();
            for b in 0..nx * ny * nz {
                prop_assert!(mesh.density(b) >= -1e-15);
            }
            prop_assert!(mesh.max_density() >= 0.0);
            prop_assert!(mesh.density_unevenness() >= 0.0);
        }
    }
}
