//! Parallel-vs-serial equivalence properties over small random designs.
//!
//! The threading contract (see DESIGN.md): work decomposition is a pure
//! function of problem size, never thread count, and reductions fold
//! chunk partials in chunk order — so the full pipeline produces the
//! same placement for every `threads` setting, and floating-point
//! aggregates agree to ~1e-9 relative (≤1e-6 once amplified through a
//! CG solve). These properties pin that contract against randomly
//! generated designs rather than a single hand-picked fixture.

use proptest::prelude::*;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::netweight::NetWeights;
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, Placer, PlacerConfig};
use tvp_netlist::Netlist;

fn random_design(cells: usize, seed: u64) -> Netlist {
    generate(&SynthConfig::named("eq", cells, cells as f64 * 5.0e-12).with_seed(seed))
        .expect("synthetic design generates")
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The whole pipeline — partition, global placement, legalization,
    /// detailed placement, metrics — yields an identical placement no
    /// matter how many workers run the hot paths.
    #[test]
    fn pipeline_is_identical_across_thread_counts(
        cells in 60usize..120,
        seed in 0u64..1000,
        thermal in any::<bool>(),
    ) {
        let netlist = random_design(cells, seed);
        let alpha_temp = if thermal { 1.0e-4 } else { 0.0 };
        let place = |threads: usize| {
            Placer::new(
                PlacerConfig::new(4)
                    .with_alpha_ilv(1.0e-5)
                    .with_alpha_temp(alpha_temp)
                    .with_threads(threads),
            )
            .place(&netlist)
            .expect("placement succeeds")
        };
        let serial = place(1);
        for threads in [2usize, 4] {
            let parallel = place(threads);
            for i in 0..netlist.num_cells() {
                let cell = tvp_netlist::CellId::new(i);
                prop_assert_eq!(
                    serial.placement.position(cell),
                    parallel.placement.position(cell),
                    "cell {} diverged at threads={}", i, threads
                );
            }
            prop_assert_eq!(serial.metrics.wirelength, parallel.metrics.wirelength);
            prop_assert_eq!(serial.metrics.ilv_count, parallel.metrics.ilv_count);
            // Temperatures pass through a CG solve, which amplifies the
            // reordered-reduction noise; identical placements still must
            // agree to 1e-6 relative.
            prop_assert!(rel_close(
                serial.metrics.avg_temperature,
                parallel.metrics.avg_temperature,
                1e-6
            ));
        }
    }

    /// A full objective rebuild reduces per-net contributions in chunk
    /// order, so the parallel total matches the serial one to 1e-9.
    #[test]
    fn objective_rebuild_matches_serial(
        cells in 80usize..300,
        seed in 0u64..1000,
    ) {
        let netlist = random_design(cells, seed);
        let config = PlacerConfig::new(4).with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");
        let placement = Placement::centered(netlist.num_cells(), &chip);

        let total_at = |threads: usize| {
            tvp_parallel::with_threads(threads, || {
                let mut objective =
                    IncrementalObjective::new(&netlist, &model, placement.clone());
                objective.rebuild();
                (objective.total(), objective.total_wirelength(), objective.total_ilv())
            })
        };
        let (t1, wl1, ilv1) = total_at(1);
        for threads in [2usize, 4] {
            let (t, wl, ilv) = total_at(threads);
            prop_assert!(rel_close(t, t1, 1e-9), "total {} vs {}", t, t1);
            prop_assert!(rel_close(wl, wl1, 1e-9));
            prop_assert!(rel_close(ilv, ilv1, 1e-9));
        }
    }

    /// The row-parallel cell-shifting engine plans rows in chunks whose
    /// boundaries depend only on the row count and commits them in fixed
    /// row order, so spreading a random congested placement is bitwise
    /// identical at any thread count.
    #[test]
    fn shift_passes_match_serial(
        cells in 150usize..400,
        seed in 0u64..1000,
        spread in 0.05f64..0.4,
    ) {
        use tvp_core::coarse::shift::shift_until_spread;
        use tvp_core::coarse::DensityMesh;
        use tvp_core::ShiftStrategy;
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};

        let netlist = random_design(cells, seed);
        let config = PlacerConfig::new(2);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");
        // A random pile of tunable tightness around the chip center, so
        // every case exercises a different mesh/congestion shape.
        let mut prng = SmallRng::seed_from_u64(seed ^ 0x5417);
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            placement.set(
                tvp_netlist::CellId::new(i),
                chip.width * prng.random_range(0.5 - spread..0.5 + spread),
                chip.depth * prng.random_range(0.5 - spread..0.5 + spread),
                (i % 2) as u16,
            );
        }
        let run = |threads: usize| {
            tvp_parallel::with_threads(threads, || {
                let mut objective =
                    IncrementalObjective::new(&netlist, &model, placement.clone());
                let mut mesh = DensityMesh::coarse(&chip);
                mesh.rebuild(&netlist, objective.placement());
                let iters = shift_until_spread(
                    &mut objective,
                    &mut mesh,
                    &netlist,
                    &chip,
                    1.10,
                    50,
                    ShiftStrategy::WholeRow,
                );
                (objective.placement().clone(), iters, objective.total())
            })
        };
        let (serial, serial_iters, serial_total) = run(1);
        for threads in [2usize, 4] {
            let (parallel, iters, total) = run(threads);
            prop_assert_eq!(serial_iters, iters, "pass count diverged at threads={}", threads);
            prop_assert_eq!(serial_total.to_bits(), total.to_bits(), "objective diverged");
            for i in 0..netlist.num_cells() {
                let cell = tvp_netlist::CellId::new(i);
                prop_assert_eq!(
                    serial.position(cell),
                    parallel.position(cell),
                    "cell {} diverged at threads={}", i, threads
                );
            }
        }
    }

    /// Thermal net weights are computed per net from shared read-only
    /// state; every weight matches the serial value exactly.
    #[test]
    fn netweights_match_serial(
        cells in 80usize..300,
        seed in 0u64..1000,
    ) {
        let netlist = random_design(cells, seed);
        let config = PlacerConfig::new(4).with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");
        let placement = Placement::centered(netlist.num_cells(), &chip);

        let serial = tvp_parallel::with_threads(1, || {
            NetWeights::thermal(&netlist, &model, &placement)
        });
        for threads in [2usize, 4] {
            let parallel = tvp_parallel::with_threads(threads, || {
                NetWeights::thermal(&netlist, &model, &placement)
            });
            for e in 0..netlist.num_nets() {
                let net = tvp_netlist::NetId::new(e);
                prop_assert_eq!(
                    serial.lateral(net),
                    parallel.lateral(net),
                    "net {} lateral diverged at threads={}", e, threads
                );
                prop_assert_eq!(
                    serial.vertical(net),
                    parallel.vertical(net),
                    "net {} vertical diverged at threads={}", e, threads
                );
            }
        }
    }
}
