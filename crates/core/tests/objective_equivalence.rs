//! Incremental-vs-from-scratch equivalence properties for the delta
//! engine (DESIGN.md §11).
//!
//! The contract: after an arbitrary sequence of moves and swaps, every
//! incrementally maintained cache — per-net extremes/geometry and, when
//! the thermal term is active, `cell_power` and `cell_resistance` — is
//! *bitwise* equal to what a from-scratch `rebuild()` of the same
//! placement produces, at every thread count. Pricing is read-only, and
//! a probe's delta is bitwise equal to the delta its commit applies.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, PlacerConfig};
use tvp_netlist::{CellId, NetId, Netlist};

fn random_design(cells: usize, seed: u64) -> Netlist {
    generate(&SynthConfig::named("eq", cells, cells as f64 * 5.0e-12).with_seed(seed))
        .expect("synthetic design generates")
}

/// Drives `ops` random moves/swaps (roughly 1 swap per 3 ops) and
/// returns the final objective, placement untouched otherwise.
fn drive(
    obj: &mut IncrementalObjective<'_>,
    netlist: &Netlist,
    chip: &Chip,
    seed: u64,
    ops: usize,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..ops {
        let c = CellId::new(rng.random_range(0..netlist.num_cells()));
        if i % 3 == 0 {
            let mut b = CellId::new(rng.random_range(0..netlist.num_cells()));
            if b == c {
                b = CellId::new((b.index() + 1) % netlist.num_cells());
            }
            let probe = obj.delta_swap(c, b);
            let applied = obj.apply_swap(c, b);
            assert_eq!(probe, applied, "swap probe == commit");
        } else {
            let x = rng.random_range(0.0..chip.width);
            let y = rng.random_range(0.0..chip.depth);
            let l = rng.random_range(0..chip.num_layers as u16);
            let probe = obj.delta_move(c, x, y, l);
            let applied = obj.apply_move(c, x, y, l);
            assert_eq!(probe, applied, "move probe == commit");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// After randomized move/swap sequences the incremental caches are
    /// bitwise equal to a from-scratch rebuild of the same placement —
    /// at thread counts 1, 2, and 4.
    #[test]
    fn caches_match_rebuild_bitwise(
        cells in 60usize..160,
        seed in 0u64..1000,
        thermal in any::<bool>(),
    ) {
        let netlist = random_design(cells, seed);
        let alpha_temp = if thermal { 1.0e-4 } else { 0.0 };
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(alpha_temp);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");

        for threads in [1usize, 2, 4] {
            tvp_parallel::with_threads(threads, || {
                let mut obj = IncrementalObjective::new(
                    &netlist,
                    &model,
                    Placement::centered(netlist.num_cells(), &chip),
                );
                drive(&mut obj, &netlist, &chip, seed ^ 0xA5A5, 300);

                // Rebuild a twin from the *final* placement and compare.
                let mut fresh = IncrementalObjective::new(
                    &netlist,
                    &model,
                    obj.placement().clone(),
                );
                fresh.rebuild();
                for e in 0..netlist.num_nets() {
                    let net = NetId::new(e);
                    assert_eq!(
                        obj.net_geometry(net),
                        fresh.net_geometry(net),
                        "net {e} geometry diverged at threads={threads}"
                    );
                }
                if alpha_temp > 0.0 {
                    for i in 0..netlist.num_cells() {
                        let c = CellId::new(i);
                        assert_eq!(
                            obj.cell_power(c),
                            fresh.cell_power(c),
                            "cell {i} power diverged at threads={threads}"
                        );
                        assert_eq!(
                            obj.cell_resistance(c),
                            fresh.cell_resistance(c),
                            "cell {i} resistance diverged at threads={threads}"
                        );
                    }
                }
            });
        }
    }

    /// The same op sequence leaves bitwise-identical caches and placement
    /// at every thread count (the caches never depend on the chunking).
    #[test]
    fn op_sequences_are_thread_count_invariant(
        cells in 60usize..160,
        seed in 0u64..1000,
    ) {
        let netlist = random_design(cells, seed);
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");

        let run = |threads: usize| {
            tvp_parallel::with_threads(threads, || {
                let mut obj = IncrementalObjective::new(
                    &netlist,
                    &model,
                    Placement::centered(netlist.num_cells(), &chip),
                );
                drive(&mut obj, &netlist, &chip, seed ^ 0xC3C3, 300);
                let geometry: Vec<_> = (0..netlist.num_nets())
                    .map(|e| obj.net_geometry(NetId::new(e)))
                    .collect();
                let power: Vec<_> = (0..netlist.num_cells())
                    .map(|i| obj.cell_power(CellId::new(i)))
                    .collect();
                (obj.into_placement(), geometry, power)
            })
        };
        let (p1, g1, w1) = run(1);
        for threads in [2usize, 4] {
            let (p, g, w) = run(threads);
            for i in 0..netlist.num_cells() {
                let c = CellId::new(i);
                prop_assert_eq!(p1.position(c), p.position(c));
            }
            prop_assert_eq!(&g1, &g);
            prop_assert_eq!(&w1, &w);
        }
    }

    /// Pricing never mutates: a burst of probes leaves the total, every
    /// cache, and the placement bitwise unchanged.
    #[test]
    fn pricing_is_read_only(
        cells in 60usize..160,
        seed in 0u64..1000,
    ) {
        let netlist = random_design(cells, seed);
        let config = PlacerConfig::new(4)
            .with_alpha_ilv(1.0e-5)
            .with_alpha_temp(1.0e-4);
        let chip = Chip::from_netlist(&netlist, &config).expect("chip fits");
        let model = ObjectiveModel::new(&netlist, &chip, &config).expect("model builds");
        let mut obj = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        drive(&mut obj, &netlist, &chip, seed ^ 0x5A5A, 100);

        let total = obj.total();
        let geometry: Vec<_> = (0..netlist.num_nets())
            .map(|e| obj.net_geometry(NetId::new(e)))
            .collect();
        let power: Vec<_> = (0..netlist.num_cells())
            .map(|i| obj.cell_power(CellId::new(i)))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let c = CellId::new(rng.random_range(0..netlist.num_cells()));
            let mut b = CellId::new(rng.random_range(0..netlist.num_cells()));
            if b == c {
                b = CellId::new((b.index() + 1) % netlist.num_cells());
            }
            let _ = obj.delta_move(
                c,
                rng.random_range(0.0..chip.width),
                rng.random_range(0.0..chip.depth),
                rng.random_range(0..chip.num_layers as u16),
            );
            let _ = obj.delta_swap(c, b);
        }
        prop_assert_eq!(obj.total(), total);
        for (e, expected) in geometry.iter().enumerate() {
            prop_assert_eq!(&obj.net_geometry(NetId::new(e)), expected);
        }
        for (i, expected) in power.iter().enumerate() {
            prop_assert_eq!(&obj.cell_power(CellId::new(i)), expected);
        }
    }
}
