//! Property-based tests for the incremental objective evaluator — the
//! correctness bedrock every placement stage stands on.

use proptest::prelude::*;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_core::objective::{IncrementalObjective, ObjectiveModel};
use tvp_core::{Chip, Placement, PlacerConfig};
use tvp_netlist::CellId;

/// A move script: cell index plus fractional position on the chip.
fn moves_strategy() -> impl Strategy<Value = Vec<(usize, f64, f64, u16)>> {
    prop::collection::vec((0usize..120, 0.0f64..1.0, 0.0f64..1.0, 0u16..4), 1..80)
}

fn fixture(alpha_temp: f64, seed: u64) -> (tvp_netlist::Netlist, Chip, PlacerConfig) {
    let netlist = generate(&SynthConfig::named("p", 120, 6.0e-10).with_seed(seed)).unwrap();
    let config = PlacerConfig::new(4)
        .with_alpha_ilv(1.0e-5)
        .with_alpha_temp(alpha_temp);
    let chip = Chip::from_netlist(&netlist, &config).unwrap();
    (netlist, chip, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_total_matches_scratch_after_any_move_sequence(
        moves in moves_strategy(),
        thermal in any::<bool>(),
        seed in 0u64..4,
    ) {
        let alpha_temp = if thermal { 1.0e-4 } else { 0.0 };
        let (netlist, chip, config) = fixture(alpha_temp, seed);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        for &(c, fx, fy, layer) in &moves {
            let cell = CellId::new(c % netlist.num_cells());
            objective.apply_move(cell, fx * chip.width, fy * chip.depth, layer);
        }
        let scratch = objective.recompute_total();
        prop_assert!(
            (objective.total() - scratch).abs() <= 1e-6 * scratch.abs().max(1e-12),
            "incremental {} vs scratch {}",
            objective.total(),
            scratch
        );
    }

    #[test]
    fn delta_probe_equals_apply(
        moves in moves_strategy(),
        seed in 0u64..4,
    ) {
        let (netlist, chip, config) = fixture(1.0e-4, seed);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        for &(c, fx, fy, layer) in &moves {
            let cell = CellId::new(c % netlist.num_cells());
            let (x, y) = (fx * chip.width, fy * chip.depth);
            let probe = objective.delta_move(cell, x, y, layer);
            let before = objective.total();
            let applied = objective.apply_move(cell, x, y, layer);
            prop_assert!((probe - applied).abs() <= 1e-9 * probe.abs().max(1e-15));
            prop_assert!(
                (objective.total() - (before + applied)).abs()
                    <= 1e-9 * objective.total().abs().max(1e-12)
            );
        }
    }

    #[test]
    fn swap_is_its_own_inverse(
        pairs in prop::collection::vec((0usize..120, 0usize..120), 1..30),
        seed in 0u64..4,
    ) {
        let (netlist, chip, config) = fixture(1.0e-4, seed);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut objective = IncrementalObjective::new(
            &netlist,
            &model,
            Placement::centered(netlist.num_cells(), &chip),
        );
        for &(a, b) in &pairs {
            let a = CellId::new(a % netlist.num_cells());
            let b = CellId::new(b % netlist.num_cells());
            if a == b {
                continue;
            }
            let before = objective.total();
            let d1 = objective.apply_swap(a, b);
            let d2 = objective.apply_swap(a, b);
            prop_assert!((d1 + d2).abs() <= 1e-9 * before.abs().max(1e-12));
            prop_assert!(
                (objective.total() - before).abs() <= 1e-9 * before.abs().max(1e-12)
            );
        }
    }

    #[test]
    fn wirelength_is_translation_tolerant(
        seed in 0u64..4,
        dx_frac in 0.0f64..0.2,
    ) {
        // Translating every cell by the same offset (within bounds)
        // preserves WL and ILV exactly.
        let (netlist, chip, config) = fixture(0.0, seed);
        let model = ObjectiveModel::new(&netlist, &chip, &config).unwrap();
        let mut placement = Placement::centered(netlist.num_cells(), &chip);
        for i in 0..netlist.num_cells() {
            let c = CellId::new(i);
            placement.set(
                c,
                chip.width * (0.2 + 0.5 * (i as f64 / netlist.num_cells() as f64)),
                chip.depth * 0.4,
                (i % 4) as u16,
            );
        }
        let objective = IncrementalObjective::new(&netlist, &model, placement.clone());
        let (wl, ilv) = (objective.total_wirelength(), objective.total_ilv());

        let dx = dx_frac * chip.width;
        for i in 0..netlist.num_cells() {
            let c = CellId::new(i);
            let (x, y, l) = placement.position(c);
            placement.set(c, x + dx, y, l);
        }
        let translated = IncrementalObjective::new(&netlist, &model, placement);
        prop_assert!((translated.total_wirelength() - wl).abs() < 1e-9 * wl.max(1e-12));
        prop_assert!((translated.total_ilv() - ilv).abs() < 1e-12);
    }
}
