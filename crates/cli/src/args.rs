//! Argument parsing for the `tvp` binary (no external dependencies).

use std::error::Error;
use std::fmt;

/// Usage text printed by `tvp help`.
pub const USAGE: &str = "\
tvp — thermal- and via-aware 3D-IC placement (DAC'07 reproduction)

USAGE:
  tvp place <design.aux> [--layers N] [--alpha-ilv X] [--alpha-temp X]
            [--seed N] [--starts N] [--threads N] [--units METERS_PER_UNIT]
            [--coarse-shift-iterations N]
            [--thermal-precond P] [--mg-levels N]
            [--thermal-tier STAGE=TIER]...
            [--out DIR] [--svg FILE.svg] [--trace-out FILE.jsonl]
            [--time-budget SECONDS] [--checkpoint-dir DIR]
            [--no-preflight] [--inject-fault KIND[:SITE]]...
  tvp validate <design.aux> [--layers N] [--units METERS_PER_UNIT]
            [--alpha-temp X] [--repair [--out DIR]]
  tvp synth <name> --cells N [--area-mm2 A] [--seed N] --out DIR
  tvp stats <design.aux> [--units METERS_PER_UNIT]
  tvp sweep <design.aux> [--scenario S] [--layers N] [--points N]
            [--threads N] [--units M] [--thermal-precond P] [--mg-levels N]
            [--csv FILE] [--progress]
  tvp serve [--listen ADDR] [--state-dir DIR] [--workers N]
            [--max-queue N] [--thread-budget N] [--max-attempts N]
            [--retry-base-ms N] [--drain-secs N]
  tvp help

  --threads N        worker threads for the parallel hot paths (0 = all
                     cores, the default; 1 = fully serial; same result
                     either way)
  --coarse-shift-iterations N
                     (place) hard cap on cell-shifting passes per
                     spreading phase (default 50); spreading normally
                     stops earlier, when the passes converge
  --thermal-precond P
                     CG preconditioner for the evaluation thermal solver:
                     multigrid (or mg; the default — near-grid-independent
                     iteration counts) or jacobi (the flat baseline)
  --mg-levels N      cap the multigrid hierarchy depth (default 0 = coarsen
                     automatically until the lateral grid is trivial)
  --thermal-tier STAGE=TIER
                     (place) pick the thermal-oracle tier one pipeline
                     site queries; STAGE is one of global, coarse,
                     detail, final and TIER is full-grid (the default
                     everywhere), coarse-grid, or compact (the fitted
                     analytical model; with --alpha-temp > 0 the coarse/
                     detail sites also price individual moves against
                     it); may repeat. Non-full-grid stage solves record
                     their error against the full-grid reference in the
                     trace
  --scenario S       (sweep) alpha-ilv (default: trace the wirelength/via
                     tradeoff) or stacks (place onto named heterogeneous
                     layer stacks and tabulate the thermal impact)
  --trace-out FILE   write the stage engine's structured events as JSON
                     Lines (one event object per line)
  --time-budget S    stop gracefully after S seconds of wall clock; the
                     returned placement is still legal
  --checkpoint-dir D write a checkpoint after every completed stage; when
                     D already holds a compatible checkpoint, resume from
                     it (skipping the completed stages)
  --progress         (sweep) narrate per-stage progress on stderr
  --no-preflight     (place) skip the automatic design validation that
                     otherwise runs before placement
  --inject-fault F   (place) deterministically inject a fault for
                     robustness testing; KIND is one of nan-power,
                     cg-breakdown, partition-imbalance,
                     corrupt-checkpoint, io-error:checkpoint-write,
                     slow-stage, with an optional :SITE (a stage
                     name such as global, coarse[0], detail[0], final);
                     may repeat
  --repair           (validate) apply safe normalizations (drop
                     degenerate nets, clamp non-finite dims) and report
                     every change; with --out DIR the repaired design is
                     written back as Bookshelf files
  --listen ADDR      (serve) bind address for the placement daemon
                     (default 127.0.0.1:0; the bound address is written
                     to <state-dir>/addr)
  --state-dir DIR    (serve) durable job/checkpoint store; killed
                     daemons recover in-flight jobs from it on restart
                     (default ./tvp-serve-state)
  --workers N        (serve) concurrent job executions (default 2); all
                     jobs share the --thread-budget pool fairly
  --max-queue N      (serve) admission-control bound on queued jobs; a
                     full queue answers HTTP 429 + Retry-After
                     (default 8)
  --thread-budget N  (serve) total threads leased across concurrent
                     jobs, 0 = all hardware threads (default 0)
  --max-attempts N   (serve) default retry cap for retryable job
                     failures before dead-lettering (default 3)
  --retry-base-ms N  (serve) base delay of the jittered exponential
                     retry backoff (default 500)
  --drain-secs N     (serve) graceful-shutdown drain budget; running
                     jobs still unfinished after it are checkpointed
                     and parked for the next start (default 5)

EXAMPLES:
  tvp synth demo --cells 2000 --out bench/
  tvp place bench/demo.aux --layers 4 --alpha-ilv 1e-5 --out placed/
  tvp place bench/demo.aux --trace-out trace.jsonl --time-budget 300 \\
            --checkpoint-dir ckpt/
";

/// A parsed `tvp` invocation.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// `tvp place`.
    Place(PlaceArgs),
    /// `tvp validate`.
    Validate(ValidateArgs),
    /// `tvp synth`.
    Synth(SynthArgs),
    /// `tvp stats`.
    Stats(StatsArgs),
    /// `tvp sweep`.
    Sweep(SweepArgs),
    /// `tvp serve`.
    Serve(ServeArgs),
    /// `tvp help` (or no arguments).
    Help,
}

/// Arguments of `tvp serve`: the fault-tolerant placement daemon.
#[derive(Clone, PartialEq, Debug)]
pub struct ServeArgs {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Durable job/checkpoint store directory.
    pub state_dir: String,
    /// Concurrent job executions.
    pub workers: usize,
    /// Admission-control bound on queued jobs.
    pub max_queue: usize,
    /// Threads shared across concurrent jobs (0 = all hardware threads).
    pub thread_budget: usize,
    /// Default retry cap per job.
    pub max_attempts: u32,
    /// Backoff base delay, milliseconds.
    pub retry_base_ms: u64,
    /// Graceful-shutdown drain budget, seconds.
    pub drain_secs: u64,
}

/// Arguments of `tvp validate`: preflight diagnostics for one design.
#[derive(Clone, PartialEq, Debug)]
pub struct ValidateArgs {
    /// Path to the `.aux` manifest.
    pub aux: String,
    /// Device layers the design would be placed onto.
    pub layers: usize,
    /// Meters per Bookshelf site unit.
    pub meters_per_unit: f64,
    /// Thermal coefficient the design would be placed with (enables the
    /// inert-thermal-objective check; 0 = off).
    pub alpha_temp: f64,
    /// Apply safe normalizations and report them.
    pub repair: bool,
    /// Output directory for the repaired design (requires `--repair`).
    pub out: Option<String>,
}

/// Arguments of `tvp sweep`: an `α_ILV` tradeoff sweep on one design.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepArgs {
    /// Path to the `.aux` manifest.
    pub aux: String,
    /// Sweep scenario (`"alpha-ilv"` or `"stacks"`).
    pub scenario: String,
    /// Device layers.
    pub layers: usize,
    /// Number of sweep points.
    pub points: usize,
    /// Worker threads (0 = all hardware threads).
    pub threads: usize,
    /// Meters per Bookshelf site unit.
    pub meters_per_unit: f64,
    /// Thermal CG preconditioner (`"multigrid"` or `"jacobi"`).
    pub thermal_precond: String,
    /// Multigrid hierarchy depth cap (0 = automatic).
    pub mg_levels: usize,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Narrate per-stage progress on stderr.
    pub progress: bool,
}

/// Arguments of `tvp place`.
#[derive(Clone, PartialEq, Debug)]
pub struct PlaceArgs {
    /// Path to the `.aux` manifest.
    pub aux: String,
    /// Device layers.
    pub layers: usize,
    /// Interlayer via coefficient, meters.
    pub alpha_ilv: f64,
    /// Thermal coefficient, m/K (0 = off).
    pub alpha_temp: f64,
    /// RNG seed.
    pub seed: u64,
    /// Bisection restarts.
    pub starts: usize,
    /// Worker threads (0 = all hardware threads).
    pub threads: usize,
    /// Meters per Bookshelf site unit.
    pub meters_per_unit: f64,
    /// Hard cap on cell-shifting passes per spreading phase (`None` =
    /// the library default; spreading normally converges earlier).
    pub coarse_shift_iterations: Option<usize>,
    /// Thermal CG preconditioner (`"multigrid"` or `"jacobi"`).
    pub thermal_precond: String,
    /// Multigrid hierarchy depth cap (0 = automatic).
    pub mg_levels: usize,
    /// `STAGE=TIER` thermal-tier overrides (validated in the command).
    pub thermal_tiers: Vec<String>,
    /// Output directory for the placed design (omitted = metrics only).
    pub out: Option<String>,
    /// Path for an SVG rendering of the placement (omitted = none).
    pub svg: Option<String>,
    /// Path for a JSONL trace of the stage engine's events.
    pub trace_out: Option<String>,
    /// Wall-clock budget in seconds; the run stops gracefully when it
    /// expires.
    pub time_budget: Option<f64>,
    /// Checkpoint directory (written after every completed stage; resumed
    /// from when it already holds a compatible checkpoint).
    pub checkpoint_dir: Option<String>,
    /// Skip the automatic preflight validation.
    pub no_preflight: bool,
    /// Fault specs (`kind` or `kind:site`) to inject deterministically.
    pub inject_faults: Vec<String>,
}

/// Arguments of `tvp synth`.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthArgs {
    /// Benchmark name.
    pub name: String,
    /// Number of cells.
    pub cells: usize,
    /// Total cell area in mm².
    pub area_mm2: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output directory.
    pub out: String,
    /// Meters per Bookshelf site unit for the written files.
    pub meters_per_unit: f64,
}

/// Arguments of `tvp stats`.
#[derive(Clone, PartialEq, Debug)]
pub struct StatsArgs {
    /// Path to the `.aux` manifest.
    pub aux: String,
    /// Meters per Bookshelf site unit.
    pub meters_per_unit: f64,
}

/// Error produced while parsing the command line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseArgsError(String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{USAGE}", self.0)
    }
}

impl Error for ParseArgsError {}

fn err(msg: impl Into<String>) -> ParseArgsError {
    ParseArgsError(msg.into())
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] describing the offending flag or missing
/// value; its `Display` includes the usage text.
pub fn parse(argv: &[String]) -> Result<Command, ParseArgsError> {
    let mut it = argv.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "place" => parse_place(&mut it),
        "validate" => parse_validate(&mut it),
        "synth" => parse_synth(&mut it),
        "stats" => parse_stats(&mut it),
        "sweep" => parse_sweep(&mut it),
        "serve" => parse_serve(&mut it),
        other => Err(err(format!("unknown subcommand `{other}`"))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, ParseArgsError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| err(format!("flag {flag} expects a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseArgsError> {
    value
        .parse()
        .map_err(|_| err(format!("flag {flag}: `{value}` is not a valid number")))
}

/// Normalizes a `--thermal-precond` value (`mg` is shorthand for
/// `multigrid`).
fn parse_precond(value: &str) -> Result<String, ParseArgsError> {
    match value {
        "multigrid" | "mg" => Ok("multigrid".to_string()),
        "jacobi" => Ok("jacobi".to_string()),
        other => Err(err(format!(
            "flag --thermal-precond: `{other}` is not one of multigrid, mg, jacobi"
        ))),
    }
}

fn parse_place(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut args = PlaceArgs {
        aux: String::new(),
        layers: 4,
        alpha_ilv: 1.0e-5,
        alpha_temp: 0.0,
        seed: 1,
        starts: 1,
        threads: 0,
        meters_per_unit: 1.0e-6,
        coarse_shift_iterations: None,
        thermal_precond: "multigrid".to_string(),
        mg_levels: 0,
        thermal_tiers: Vec::new(),
        out: None,
        svg: None,
        trace_out: None,
        time_budget: None,
        checkpoint_dir: None,
        no_preflight: false,
        inject_faults: Vec::new(),
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--layers" => args.layers = parse_num(token, take_value(token, it)?)?,
            "--alpha-ilv" => args.alpha_ilv = parse_num(token, take_value(token, it)?)?,
            "--alpha-temp" => args.alpha_temp = parse_num(token, take_value(token, it)?)?,
            "--seed" => args.seed = parse_num(token, take_value(token, it)?)?,
            "--starts" => args.starts = parse_num(token, take_value(token, it)?)?,
            "--threads" => args.threads = parse_num(token, take_value(token, it)?)?,
            "--units" => args.meters_per_unit = parse_num(token, take_value(token, it)?)?,
            "--coarse-shift-iterations" => {
                let cap: usize = parse_num(token, take_value(token, it)?)?;
                if cap == 0 {
                    return Err(err(
                        "flag --coarse-shift-iterations expects a value of at least 1",
                    ));
                }
                args.coarse_shift_iterations = Some(cap);
            }
            "--thermal-precond" => args.thermal_precond = parse_precond(take_value(token, it)?)?,
            "--mg-levels" => args.mg_levels = parse_num(token, take_value(token, it)?)?,
            "--thermal-tier" => args.thermal_tiers.push(take_value(token, it)?.to_string()),
            "--out" => args.out = Some(take_value(token, it)?.to_string()),
            "--svg" => args.svg = Some(take_value(token, it)?.to_string()),
            "--trace-out" => args.trace_out = Some(take_value(token, it)?.to_string()),
            "--time-budget" => {
                let seconds: f64 = parse_num(token, take_value(token, it)?)?;
                if !seconds.is_finite() || seconds < 0.0 {
                    return Err(err("flag --time-budget expects a non-negative number"));
                }
                args.time_budget = Some(seconds);
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(take_value(token, it)?.to_string()),
            "--no-preflight" => args.no_preflight = true,
            "--inject-fault" => args.inject_faults.push(take_value(token, it)?.to_string()),
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `place`")))
            }
            positional if args.aux.is_empty() => args.aux = positional.to_string(),
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    if args.aux.is_empty() {
        return Err(err("`place` needs a <design.aux> path"));
    }
    Ok(Command::Place(args))
}

fn parse_validate(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut args = ValidateArgs {
        aux: String::new(),
        layers: 4,
        meters_per_unit: 1.0e-6,
        alpha_temp: 0.0,
        repair: false,
        out: None,
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--layers" => args.layers = parse_num(token, take_value(token, it)?)?,
            "--units" => args.meters_per_unit = parse_num(token, take_value(token, it)?)?,
            "--alpha-temp" => args.alpha_temp = parse_num(token, take_value(token, it)?)?,
            "--repair" => args.repair = true,
            "--out" => args.out = Some(take_value(token, it)?.to_string()),
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `validate`")))
            }
            positional if args.aux.is_empty() => args.aux = positional.to_string(),
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    if args.aux.is_empty() {
        return Err(err("`validate` needs a <design.aux> path"));
    }
    if args.out.is_some() && !args.repair {
        return Err(err("`validate --out` requires `--repair`"));
    }
    Ok(Command::Validate(args))
}

fn parse_synth(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut name = String::new();
    let mut cells = None;
    let mut area_mm2 = None;
    let mut seed = 1;
    let mut out = None;
    let mut meters_per_unit = 1.0e-6;
    while let Some(token) = it.next() {
        match token.as_str() {
            "--cells" => cells = Some(parse_num(token, take_value(token, it)?)?),
            "--area-mm2" => area_mm2 = Some(parse_num(token, take_value(token, it)?)?),
            "--seed" => seed = parse_num(token, take_value(token, it)?)?,
            "--out" => out = Some(take_value(token, it)?.to_string()),
            "--units" => meters_per_unit = parse_num(token, take_value(token, it)?)?,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `synth`")))
            }
            positional if name.is_empty() => name = positional.to_string(),
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    if name.is_empty() {
        return Err(err("`synth` needs a benchmark <name>"));
    }
    let cells = cells.ok_or_else(|| err("`synth` needs --cells N"))?;
    // Default: IBM-PLACE-like average cell area (≈ 5 µm² per cell).
    let area_mm2 = area_mm2.unwrap_or(cells as f64 * 5.0e-6);
    let out = out.ok_or_else(|| err("`synth` needs --out DIR"))?;
    Ok(Command::Synth(SynthArgs {
        name,
        cells,
        area_mm2,
        seed,
        out,
        meters_per_unit,
    }))
}

fn parse_stats(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut aux = String::new();
    let mut meters_per_unit = 1.0e-6;
    while let Some(token) = it.next() {
        match token.as_str() {
            "--units" => meters_per_unit = parse_num(token, take_value(token, it)?)?,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `stats`")))
            }
            positional if aux.is_empty() => aux = positional.to_string(),
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    if aux.is_empty() {
        return Err(err("`stats` needs a <design.aux> path"));
    }
    Ok(Command::Stats(StatsArgs {
        aux,
        meters_per_unit,
    }))
}

fn parse_sweep(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut args = SweepArgs {
        aux: String::new(),
        scenario: "alpha-ilv".to_string(),
        layers: 4,
        points: 7,
        threads: 0,
        meters_per_unit: 1.0e-6,
        thermal_precond: "multigrid".to_string(),
        mg_levels: 0,
        csv: None,
        progress: false,
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--scenario" => {
                let value = take_value(token, it)?;
                match value {
                    "alpha-ilv" | "stacks" => args.scenario = value.to_string(),
                    other => {
                        return Err(err(format!(
                            "flag --scenario: `{other}` is not one of alpha-ilv, stacks"
                        )))
                    }
                }
            }
            "--layers" => args.layers = parse_num(token, take_value(token, it)?)?,
            "--points" => args.points = parse_num(token, take_value(token, it)?)?,
            "--threads" => args.threads = parse_num(token, take_value(token, it)?)?,
            "--units" => args.meters_per_unit = parse_num(token, take_value(token, it)?)?,
            "--thermal-precond" => args.thermal_precond = parse_precond(take_value(token, it)?)?,
            "--mg-levels" => args.mg_levels = parse_num(token, take_value(token, it)?)?,
            "--csv" => args.csv = Some(take_value(token, it)?.to_string()),
            "--progress" => args.progress = true,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `sweep`")))
            }
            positional if args.aux.is_empty() => args.aux = positional.to_string(),
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    if args.aux.is_empty() {
        return Err(err("`sweep` needs a <design.aux> path"));
    }
    if args.points < 2 {
        return Err(err("`sweep` needs --points >= 2"));
    }
    Ok(Command::Sweep(args))
}

fn parse_serve(it: &mut std::slice::Iter<'_, String>) -> Result<Command, ParseArgsError> {
    let mut args = ServeArgs {
        listen: "127.0.0.1:0".to_string(),
        state_dir: "tvp-serve-state".to_string(),
        workers: 2,
        max_queue: 8,
        thread_budget: 0,
        max_attempts: 3,
        retry_base_ms: 500,
        drain_secs: 5,
    };
    while let Some(token) = it.next() {
        match token.as_str() {
            "--listen" => args.listen = take_value(token, it)?.to_string(),
            "--state-dir" => args.state_dir = take_value(token, it)?.to_string(),
            "--workers" => args.workers = parse_num(token, take_value(token, it)?)?,
            "--max-queue" => args.max_queue = parse_num(token, take_value(token, it)?)?,
            "--thread-budget" => args.thread_budget = parse_num(token, take_value(token, it)?)?,
            "--max-attempts" => {
                args.max_attempts = parse_num(token, take_value(token, it)?)?;
                if args.max_attempts == 0 {
                    return Err(err("flag --max-attempts expects a value of at least 1"));
                }
            }
            "--retry-base-ms" => args.retry_base_ms = parse_num(token, take_value(token, it)?)?,
            "--drain-secs" => args.drain_secs = parse_num(token, take_value(token, it)?)?,
            flag if flag.starts_with("--") => {
                return Err(err(format!("unknown flag `{flag}` for `serve`")))
            }
            extra => return Err(err(format!("unexpected argument `{extra}`"))),
        }
    }
    Ok(Command::Serve(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn serve_parses_flags_and_defaults() {
        let Command::Serve(a) = parse(&argv(
            "serve --listen 127.0.0.1:7433 --state-dir /tmp/tvp --workers 4 \
             --max-queue 16 --thread-budget 8 --max-attempts 5 \
             --retry-base-ms 100 --drain-secs 2",
        ))
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(a.listen, "127.0.0.1:7433");
        assert_eq!(a.state_dir, "/tmp/tvp");
        assert_eq!(a.workers, 4);
        assert_eq!(a.max_queue, 16);
        assert_eq!(a.thread_budget, 8);
        assert_eq!(a.max_attempts, 5);
        assert_eq!(a.retry_base_ms, 100);
        assert_eq!(a.drain_secs, 2);

        let Command::Serve(d) = parse(&argv("serve")).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(d.listen, "127.0.0.1:0");
        assert_eq!(d.workers, 2);
        assert_eq!(d.max_queue, 8);
        assert_eq!(d.max_attempts, 3);

        assert!(parse(&argv("serve --max-attempts 0")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
    }

    #[test]
    fn place_defaults_and_flags() {
        let Command::Place(a) = parse(&argv(
            "place d.aux --layers 2 --alpha-ilv 1e-6 --alpha-temp 1e-5 --seed 9 --threads 8 --out o",
        ))
        .unwrap() else {
            panic!("expected place")
        };
        assert_eq!(a.aux, "d.aux");
        assert_eq!(a.layers, 2);
        assert_eq!(a.alpha_ilv, 1e-6);
        assert_eq!(a.alpha_temp, 1e-5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 8);
        assert_eq!(a.out.as_deref(), Some("o"));

        let Command::Place(d) = parse(&argv("place d.aux")).unwrap() else {
            panic!()
        };
        assert_eq!(d.layers, 4);
        assert_eq!(d.alpha_ilv, 1e-5);
        assert_eq!(d.threads, 0, "default = all hardware threads");
        assert_eq!(d.coarse_shift_iterations, None, "library default cap");
        assert_eq!(d.thermal_precond, "multigrid", "multigrid is the default");
        assert_eq!(d.mg_levels, 0, "default = automatic depth");
        assert_eq!(d.out, None);
        assert_eq!(d.trace_out, None);
        assert_eq!(d.time_budget, None);
        assert_eq!(d.checkpoint_dir, None);
    }

    #[test]
    fn thermal_precond_flags_parse_and_validate() {
        let Command::Place(a) = parse(&argv("place d.aux --thermal-precond jacobi")).unwrap()
        else {
            panic!("expected place")
        };
        assert_eq!(a.thermal_precond, "jacobi");

        // `mg` is shorthand for multigrid; the depth cap rides along.
        let Command::Place(a) =
            parse(&argv("place d.aux --thermal-precond mg --mg-levels 3")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.thermal_precond, "multigrid");
        assert_eq!(a.mg_levels, 3);

        let Command::Sweep(s) =
            parse(&argv("sweep d.aux --thermal-precond jacobi --mg-levels 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!(s.thermal_precond, "jacobi");
        assert_eq!(s.mg_levels, 2);

        let e = parse(&argv("place d.aux --thermal-precond ilu")).unwrap_err();
        assert!(e.to_string().contains("multigrid, mg, jacobi"));
    }

    #[test]
    fn thermal_tier_flags_accumulate() {
        let Command::Place(a) = parse(&argv(
            "place d.aux --thermal-tier coarse=compact --thermal-tier global=coarse-grid",
        ))
        .unwrap() else {
            panic!("expected place")
        };
        assert_eq!(a.thermal_tiers, ["coarse=compact", "global=coarse-grid"]);

        let Command::Place(d) = parse(&argv("place d.aux")).unwrap() else {
            panic!()
        };
        assert!(
            d.thermal_tiers.is_empty(),
            "full-grid everywhere by default"
        );
    }

    #[test]
    fn validate_accepts_alpha_temp() {
        let Command::Validate(a) = parse(&argv("validate d.aux --alpha-temp 1e-4")).unwrap() else {
            panic!("expected validate")
        };
        assert_eq!(a.alpha_temp, 1e-4);
        let Command::Validate(d) = parse(&argv("validate d.aux")).unwrap() else {
            panic!()
        };
        assert_eq!(d.alpha_temp, 0.0);
    }

    #[test]
    fn sweep_scenario_parses_and_rejects_unknown() {
        let Command::Sweep(a) = parse(&argv("sweep d.aux --scenario stacks")).unwrap() else {
            panic!()
        };
        assert_eq!(a.scenario, "stacks");
        let Command::Sweep(d) = parse(&argv("sweep d.aux")).unwrap() else {
            panic!()
        };
        assert_eq!(d.scenario, "alpha-ilv");
        let e = parse(&argv("sweep d.aux --scenario frob")).unwrap_err();
        assert!(e.to_string().contains("alpha-ilv, stacks"));
    }

    #[test]
    fn place_run_control_flags() {
        let Command::Place(a) = parse(&argv(
            "place d.aux --trace-out t.jsonl --time-budget 2.5 --checkpoint-dir ck",
        ))
        .unwrap() else {
            panic!("expected place")
        };
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(a.time_budget, Some(2.5));
        assert_eq!(a.checkpoint_dir.as_deref(), Some("ck"));

        let e = parse(&argv("place d.aux --time-budget -1")).unwrap_err();
        assert!(e.to_string().contains("non-negative"));
        let e = parse(&argv("place d.aux --time-budget nope")).unwrap_err();
        assert!(e.to_string().contains("not a valid number"));
    }

    #[test]
    fn coarse_shift_iterations_is_a_validated_cap() {
        let Command::Place(a) = parse(&argv("place d.aux --coarse-shift-iterations 80")).unwrap()
        else {
            panic!("expected place")
        };
        assert_eq!(a.coarse_shift_iterations, Some(80));
        let e = parse(&argv("place d.aux --coarse-shift-iterations 0")).unwrap_err();
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn place_robustness_flags() {
        let Command::Place(a) = parse(&argv(
            "place d.aux --no-preflight --inject-fault nan-power --inject-fault cg-breakdown:final",
        ))
        .unwrap() else {
            panic!("expected place")
        };
        assert!(a.no_preflight);
        assert_eq!(a.inject_faults, ["nan-power", "cg-breakdown:final"]);

        let Command::Place(d) = parse(&argv("place d.aux")).unwrap() else {
            panic!()
        };
        assert!(!d.no_preflight, "preflight is on by default");
        assert!(d.inject_faults.is_empty());
    }

    #[test]
    fn validate_parses() {
        let Command::Validate(a) = parse(&argv("validate d.aux --layers 2")).unwrap() else {
            panic!("expected validate")
        };
        assert_eq!(a.aux, "d.aux");
        assert_eq!(a.layers, 2);
        assert!(!a.repair);
        assert_eq!(a.out, None);

        let Command::Validate(a) = parse(&argv("validate d.aux --repair --out fixed")).unwrap()
        else {
            panic!()
        };
        assert!(a.repair);
        assert_eq!(a.out.as_deref(), Some("fixed"));

        assert!(parse(&argv("validate")).is_err());
        let e = parse(&argv("validate d.aux --out fixed")).unwrap_err();
        assert!(e.to_string().contains("--repair"));
    }

    #[test]
    fn synth_requires_cells_and_out() {
        assert!(parse(&argv("synth demo --out o")).is_err());
        assert!(parse(&argv("synth demo --cells 100")).is_err());
        let Command::Synth(a) = parse(&argv("synth demo --cells 100 --out o --seed 3")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.name, "demo");
        assert_eq!(a.cells, 100);
        assert_eq!(a.seed, 3);
        assert!((a.area_mm2 - 100.0 * 5.0e-6).abs() < 1e-12, "default area");
    }

    #[test]
    fn bad_flags_are_reported_with_usage() {
        let e = parse(&argv("place d.aux --bogus 1")).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        assert!(e.to_string().contains("USAGE"));
        let e = parse(&argv("place")).unwrap_err();
        assert!(e.to_string().contains("design.aux"));
        let e = parse(&argv("place d.aux --layers")).unwrap_err();
        assert!(e.to_string().contains("expects a value"));
        let e = parse(&argv("place d.aux --layers x")).unwrap_err();
        assert!(e.to_string().contains("not a valid number"));
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn sweep_parses_with_defaults_and_flags() {
        let Command::Sweep(a) = parse(&argv("sweep d.aux")).unwrap() else {
            panic!()
        };
        assert_eq!(a.layers, 4);
        assert_eq!(a.points, 7);
        assert_eq!(a.csv, None);
        assert!(!a.progress);
        let Command::Sweep(a) = parse(&argv(
            "sweep d.aux --layers 2 --points 5 --threads 2 --csv out.csv --progress",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.layers, 2);
        assert_eq!(a.points, 5);
        assert_eq!(a.threads, 2);
        assert_eq!(a.csv.as_deref(), Some("out.csv"));
        assert!(a.progress);
        assert!(parse(&argv("sweep d.aux --points 1")).is_err());
        assert!(parse(&argv("sweep")).is_err());
    }

    #[test]
    fn stats_parses() {
        let Command::Stats(a) = parse(&argv("stats d.aux --units 2e-6")).unwrap() else {
            panic!()
        };
        assert_eq!(a.aux, "d.aux");
        assert_eq!(a.meters_per_unit, 2e-6);
    }
}
