//! Human-readable progress narration for long placements.
//!
//! [`StderrProgress`] is a [`PlacerObserver`] that prints one line per
//! stage boundary to stderr (stdout stays reserved for the command's
//! actual output). Used by `tvp sweep --progress`.

use std::io::Write;
use tvp_core::{PlacerEvent, PlacerObserver};

/// Narrates stage-level progress to a writer (stderr in production).
pub struct StderrProgress<W: Write> {
    label: String,
    out: W,
}

impl StderrProgress<std::io::Stderr> {
    /// Creates a narrator tagged with `label`, writing to stderr.
    pub fn stderr(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            out: std::io::stderr(),
        }
    }
}

impl<W: Write> StderrProgress<W> {
    /// Creates a narrator tagged with `label`, writing to `out` (tests).
    pub fn new(label: impl Into<String>, out: W) -> Self {
        Self {
            label: label.into(),
            out,
        }
    }

    /// Consumes the narrator, returning the writer (tests).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> PlacerObserver for StderrProgress<W> {
    fn event(&mut self, event: &PlacerEvent) {
        let label = &self.label;
        // Progress is best-effort; a broken stderr must not kill the run.
        let _ = match event {
            PlacerEvent::RunBegin {
                stages,
                resumed_from,
            } => match resumed_from {
                Some(i) => writeln!(
                    self.out,
                    "[{label}] {} stages (resuming after {})",
                    stages.len(),
                    stages[*i]
                ),
                None => writeln!(self.out, "[{label}] {} stages", stages.len()),
            },
            PlacerEvent::StageEnd {
                stage,
                seconds,
                objective,
                interrupted,
                ..
            } => writeln!(
                self.out,
                "[{label}]   {stage}: {seconds:.2}s, objective {objective:.4e}{}",
                if *interrupted { " (interrupted)" } else { "" }
            ),
            PlacerEvent::ThermalSolved { snapshot } => writeln!(
                self.out,
                "[{label}]   thermal after {}: avg {:.1} C, max {:.1} C \
                 ({} CG iters, {}{})",
                snapshot.stage,
                snapshot.avg_temperature,
                snapshot.max_temperature,
                snapshot.cg_iterations,
                snapshot.preconditioner,
                if snapshot.warm_started {
                    ", warm"
                } else {
                    ", cold"
                }
            ),
            PlacerEvent::FaultInjected { kind, site } => {
                writeln!(self.out, "[{label}]   fault injected: {kind} at {site}")
            }
            PlacerEvent::Degraded { kind, detail } => {
                writeln!(self.out, "[{label}]   degraded: {kind} ({detail})")
            }
            PlacerEvent::RunEnd {
                seconds,
                stopped_early,
            } => writeln!(
                self.out,
                "[{label}] done in {seconds:.2}s{}",
                if *stopped_early {
                    " (stopped early)"
                } else {
                    ""
                }
            ),
            // Shifting passes are the one pass-level signal worth
            // narrating: their count is now convergence-driven, so
            // watching the peak density stall is how a user sees a
            // spread converge (or hit the cap) live.
            PlacerEvent::Pass {
                stage,
                pass:
                    tvp_core::PassEvent::ShiftPass {
                        pass,
                        moved,
                        max_boundary_delta,
                        max_density,
                        wall_ms,
                    },
                ..
            } => writeln!(
                self.out,
                "[{label}]     {stage} shift pass {pass}: moved {moved}, \
                 max Δbound {max_boundary_delta:.2e}, peak density \
                 {max_density:.3}, {wall_ms:.1} ms"
            ),
            // Other pass-level events are too chatty for a narration
            // stream.
            _ => Ok(()),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrates_stage_boundaries_only() {
        let mut p = StderrProgress::new("t", Vec::new());
        p.event(&PlacerEvent::RunBegin {
            stages: vec!["global".into(), "coarse[0]".into()],
            resumed_from: None,
        });
        p.event(&PlacerEvent::StageBegin {
            index: 0,
            stage: "global".into(),
        });
        p.event(&PlacerEvent::StageEnd {
            index: 0,
            stage: "global".into(),
            seconds: 0.25,
            objective: 1.25e-2,
            interrupted: false,
        });
        p.event(&PlacerEvent::RunEnd {
            seconds: 1.0,
            stopped_early: false,
        });
        let text = String::from_utf8(p.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3, "StageBegin stays silent:\n{text}");
        assert!(text.contains("[t] 2 stages"));
        assert!(text.contains("global: 0.25s"));
        assert!(text.contains("done in 1.00s"));
    }

    #[test]
    fn narrates_shift_passes_but_not_other_pass_events() {
        let mut p = StderrProgress::new("t", Vec::new());
        p.event(&PlacerEvent::Pass {
            index: 1,
            stage: "coarse[0]".into(),
            pass: tvp_core::PassEvent::ShiftPass {
                pass: 3,
                moved: 421,
                max_boundary_delta: 0.0125,
                max_density: 1.875,
                wall_ms: 7.25,
            },
        });
        p.event(&PlacerEvent::Pass {
            index: 1,
            stage: "coarse[0]".into(),
            pass: tvp_core::PassEvent::CoarseMoves {
                pass: 0,
                improved: 10,
                objective: 1.0e-2,
            },
        });
        let text = String::from_utf8(p.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1, "only ShiftPass narrates:\n{text}");
        assert!(text.contains("coarse[0] shift pass 3: moved 421"), "{text}");
        assert!(text.contains("1.25e-2"), "{text}");
        assert!(text.contains("peak density 1.875"), "{text}");
    }

    #[test]
    fn narrates_faults_and_degradations() {
        let mut p = StderrProgress::new("t", Vec::new());
        p.event(&PlacerEvent::FaultInjected {
            kind: "slow-stage".into(),
            site: "coarse[0]".into(),
        });
        p.event(&PlacerEvent::Degraded {
            kind: "thermal-degraded".into(),
            detail: "CG breakdown, kept previous field".into(),
        });
        let text = String::from_utf8(p.into_inner()).unwrap();
        assert!(
            text.contains("fault injected: slow-stage at coarse[0]"),
            "{text}"
        );
        assert!(
            text.contains("degraded: thermal-degraded (CG breakdown"),
            "{text}"
        );
    }

    #[test]
    fn marks_resume_and_early_stop() {
        let mut p = StderrProgress::new("t", Vec::new());
        p.event(&PlacerEvent::RunBegin {
            stages: vec!["global".into(), "coarse[0]".into()],
            resumed_from: Some(0),
        });
        p.event(&PlacerEvent::RunEnd {
            seconds: 0.5,
            stopped_early: true,
        });
        let text = String::from_utf8(p.into_inner()).unwrap();
        assert!(text.contains("resuming after global"));
        assert!(text.contains("(stopped early)"));
    }
}
