//! Command implementations for the `tvp` binary.

use crate::args::{PlaceArgs, ServeArgs, StatsArgs, SweepArgs, SynthArgs, ValidateArgs};
use crate::progress::StderrProgress;
use std::fmt::Write as _;
use tvp_bookshelf::synth::SynthConfig;
use tvp_bookshelf::{Design, DesignBuilderOptions};
use tvp_core::{
    FaultKind, FaultPlan, JsonlObserver, LayerSpec, PlaceOptions, Placer, PlacerConfig,
    PlacerObserver, Preconditioner, ThermalTier, ValidateOptions,
};
use tvp_netlist::CellId;

/// Maps the CLI's (already validated) preconditioner name + depth cap
/// onto the solver enum.
fn precond_from_args(name: &str, mg_levels: usize) -> Preconditioner {
    match name {
        "jacobi" => Preconditioner::Jacobi,
        _ => Preconditioner::Multigrid { levels: mg_levels },
    }
}

/// Parses one `--inject-fault` spec (`kind` or `kind:site`). Omitted
/// sites default to the stage where the fault class naturally lands.
/// The grammar (shared with the `tvp serve` job API) lives in
/// `tvp_core::faults::parse_spec`.
fn parse_fault_spec(spec: &str) -> Result<(FaultKind, String), String> {
    tvp_core::faults::parse_spec(spec)
}

/// Suffix appended to sweep table lines when a point only completed by
/// degrading gracefully — silent fallbacks would otherwise make a
/// degraded point indistinguishable from a clean one.
fn degradation_suffix(result: &tvp_core::PlacementResult) -> String {
    match result.degradations.len() {
        0 => String::new(),
        1 => "  [1 degradation]".to_string(),
        n => format!("  [{n} degradations]"),
    }
}

/// Parses one `--thermal-tier` spec (`STAGE=TIER`, e.g.
/// `coarse=compact`).
fn parse_tier_spec(spec: &str) -> Result<(&str, ThermalTier), String> {
    let Some((stage, tier_str)) = spec.split_once('=') else {
        return Err(format!(
            "--thermal-tier expects STAGE=TIER, got `{spec}` \
             (e.g. coarse=compact)"
        ));
    };
    if !matches!(stage, "global" | "coarse" | "detail" | "final") {
        return Err(format!(
            "unknown thermal-tier stage `{stage}` (expected global, coarse, \
             detail, or final)"
        ));
    }
    let tier = ThermalTier::parse(tier_str).ok_or_else(|| {
        format!(
            "unknown thermal tier `{tier_str}` (expected full-grid, \
             coarse-grid, or compact)"
        )
    })?;
    Ok((stage, tier))
}

/// `tvp place`: load, place, report, optionally write back.
///
/// # Errors
///
/// Returns a human-readable message for load, config, or write failures.
pub fn place(args: &PlaceArgs) -> Result<String, String> {
    let options = DesignBuilderOptions {
        meters_per_unit: args.meters_per_unit,
    };
    let design =
        Design::load(&args.aux, options).map_err(|e| format!("loading {}: {e}", args.aux))?;
    let mut config = PlacerConfig::new(args.layers)
        .with_alpha_ilv(args.alpha_ilv)
        .with_alpha_temp(args.alpha_temp)
        .with_seed(args.seed)
        .with_partition_starts(args.starts)
        .with_threads(args.threads)
        .with_thermal_precond(precond_from_args(&args.thermal_precond, args.mg_levels));
    if let Some(cap) = args.coarse_shift_iterations {
        config = config.with_coarse_shift_iterations(cap);
    }
    for spec in &args.thermal_tiers {
        let (stage, tier) = parse_tier_spec(spec)?;
        config = config.with_thermal_tier(stage, tier);
    }

    // Seed fixed cells (pads/macros) from the input `.pl` when present.
    let fixed: Vec<(CellId, f64, f64, u16)> = design
        .netlist
        .iter_cells()
        .filter(|(_, c)| !c.is_movable())
        .filter_map(|(id, _)| {
            design
                .positions
                .get(id.index())
                .map(|&(x, y, l)| (id, x, y, l as u16))
        })
        .collect();

    let mut out = String::new();
    // Preflight validation (opt out with --no-preflight): warnings are
    // reported and the run proceeds; errors abort before any placement
    // work starts.
    if !args.no_preflight {
        let report = tvp_core::validate(
            &design.netlist,
            &ValidateOptions {
                fixed_positions: &fixed,
                rows: (!design.rows.is_empty()).then_some(design.rows.as_slice()),
                num_layers: args.layers as u16,
                alpha_temp: args.alpha_temp,
            },
        );
        for diag in report.warnings() {
            let _ = writeln!(out, "preflight: {diag}");
        }
        if !report.is_placeable() {
            let mut msg = String::from("preflight validation failed:\n");
            for diag in report.errors() {
                let _ = writeln!(msg, "  {diag}");
            }
            let _ = write!(
                msg,
                "run `tvp validate {} --repair` to normalize what can be fixed, \
                 or pass --no-preflight to skip this check",
                args.aux
            );
            return Err(msg);
        }
    }

    let faults = if args.inject_faults.is_empty() {
        None
    } else {
        let mut plan = FaultPlan::new(args.seed);
        for spec in &args.inject_faults {
            let (kind, site) = parse_fault_spec(spec)?;
            plan = plan.inject(kind, site);
        }
        Some(plan)
    };

    let mut trace = match &args.trace_out {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            Some(JsonlObserver::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let run_options = PlaceOptions {
        observer: trace.as_mut().map(|t| t as &mut dyn PlacerObserver),
        cancel: None,
        time_budget: args.time_budget.map(std::time::Duration::from_secs_f64),
        checkpoint_dir: args.checkpoint_dir.as_ref().map(std::path::PathBuf::from),
        faults,
        thread_lease: None,
    };
    let result = Placer::new(config)
        .place_with_options(&design.netlist, &fixed, run_options)
        .map_err(|e| format!("placement failed: {e}"))?;
    if let Some(trace) = trace {
        let path = args.trace_out.as_deref().unwrap_or_default();
        trace.finish().map_err(|e| format!("writing {path}: {e}"))?;
    }

    let _ = writeln!(out, "design:  {} ({})", design.name, design.netlist.stats());
    if let Some(stage) = &result.resumed_from {
        let _ = writeln!(out, "resumed: from checkpoint after {stage}");
    }
    let _ = writeln!(
        out,
        "chip:    {:.1} x {:.1} um, {} layers, {} rows/layer",
        result.chip.width * 1e6,
        result.chip.depth * 1e6,
        result.chip.num_layers,
        result.chip.num_rows
    );
    let _ = writeln!(out, "quality: {}", result.metrics);
    let _ = writeln!(
        out,
        "runtime: {:.2?} (global {:.2?}, coarse {:.2?}, detail {:.2?})",
        result.timings.total, result.timings.global, result.timings.coarse, result.timings.detail
    );
    if result.timings.rounds.len() > 1 {
        for (i, round) in result.timings.rounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "         round {i}: coarse {:.2?}, detail {:.2?}",
                round.coarse, round.detail
            );
        }
    }
    if result.stopped_early {
        let _ = writeln!(
            out,
            "note:    stopped early (budget/cancellation); placement is legal"
        );
    }
    for degradation in &result.degradations {
        let _ = writeln!(out, "degraded: {degradation}");
    }
    if let Some(path) = &args.trace_out {
        let _ = writeln!(out, "wrote:   {path}");
    }

    if let Some(svg_path) = &args.svg {
        let image = tvp_report::svg::render_layers(
            &design.netlist,
            &result.chip,
            &result.placement,
            &tvp_report::svg::SvgOptions {
                color_by: tvp_report::svg::ColorBy::Connectivity,
                ..Default::default()
            },
        );
        std::fs::write(svg_path, image).map_err(|e| format!("writing {svg_path}: {e}"))?;
        let _ = writeln!(out, "wrote:   {svg_path}");
    }

    if let Some(dir) = &args.out {
        let positions: Vec<(f64, f64, u32)> = (0..design.netlist.num_cells())
            .map(|i| {
                let (x, y, l) = result.placement.position(CellId::new(i));
                (x, y, l as u32)
            })
            .collect();
        let placed = Design {
            name: design.name.clone(),
            netlist: design.netlist,
            positions,
            rows: design.rows,
        };
        placed
            .save(dir, options)
            .map_err(|e| format!("writing {dir}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote:   {dir}/{}.aux (+ nodes/nets/wts/pl)",
            placed.name
        );
    }
    Ok(out)
}

/// `tvp validate`: preflight diagnostics (and optional repair) for one
/// design, without placing it.
///
/// # Errors
///
/// Returns a message when the design cannot be loaded, when error-level
/// diagnostics remain (after repair, if `--repair` was given), or when
/// the repaired design cannot be written.
pub fn validate(args: &ValidateArgs) -> Result<String, String> {
    let options = DesignBuilderOptions {
        meters_per_unit: args.meters_per_unit,
    };
    // Permissive load: validate/repair must be able to open exactly the
    // designs the strict loader rejects (degenerate cell dimensions).
    let design = Design::load_permissive(&args.aux, options)
        .map_err(|e| format!("loading {}: {e}", args.aux))?;
    let fixed: Vec<(CellId, f64, f64, u16)> = design
        .netlist
        .iter_cells()
        .filter(|(_, c)| !c.is_movable())
        .filter_map(|(id, _)| {
            design
                .positions
                .get(id.index())
                .map(|&(x, y, l)| (id, x, y, l as u16))
        })
        .collect();
    let validate_options = ValidateOptions {
        fixed_positions: &fixed,
        rows: (!design.rows.is_empty()).then_some(design.rows.as_slice()),
        num_layers: args.layers as u16,
        alpha_temp: args.alpha_temp,
    };

    let mut out = String::new();
    let _ = writeln!(out, "design:  {} ({})", design.name, design.netlist.stats());
    let report = tvp_core::validate(&design.netlist, &validate_options);
    for diag in &report.diagnostics {
        let _ = writeln!(out, "{diag}");
    }
    let _ = writeln!(
        out,
        "summary: {} error(s), {} warning(s)",
        report.errors().count(),
        report.warnings().count()
    );

    if !args.repair {
        return if report.is_placeable() {
            Ok(out)
        } else {
            Err(out + "validation failed (re-run with --repair to normalize what can be fixed)")
        };
    }

    let (repaired, actions) =
        tvp_core::repair(&design.netlist).map_err(|e| format!("{out}repair failed: {e}"))?;
    if actions.is_empty() {
        let _ = writeln!(out, "repair:  nothing to change");
    }
    for action in &actions {
        let _ = writeln!(out, "repair:  {action}");
    }
    let after = tvp_core::validate(&repaired, &validate_options);
    let _ = writeln!(
        out,
        "after:   {} error(s), {} warning(s)",
        after.errors().count(),
        after.warnings().count()
    );

    if let Some(dir) = &args.out {
        let repaired_design = Design {
            name: design.name.clone(),
            netlist: repaired,
            positions: design.positions.clone(),
            rows: design.rows.clone(),
        };
        repaired_design
            .save(dir, options)
            .map_err(|e| format!("{out}writing {dir}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote:   {dir}/{}.aux (+ nodes/nets/wts/pl)",
            design.name
        );
    }

    if after.is_placeable() {
        Ok(out)
    } else {
        Err(out + "validation still failing after repair (errors above are not auto-fixable)")
    }
}

/// `tvp synth`: generate a synthetic benchmark and save it.
///
/// # Errors
///
/// Returns a message for generation or write failures.
pub fn synth(args: &SynthArgs) -> Result<String, String> {
    let config =
        SynthConfig::named(&args.name, args.cells, args.area_mm2 * 1.0e-6).with_seed(args.seed);
    let netlist =
        tvp_bookshelf::synth::generate(&config).map_err(|e| format!("generation failed: {e}"))?;
    let stats = netlist.stats();
    let design = Design::from_netlist(&args.name, netlist);
    design
        .save(
            &args.out,
            DesignBuilderOptions {
                meters_per_unit: args.meters_per_unit,
            },
        )
        .map_err(|e| format!("writing {}: {e}", args.out))?;
    Ok(format!("wrote {}/{}.aux: {stats}\n", args.out, args.name))
}

/// `tvp stats`: print netlist statistics for a benchmark.
///
/// # Errors
///
/// Returns a message when the design cannot be loaded.
pub fn stats(args: &StatsArgs) -> Result<String, String> {
    let design = Design::load(
        &args.aux,
        DesignBuilderOptions {
            meters_per_unit: args.meters_per_unit,
        },
    )
    .map_err(|e| format!("loading {}: {e}", args.aux))?;
    let stats = design.netlist.stats();
    let mut out = String::new();
    let _ = writeln!(out, "design: {}", design.name);
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(
        out,
        "positions: {}, rows: {}",
        if design.positions.is_empty() {
            "absent"
        } else {
            "present"
        },
        design.rows.len()
    );
    Ok(out)
}

/// `tvp sweep`: trace the wirelength/via tradeoff curve for one design,
/// or (with `--scenario stacks`) compare heterogeneous layer stacks.
///
/// # Errors
///
/// Returns a message for load, placement, or CSV-write failures.
pub fn sweep(args: &SweepArgs) -> Result<String, String> {
    let design = Design::load(
        &args.aux,
        DesignBuilderOptions {
            meters_per_unit: args.meters_per_unit,
        },
    )
    .map_err(|e| format!("loading {}: {e}", args.aux))?;
    if args.scenario == "stacks" {
        return sweep_stacks(args, &design);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "alpha_ILV sweep on {} ({} cells, {} layers, {} points)",
        design.name,
        design.netlist.num_cells(),
        args.layers,
        args.points
    );
    let _ = writeln!(out, "{:>12} {:>14} {:>10}", "alpha_ILV", "WL (m)", "ILVs");

    let mut table = tvp_report::csv::Table::new(["alpha_ilv", "wirelength_m", "ilv_count"]);
    let (lo, hi) = (5.0e-9f64, 5.2e-3f64);
    let ratio = (hi / lo).powf(1.0 / (args.points - 1) as f64);
    for i in 0..args.points {
        let alpha = lo * ratio.powi(i as i32);
        let config = PlacerConfig::new(args.layers)
            .with_alpha_ilv(alpha)
            .with_threads(args.threads)
            .with_thermal_precond(precond_from_args(&args.thermal_precond, args.mg_levels));
        let mut narrator = args.progress.then(|| {
            StderrProgress::stderr(format!("{}/{} alpha={alpha:.2e}", i + 1, args.points))
        });
        let options = PlaceOptions {
            observer: narrator.as_mut().map(|n| n as &mut dyn PlacerObserver),
            ..PlaceOptions::default()
        };
        let result = Placer::new(config)
            .place_with_options(&design.netlist, &[], options)
            .map_err(|e| format!("placement failed at alpha = {alpha:.2e}: {e}"))?;
        let _ = writeln!(
            out,
            "{alpha:>12.2e} {:>14.5e} {:>10.0}{}",
            result.metrics.wirelength,
            result.metrics.ilv_count,
            degradation_suffix(&result)
        );
        table.push(vec![
            alpha,
            result.metrics.wirelength,
            result.metrics.ilv_count,
        ]);
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, table.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "wrote:   {path}");
    }
    Ok(out)
}

/// Named per-layer stack profiles for `--scenario stacks`. All start
/// from the MIT-LL 0.18 µm defaults (5.7 µm layers at 10.2 W/(m·K));
/// the variants model common heterogeneous integrations.
fn stack_profiles(layers: usize) -> Vec<(&'static str, Vec<LayerSpec>)> {
    let n = layers;
    let base = LayerSpec {
        thickness: 5.7e-6,
        conductivity: 10.2,
    };
    // A memory die on top: 4x thicker than the thinned logic tiers.
    let mut thick_top = vec![base; n];
    if let Some(top) = thick_top.last_mut() {
        top.thickness = 4.0 * base.thickness;
    }
    // Polymer-bonded upper tiers conduct at half the oxide-bond value.
    let low_k_upper = (0..n)
        .map(|i| {
            if i >= n.div_ceil(2) {
                LayerSpec {
                    conductivity: base.conductivity / 2.0,
                    ..base
                }
            } else {
                base
            }
        })
        .collect();
    vec![
        ("uniform", vec![base; n]),
        ("thick-top", thick_top),
        ("low-k-upper", low_k_upper),
        (
            "high-k-bond",
            vec![
                LayerSpec {
                    conductivity: 2.0 * base.conductivity,
                    ..base
                };
                n
            ],
        ),
    ]
}

/// `tvp sweep --scenario stacks`: place the design once per named layer
/// profile and tabulate how the stack composition moves the thermal
/// numbers at unchanged wirelength cost.
fn sweep_stacks(args: &SweepArgs, design: &Design) -> Result<String, String> {
    let profiles = stack_profiles(args.layers);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "layer-stack sweep on {} ({} cells, {} layers, {} profiles)",
        design.name,
        design.netlist.num_cells(),
        args.layers,
        profiles.len()
    );
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>10} {:>10} {:>10}",
        "profile", "WL (m)", "ILVs", "T_avg(C)", "T_max(C)"
    );

    let mut table = tvp_report::csv::Table::new([
        "profile_index",
        "wirelength_m",
        "ilv_count",
        "avg_temp_c",
        "max_temp_c",
    ]);
    for (i, (name, specs)) in profiles.iter().enumerate() {
        let config = PlacerConfig::new(args.layers)
            .with_threads(args.threads)
            .with_thermal_precond(precond_from_args(&args.thermal_precond, args.mg_levels))
            .with_stack_layers(specs.clone());
        let mut narrator = args
            .progress
            .then(|| StderrProgress::stderr(format!("{}/{} {name}", i + 1, profiles.len())));
        let options = PlaceOptions {
            observer: narrator.as_mut().map(|n| n as &mut dyn PlacerObserver),
            ..PlaceOptions::default()
        };
        let result = Placer::new(config)
            .place_with_options(&design.netlist, &[], options)
            .map_err(|e| format!("placement failed for profile {name}: {e}"))?;
        let m = &result.metrics;
        let _ = writeln!(
            out,
            "{name:>12} {:>14.5e} {:>10.0} {:>10.2} {:>10.2}{}",
            m.wirelength,
            m.ilv_count,
            m.avg_temperature,
            m.max_temperature,
            degradation_suffix(&result)
        );
        table.push(vec![
            i as f64,
            m.wirelength,
            m.ilv_count,
            m.avg_temperature,
            m.max_temperature,
        ]);
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, table.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "wrote:   {path}");
    }
    Ok(out)
}

/// `tvp serve`: run the fault-tolerant placement daemon in the
/// foreground until a client posts `/shutdown`. The bound address is
/// printed to stderr and written to `<state-dir>/addr`; jobs, retries,
/// degradations, and recoveries are narrated on stderr as they happen.
/// (For SIGTERM handling under a process supervisor, use the
/// standalone `tvp-served` binary, which is the same daemon.)
///
/// # Errors
///
/// Returns a message when the state directory cannot be created or the
/// listen address cannot be bound.
pub fn serve(args: &ServeArgs) -> Result<String, String> {
    use std::time::Duration;
    let config = tvp_serve::ServerConfig {
        listen: args.listen.clone(),
        state_dir: std::path::PathBuf::from(&args.state_dir),
        workers: args.workers,
        max_queue: args.max_queue,
        thread_budget: args.thread_budget,
        default_max_attempts: args.max_attempts.max(1),
        retry_base: Duration::from_millis(args.retry_base_ms),
        drain_budget: Duration::from_secs(args.drain_secs),
        ..tvp_serve::ServerConfig::default()
    };
    let mut server = tvp_serve::Server::start(config)?;
    let addr = server.addr();
    eprintln!("[tvp-serve] listening on http://{addr}");
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("[tvp-serve] shutting down (draining)...");
    server.shutdown();
    Ok(format!("served on http://{addr}; shut down cleanly\n"))
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn fault_specs_parse_including_colon_kinds() {
        use super::parse_fault_spec;
        use tvp_core::FaultKind;
        assert_eq!(
            parse_fault_spec("nan-power:coarse[0]").unwrap(),
            (FaultKind::NanPower, "coarse[0]".to_string())
        );
        // Kind names containing `:` must not be split at the first colon.
        assert_eq!(
            parse_fault_spec("io-error:checkpoint-write").unwrap(),
            (FaultKind::CheckpointWriteIo, "global".to_string())
        );
        assert_eq!(
            parse_fault_spec("io-error:checkpoint-write:detail[0]").unwrap(),
            (FaultKind::CheckpointWriteIo, "detail[0]".to_string())
        );
        assert_eq!(
            parse_fault_spec("slow-stage:detail[0]").unwrap(),
            (FaultKind::SlowStage, "detail[0]".to_string())
        );
        assert_eq!(
            parse_fault_spec("slow-stage").unwrap(),
            (FaultKind::SlowStage, "coarse[0]".to_string())
        );
        assert!(parse_fault_spec("io-error")
            .unwrap_err()
            .contains("unknown fault kind"));
        assert!(parse_fault_spec("io-error:")
            .unwrap_err()
            .contains("unknown fault kind"));
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tvp_cli_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn synth_then_stats_then_place_round_trip() {
        let dir = tmp("rt");
        let out = run(&argv(&format!(
            "synth demo --cells 120 --out {dir} --seed 5"
        )))
        .expect("synth succeeds");
        assert!(out.contains("demo.aux"));

        let aux = format!("{dir}/demo.aux");
        let out = run(&argv(&format!("stats {aux}"))).expect("stats succeeds");
        assert!(out.contains("cells=120"));

        let placed_dir = tmp("rt_out");
        let out = run(&argv(&format!(
            "place {aux} --layers 2 --alpha-ilv 1e-5 --out {placed_dir}"
        )))
        .expect("place succeeds");
        assert!(out.contains("quality: WL ="));
        assert!(out.contains("2 layers"));
        assert!(std::path::Path::new(&format!("{placed_dir}/demo.pl")).exists());

        // The written placement loads back and reports positions present.
        let out = run(&argv(&format!("stats {placed_dir}/demo.aux"))).unwrap();
        assert!(out.contains("positions: present"));

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&placed_dir).ok();
    }

    #[test]
    fn place_writes_svg_when_asked() {
        let dir = tmp("svg");
        run(&argv(&format!("synth s --cells 80 --out {dir}"))).unwrap();
        let svg = format!("{dir}/view.svg");
        let out = run(&argv(&format!("place {dir}/s.aux --layers 2 --svg {svg}"))).unwrap();
        assert!(out.contains("view.svg"));
        let image = std::fs::read_to_string(&svg).unwrap();
        assert!(image.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_produces_csv() {
        let dir = tmp("sweep");
        run(&argv(&format!("synth s --cells 100 --out {dir}"))).unwrap();
        let csv = format!("{dir}/sweep.csv");
        let out = run(&argv(&format!(
            "sweep {dir}/s.aux --layers 2 --points 3 --csv {csv}"
        )))
        .unwrap();
        assert!(out.contains("alpha_ILV sweep"));
        let text = std::fs::read_to_string(&csv).unwrap();
        let table = tvp_report::csv::Table::from_csv(&text).unwrap();
        assert_eq!(table.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn place_writes_trace_and_checkpoints_then_resumes() {
        let dir = tmp("trace");
        run(&argv(&format!("synth s --cells 100 --out {dir}"))).unwrap();
        let trace = format!("{dir}/trace.jsonl");
        let ckpt = format!("{dir}/ckpt");
        let out = run(&argv(&format!(
            "place {dir}/s.aux --layers 2 --trace-out {trace} --checkpoint-dir {ckpt}"
        )))
        .unwrap();
        assert!(out.contains("trace.jsonl"));

        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().next().unwrap().contains("run_begin"));
        assert!(text.lines().last().unwrap().contains("run_end"));
        assert!(std::path::Path::new(&format!("{ckpt}/manifest.tvp")).exists());

        // A second run over the same checkpoint directory resumes.
        let out = run(&argv(&format!(
            "place {dir}/s.aux --layers 2 --checkpoint-dir {ckpt}"
        )))
        .unwrap();
        assert!(
            out.contains("resumed: from checkpoint after detail[0]"),
            "{out}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn place_honors_a_zero_time_budget() {
        let dir = tmp("budget");
        run(&argv(&format!("synth s --cells 100 --out {dir}"))).unwrap();
        let out = run(&argv(&format!(
            "place {dir}/s.aux --layers 2 --time-budget 0"
        )))
        .unwrap();
        assert!(out.contains("stopped early"), "{out}");
        assert!(
            out.contains("quality: WL ="),
            "still reports a legal result"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_passes_clean_designs_and_place_reports_injected_degradations() {
        let dir = tmp("validate");
        run(&argv(&format!("synth v --cells 80 --out {dir}"))).unwrap();

        let out = run(&argv(&format!("validate {dir}/v.aux --layers 2"))).unwrap();
        assert!(out.contains("summary: 0 error(s)"), "{out}");

        // --repair on a clean design is a no-op and still succeeds.
        let out = run(&argv(&format!("validate {dir}/v.aux --repair"))).unwrap();
        assert!(out.contains("repair:  nothing to change"), "{out}");

        // An injected CG breakdown degrades gracefully and is reported.
        let out = run(&argv(&format!(
            "place {dir}/v.aux --layers 2 --inject-fault cg-breakdown"
        )))
        .unwrap();
        assert!(out.contains("degraded: thermal-degraded"), "{out}");
        assert!(out.contains("quality: WL ="), "placement still completes");

        // Unknown fault kinds are rejected up front.
        let err = run(&argv(&format!(
            "place {dir}/v.aux --inject-fault frobnicate"
        )))
        .unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");

        // --no-preflight still places.
        let out = run(&argv(&format!(
            "place {dir}/v.aux --layers 2 --no-preflight"
        )))
        .unwrap();
        assert!(out.contains("quality: WL ="));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thermal_tier_flags_route_the_oracle_and_reject_bad_specs() {
        let dir = tmp("tier");
        run(&argv(&format!("synth t --cells 80 --out {dir}"))).unwrap();

        let out = run(&argv(&format!(
            "place {dir}/t.aux --layers 2 --alpha-temp 1e-4 \
             --thermal-tier global=coarse-grid --thermal-tier coarse=compact \
             --thermal-tier detail=compact"
        )))
        .unwrap();
        assert!(out.contains("quality: WL ="), "{out}");

        let err = run(&argv(&format!(
            "place {dir}/t.aux --thermal-tier warmup=compact"
        )))
        .unwrap_err();
        assert!(err.contains("unknown thermal-tier stage"), "{err}");

        let err = run(&argv(&format!(
            "place {dir}/t.aux --thermal-tier coarse=quantum"
        )))
        .unwrap_err();
        assert!(err.contains("unknown thermal tier"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stacks_sweep_tabulates_layer_profiles() {
        let dir = tmp("stacks");
        run(&argv(&format!("synth k --cells 60 --out {dir}"))).unwrap();
        let csv = format!("{dir}/stacks.csv");
        let out = run(&argv(&format!(
            "sweep {dir}/k.aux --layers 2 --scenario stacks --csv {csv}"
        )))
        .unwrap();
        assert!(out.contains("layer-stack sweep"), "{out}");
        for profile in ["uniform", "thick-top", "low-k-upper", "high-k-bond"] {
            assert!(out.contains(profile), "{out}");
        }
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with("profile_index,wirelength_m,ilv_count"));
        assert_eq!(body.lines().count(), 5, "header + one row per profile");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_warns_when_thermal_objective_is_inert() {
        use tvp_netlist::{NetlistBuilder, PinDirection};
        // All-input nets have no driver to deposit power at: the Eq. 10
        // power map is identically zero whatever the activities are.
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..8)
            .map(|i| b.add_cell(format!("c{i}"), 1e-6, 1e-6))
            .collect();
        for (i, pair) in cells.windows(2).enumerate() {
            let n = b.add_net(format!("n{i}"));
            b.connect(n, pair[0], PinDirection::Input).unwrap();
            b.connect(n, pair[1], PinDirection::Input).unwrap();
        }
        let dir = tmp("inert");
        tvp_bookshelf::Design::from_netlist("z", b.build().unwrap())
            .save(
                &dir,
                tvp_bookshelf::DesignBuilderOptions {
                    meters_per_unit: 1.0e-6,
                },
            )
            .unwrap();

        let out = run(&argv(&format!("validate {dir}/z.aux --alpha-temp 1e-4"))).unwrap();
        assert!(out.contains("[thermal-objective-inert]"), "{out}");
        // Without the knob the same design validates silently.
        let out = run(&argv(&format!("validate {dir}/z.aux"))).unwrap();
        assert!(!out.contains("thermal-objective-inert"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn errors_are_strings_not_panics() {
        assert!(run(&argv("place /no/such.aux")).is_err());
        assert!(run(&argv("bogus")).is_err());
    }
}
