//! The `tvp` binary: thin wrapper over [`tvp_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tvp_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
