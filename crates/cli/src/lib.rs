//! Implementation of the `tvp` command-line placer.
//!
//! Three subcommands:
//!
//! * `tvp place <design.aux>` — load a Bookshelf benchmark, run the full
//!   thermal/via-aware placement pipeline, print metrics, and optionally
//!   write the placed design back out. Validation runs automatically
//!   before placing (`--no-preflight` skips it) and faults can be
//!   injected deterministically (`--inject-fault`).
//! * `tvp validate <design.aux>` — preflight diagnostics without
//!   placing; `--repair` applies safe normalizations.
//! * `tvp synth <name>` — generate a synthetic IBM-PLACE-like benchmark
//!   and save it as Bookshelf files.
//! * `tvp stats <design.aux>` — print netlist statistics.
//! * `tvp sweep <design.aux>` — trace the wirelength/via tradeoff curve,
//!   optionally exporting CSV.
//! * `tvp serve` — run the fault-tolerant placement daemon (HTTP job
//!   API with admission control, deadlines, retry, and crash recovery;
//!   see the `tvp-serve` crate).
//!
//! The library portion exists so argument parsing and command dispatch
//! are unit-testable; [`main`](../src/main.rs) is a thin wrapper.

pub mod args;
pub mod commands;
pub mod progress;

pub use args::{
    Command, ParseArgsError, PlaceArgs, ServeArgs, StatsArgs, SweepArgs, SynthArgs, ValidateArgs,
};
pub use progress::StderrProgress;

/// Entry point shared by the binary and the tests.
///
/// # Errors
///
/// Returns a human-readable error string for bad arguments or failed
/// commands (the binary prints it to stderr and exits nonzero).
pub fn run(argv: &[String]) -> Result<String, String> {
    let command = args::parse(argv).map_err(|e| e.to_string())?;
    match command {
        Command::Place(a) => commands::place(&a),
        Command::Validate(a) => commands::validate(&a),
        Command::Synth(a) => commands::synth(&a),
        Command::Stats(a) => commands::stats(&a),
        Command::Sweep(a) => commands::sweep(&a),
        Command::Serve(a) => commands::serve(&a),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
