//! Property-based round-trip tests for the Bookshelf parsers and writers.

use proptest::prelude::*;
use tvp_bookshelf::{
    parse_nets, parse_nodes, parse_pl, parse_wts, write_nets, write_nodes, write_pl, write_wts,
    NetPinRecord, NetRecord, NetsFile, NodeRecord, NodesFile, PinDirectionHint, PlFile, PlRecord,
    WtsFile, WtsRecord,
};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn nodes_strategy() -> impl Strategy<Value = NodesFile> {
    prop::collection::vec(
        (name_strategy(), 1.0f64..100.0, 1.0f64..100.0, any::<bool>()),
        0..20,
    )
    .prop_map(|records| NodesFile {
        nodes: records
            .into_iter()
            .enumerate()
            .map(|(i, (name, width, height, terminal))| NodeRecord {
                // Suffix with the index so names stay unique.
                name: format!("{name}{i}"),
                width: (width * 4.0).round() / 4.0,
                height: (height * 4.0).round() / 4.0,
                terminal,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nodes_round_trip(file in nodes_strategy()) {
        let text = write_nodes(&file);
        let parsed = parse_nodes(&text).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn wts_round_trip(records in prop::collection::vec((name_strategy(), 0.0f64..100.0), 0..20)) {
        let file = WtsFile {
            records: records
                .into_iter()
                .map(|(name, weight)| WtsRecord {
                    name,
                    weight: (weight * 8.0).round() / 8.0,
                })
                .collect(),
        };
        let parsed = parse_wts(&write_wts(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn pl_round_trip(
        records in prop::collection::vec(
            (name_strategy(), -100.0f64..100.0, -100.0f64..100.0, prop::option::of(0u32..8), any::<bool>()),
            0..20,
        )
    ) {
        let file = PlFile {
            records: records
                .into_iter()
                .enumerate()
                .map(|(i, (name, x, y, layer, fixed))| PlRecord {
                    name: format!("{name}{i}"),
                    x: (x * 4.0).round() / 4.0,
                    y: (y * 4.0).round() / 4.0,
                    layer,
                    orient: "N".to_string(),
                    fixed,
                })
                .collect(),
        };
        let parsed = parse_pl(&write_pl(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn nets_round_trip(
        topology in prop::collection::vec(
            prop::collection::vec((0usize..12, any::<bool>()), 1..6),
            0..12,
        )
    ) {
        let file = NetsFile {
            nets: topology
                .into_iter()
                .enumerate()
                .map(|(i, pins)| NetRecord {
                    name: format!("n{i}"),
                    pins: pins
                        .into_iter()
                        .map(|(node, input)| NetPinRecord {
                            node: format!("c{node}"),
                            direction: Some(if input {
                                PinDirectionHint::Input
                            } else {
                                PinDirectionHint::Output
                            }),
                            offset_x: 0.0,
                            offset_y: 0.0,
                        })
                        .collect(),
                })
                .collect(),
        };
        let parsed = parse_nets(&write_nets(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn parser_never_panics_on_noise(text in "[ -~\n]{0,400}") {
        // Malformed input must produce Err, never a panic.
        let _ = parse_nodes(&text);
        let _ = parse_nets(&text);
        let _ = parse_pl(&text);
        let _ = parse_wts(&text);
    }
}
