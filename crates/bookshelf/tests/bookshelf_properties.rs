//! Property-based round-trip tests for the Bookshelf parsers and writers.

use proptest::prelude::*;
use tvp_bookshelf::synth::{generate, SynthConfig};
use tvp_bookshelf::{
    parse_nets, parse_nodes, parse_pl, parse_wts, write_nets, write_nodes, write_pl, write_wts,
    Design, DesignBuilderOptions, NetPinRecord, NetRecord, NetsFile, NodeRecord, NodesFile,
    PinDirectionHint, PlFile, PlRecord, WtsFile, WtsRecord,
};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn nodes_strategy() -> impl Strategy<Value = NodesFile> {
    prop::collection::vec(
        (name_strategy(), 1.0f64..100.0, 1.0f64..100.0, any::<bool>()),
        0..20,
    )
    .prop_map(|records| NodesFile {
        nodes: records
            .into_iter()
            .enumerate()
            .map(|(i, (name, width, height, terminal))| NodeRecord {
                // Suffix with the index so names stay unique.
                name: format!("{name}{i}"),
                width: (width * 4.0).round() / 4.0,
                height: (height * 4.0).round() / 4.0,
                terminal,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nodes_round_trip(file in nodes_strategy()) {
        let text = write_nodes(&file);
        let parsed = parse_nodes(&text).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn wts_round_trip(records in prop::collection::vec((name_strategy(), 0.0f64..100.0), 0..20)) {
        let file = WtsFile {
            records: records
                .into_iter()
                .map(|(name, weight)| WtsRecord {
                    name,
                    weight: (weight * 8.0).round() / 8.0,
                })
                .collect(),
        };
        let parsed = parse_wts(&write_wts(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn pl_round_trip(
        records in prop::collection::vec(
            (name_strategy(), -100.0f64..100.0, -100.0f64..100.0, prop::option::of(0u32..8), any::<bool>()),
            0..20,
        )
    ) {
        let file = PlFile {
            records: records
                .into_iter()
                .enumerate()
                .map(|(i, (name, x, y, layer, fixed))| PlRecord {
                    name: format!("{name}{i}"),
                    x: (x * 4.0).round() / 4.0,
                    y: (y * 4.0).round() / 4.0,
                    layer,
                    orient: "N".to_string(),
                    fixed,
                })
                .collect(),
        };
        let parsed = parse_pl(&write_pl(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn nets_round_trip(
        topology in prop::collection::vec(
            prop::collection::vec((0usize..12, any::<bool>()), 1..6),
            0..12,
        )
    ) {
        let file = NetsFile {
            nets: topology
                .into_iter()
                .enumerate()
                .map(|(i, pins)| NetRecord {
                    name: format!("n{i}"),
                    pins: pins
                        .into_iter()
                        .map(|(node, input)| NetPinRecord {
                            node: format!("c{node}"),
                            direction: Some(if input {
                                PinDirectionHint::Input
                            } else {
                                PinDirectionHint::Output
                            }),
                            offset_x: 0.0,
                            offset_y: 0.0,
                        })
                        .collect(),
                })
                .collect(),
        };
        let parsed = parse_nets(&write_nets(&file)).unwrap();
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn parser_never_panics_on_noise(text in "[ -~\n]{0,400}") {
        // Malformed input must produce Err, never a panic.
        let _ = parse_nodes(&text);
        let _ = parse_nets(&text);
        let _ = parse_pl(&text);
        let _ = parse_wts(&text);
    }
}

proptest! {
    // 10k cells per case keeps this a real million-scale smoke while the
    // whole property still runs in seconds.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full ingest round trip at scale: a synthesized 10k-cell design,
    /// rendered to Bookshelf text and re-ingested through the zero-copy
    /// streaming assembler, reproduces the original netlist bit for bit
    /// in everything the format represents — cell names, dimensions, and
    /// kinds; pin directions, ordering, and offsets; net topology,
    /// drivers, and weights. (Switching activity has no Bookshelf
    /// channel, so ingest assigns the documented default; it is the one
    /// field excluded from the comparison. Unit scale 1.0 keeps the
    /// geometry text exact: Rust's shortest-round-trip float formatting
    /// is lossless only when no site-unit conversion multiplies it.)
    #[test]
    fn synth_streaming_ingest_round_trips_at_10k(seed in 0u64..1 << 48) {
        let config = SynthConfig::named("rt", 10_000, 5.0e-8).with_seed(seed);
        let netlist = generate(&config).expect("synthetic design generates");
        let design = Design::from_netlist("rt", netlist);
        let opts = DesignBuilderOptions {
            meters_per_unit: 1.0,
        };
        let (nodes, nets, wts, _) = design.to_files(opts);
        let nodes_text = write_nodes(&nodes);
        let nets_text = write_nets(&nets);
        let wts_text = write_wts(&wts);
        let rebuilt = Design::assemble_streaming(
            "rt",
            &nodes_text,
            &nets_text,
            Some(&wts_text),
            None,
            None,
            opts,
        )
        .expect("streaming ingest succeeds");
        let a = &design.netlist;
        let b = &rebuilt.netlist;
        prop_assert_eq!(a.num_cells(), b.num_cells());
        prop_assert_eq!(a.num_nets(), b.num_nets());
        prop_assert_eq!(a.num_pins(), b.num_pins());
        prop_assert!(a.cells() == b.cells(), "cell records diverged");
        prop_assert!(a.pins() == b.pins(), "pin records diverged");
        for (id, na) in a.iter_nets() {
            let nb = b.net(id);
            prop_assert_eq!(na.name(), nb.name());
            prop_assert_eq!(na.driver(), nb.driver());
            prop_assert_eq!(na.degree(), nb.degree());
            prop_assert_eq!(na.num_input_pins(), nb.num_input_pins());
            prop_assert!(
                na.weight() == nb.weight(),
                "net weight diverged on {}", na.name()
            );
            prop_assert!(a.net_pins(id) == b.net_pins(id), "net pin order diverged");
        }
    }
}
