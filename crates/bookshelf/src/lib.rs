//! Bookshelf / IBM-PLACE benchmark I/O and synthetic benchmark generation.
//!
//! The DAC'07 experiments run on the IBM-PLACE suite, which is distributed in
//! the UCLA *Bookshelf* placement format (`.aux`, `.nodes`, `.nets`, `.wts`,
//! `.pl`, `.scl`). This crate implements:
//!
//! * **Parsers and writers** for every Bookshelf file kind, so real
//!   IBM-PLACE files can be dropped into the flow unchanged
//!   ([`parse_nodes`], [`parse_nets`], [`parse_pl`], [`parse_scl`],
//!   [`parse_wts`], [`parse_aux`], and the corresponding `write_*`
//!   functions), plus **zero-copy streaming readers** ([`stream`]) that
//!   parse million-cell files without per-record allocations.
//! * A [`Design`] assembler that converts parsed files into the
//!   [`tvp_netlist::Netlist`] hypergraph used by the placer, converting
//!   Bookshelf site units to meters.
//! * A **synthetic benchmark generator** ([`synth`]) that reproduces the
//!   published statistics of each IBM-PLACE circuit (cell count and total
//!   area from Table 1 of the paper) with Rent's-rule-like hierarchical
//!   connectivity. This is the documented substitution for the original
//!   benchmark files, which are not redistributable (see DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use tvp_bookshelf::synth::{SynthConfig, generate};
//!
//! let config = SynthConfig::named("demo", 500, 2.5e-9).with_seed(7);
//! let netlist = generate(&config).expect("generation succeeds");
//! assert_eq!(netlist.num_cells(), 500);
//! ```

mod aux;
mod design;
mod error;
mod lexer;
mod nets;
mod nodes;
mod pl;
mod scl;
pub mod stream;
pub mod synth;
mod wts;

pub use aux::{parse_aux, write_aux, AuxFile};
pub use design::{AssembleDesignError, Design, DesignBuilderOptions, LoadDesignError};
pub use error::ParseBookshelfError;
pub use nets::{parse_nets, write_nets, NetPinRecord, NetRecord, NetsFile, PinDirectionHint};
pub use nodes::{parse_nodes, write_nodes, NodeRecord, NodesFile};
pub use pl::{parse_pl, write_pl, PlFile, PlRecord};
pub use scl::{parse_scl, write_scl, RowRecord, SclFile};
pub use wts::{parse_wts, write_wts, WtsFile, WtsRecord};
