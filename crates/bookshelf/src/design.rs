//! Assembling parsed Bookshelf files into a placer-ready design.

use crate::nets::{NetsFile, PinDirectionHint};
use crate::nodes::NodesFile;
use crate::pl::PlFile;
use crate::scl::SclFile;
use crate::wts::WtsFile;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tvp_netlist::{BuildNetlistError, CellId, CellKind, Netlist, NetlistBuilder, PinDirection};

/// Options controlling how Bookshelf files are assembled into a [`Design`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DesignBuilderOptions {
    /// Meters per Bookshelf site unit. IBM-PLACE uses abstract units; the
    /// DAC'07 setup derives geometry from the MIT-LL 0.18um process, where
    /// one site is on the order of a micron.
    pub meters_per_unit: f64,
}

impl Default for DesignBuilderOptions {
    fn default() -> Self {
        Self {
            meters_per_unit: 1.0e-6,
        }
    }
}

/// Error produced while assembling parsed files into a [`Design`].
#[derive(Clone, PartialEq, Debug)]
pub enum AssembleDesignError {
    /// A `.nets`/`.pl`/`.wts` record referenced a node missing from `.nodes`.
    UnknownNode(String),
    /// The underlying netlist builder rejected the connectivity.
    Netlist(BuildNetlistError),
}

impl fmt::Display for AssembleDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleDesignError::UnknownNode(name) => {
                write!(f, "reference to unknown node `{name}`")
            }
            AssembleDesignError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
        }
    }
}

impl Error for AssembleDesignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AssembleDesignError::Netlist(e) => Some(e),
            AssembleDesignError::UnknownNode(_) => None,
        }
    }
}

impl From<BuildNetlistError> for AssembleDesignError {
    fn from(e: BuildNetlistError) -> Self {
        AssembleDesignError::Netlist(e)
    }
}

/// A fully assembled benchmark: the netlist plus optional initial positions
/// and row geometry, all converted to meters.
#[derive(Clone, PartialEq, Debug)]
pub struct Design {
    /// Benchmark name (from the `.aux` stem or generator config).
    pub name: String,
    /// The hypergraph netlist.
    pub netlist: Netlist,
    /// Initial `(x, y, layer)` per cell from `.pl`, meters; empty if absent.
    pub positions: Vec<(f64, f64, u32)>,
    /// Core row rectangles `(y_bottom, height, x_left, x_right)` from
    /// `.scl`, meters; empty if absent.
    pub rows: Vec<(f64, f64, f64, f64)>,
}

impl Design {
    /// Assembles a design from parsed Bookshelf files.
    ///
    /// Direction hints map as follows: the first `O` pin of a net becomes
    /// the driver; additional `O` pins and `B` pins are demoted to inputs
    /// (real suites occasionally contain multi-driver records).
    ///
    /// # Errors
    ///
    /// Returns [`AssembleDesignError::UnknownNode`] if `.nets`, `.pl`, or
    /// `.wts` reference a node that `.nodes` does not declare, or
    /// [`AssembleDesignError::Netlist`] if the netlist itself is invalid
    /// (e.g. non-positive cell dimensions).
    pub fn assemble(
        name: impl Into<String>,
        nodes: &NodesFile,
        nets: &NetsFile,
        wts: Option<&WtsFile>,
        pl: Option<&PlFile>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
    ) -> Result<Self, AssembleDesignError> {
        Self::assemble_with(name, nodes, nets, wts, pl, scl, options, false)
    }

    /// [`assemble`](Self::assemble) with the netlist builder in permissive
    /// mode: degenerate cell dimensions are admitted instead of rejected,
    /// so validation and repair tooling can load broken designs and report
    /// on them. Connectivity errors are still hard failures.
    ///
    /// # Errors
    ///
    /// Same as [`assemble`](Self::assemble), minus dimension rejections.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_permissive(
        name: impl Into<String>,
        nodes: &NodesFile,
        nets: &NetsFile,
        wts: Option<&WtsFile>,
        pl: Option<&PlFile>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
    ) -> Result<Self, AssembleDesignError> {
        Self::assemble_with(name, nodes, nets, wts, pl, scl, options, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_with(
        name: impl Into<String>,
        nodes: &NodesFile,
        nets: &NetsFile,
        wts: Option<&WtsFile>,
        pl: Option<&PlFile>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
        permissive: bool,
    ) -> Result<Self, AssembleDesignError> {
        let scale = options.meters_per_unit;
        let mut builder =
            NetlistBuilder::with_capacity(nodes.nodes.len(), nets.nets.len(), nets.num_pins());
        if permissive {
            builder = builder.permissive();
        }
        let mut by_name: HashMap<&str, CellId> = HashMap::with_capacity(nodes.nodes.len());
        for record in &nodes.nodes {
            let kind = if record.terminal {
                CellKind::Fixed
            } else {
                CellKind::Movable
            };
            let id = builder.add_cell_with_kind(
                record.name.clone(),
                record.width * scale,
                record.height * scale,
                kind,
            );
            by_name.insert(record.name.as_str(), id);
        }

        let mut net_ids = HashMap::with_capacity(nets.nets.len());
        for record in &nets.nets {
            let net_id = builder.add_net(record.name.clone());
            net_ids.insert(record.name.as_str(), net_id);
            let mut has_driver = false;
            for pin in &record.pins {
                let &cell = by_name
                    .get(pin.node.as_str())
                    .ok_or_else(|| AssembleDesignError::UnknownNode(pin.node.clone()))?;
                let direction = match pin.direction {
                    Some(PinDirectionHint::Output) if !has_driver => {
                        has_driver = true;
                        PinDirection::Output
                    }
                    _ => PinDirection::Input,
                };
                builder.connect_with_offset(
                    net_id,
                    cell,
                    direction,
                    pin.offset_x * scale,
                    pin.offset_y * scale,
                )?;
            }
        }

        if let Some(wts) = wts {
            for record in &wts.records {
                if let Some(&net_id) = net_ids.get(record.name.as_str()) {
                    builder.set_net_weight(net_id, record.weight)?;
                }
                // Weights for nodes (some suites weight nodes) are ignored.
            }
        }

        let netlist = builder.build()?;

        let mut positions = Vec::new();
        if let Some(pl) = pl {
            positions = vec![(0.0, 0.0, 0u32); netlist.num_cells()];
            for record in &pl.records {
                let &cell = by_name
                    .get(record.name.as_str())
                    .ok_or_else(|| AssembleDesignError::UnknownNode(record.name.clone()))?;
                positions[cell.index()] = (
                    record.x * scale,
                    record.y * scale,
                    record.layer.unwrap_or(0),
                );
            }
        }

        let rows = scl
            .map(|scl| {
                scl.rows
                    .iter()
                    .map(|r| {
                        (
                            r.coordinate * scale,
                            r.height * scale,
                            r.subrow_origin * scale,
                            r.right_edge() * scale,
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();

        Ok(Design {
            name: name.into(),
            netlist,
            positions,
            rows,
        })
    }

    /// Assembles a design directly from Bookshelf file *text* in one
    /// streaming pass per file, with no intermediate record structures.
    ///
    /// Node and net names are read as `&str` slices of the input and only
    /// copied into the netlist arena, builders are pre-sized from the
    /// declared header counts, and the name→cell map borrows from
    /// `nodes_text` — at a million cells this path is several times faster
    /// than `parse_*` followed by [`assemble`](Self::assemble) and peaks
    /// at a fraction of the memory. [`load`](Self::load) uses it.
    ///
    /// Direction hints and `.wts`/`.pl` handling match
    /// [`assemble`](Self::assemble) exactly; the two paths produce
    /// identical designs.
    ///
    /// # Errors
    ///
    /// Returns [`LoadDesignError::Parse`] for malformed file text and
    /// [`LoadDesignError::Assemble`] for references to undeclared nodes or
    /// invalid netlist structure.
    pub fn assemble_streaming(
        name: impl Into<String>,
        nodes_text: &str,
        nets_text: &str,
        wts_text: Option<&str>,
        pl_text: Option<&str>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
    ) -> Result<Self, LoadDesignError> {
        Self::assemble_streaming_with(
            name, nodes_text, nets_text, wts_text, pl_text, scl, options, false,
        )
    }

    /// [`assemble_streaming`](Self::assemble_streaming) with the netlist
    /// builder in permissive mode (see
    /// [`assemble_permissive`](Self::assemble_permissive)).
    ///
    /// # Errors
    ///
    /// Same as [`assemble_streaming`](Self::assemble_streaming), minus
    /// dimension rejections.
    pub fn assemble_streaming_permissive(
        name: impl Into<String>,
        nodes_text: &str,
        nets_text: &str,
        wts_text: Option<&str>,
        pl_text: Option<&str>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
    ) -> Result<Self, LoadDesignError> {
        Self::assemble_streaming_with(
            name, nodes_text, nets_text, wts_text, pl_text, scl, options, true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_streaming_with(
        name: impl Into<String>,
        nodes_text: &str,
        nets_text: &str,
        wts_text: Option<&str>,
        pl_text: Option<&str>,
        scl: Option<&SclFile>,
        options: DesignBuilderOptions,
        permissive: bool,
    ) -> Result<Self, LoadDesignError> {
        use tvp_netlist::FxHashMap;
        let build_err = |e: BuildNetlistError| LoadDesignError::from(AssembleDesignError::from(e));
        let scale = options.meters_per_unit;
        let mut nodes = crate::stream::NodesReader::new(nodes_text)?;
        let mut nets = crate::stream::NetsReader::new(nets_text)?;
        let nodes_header = nodes.header();
        let nets_header = nets.header();
        let mut builder = NetlistBuilder::with_capacity(
            nodes_header.num_nodes,
            nets_header.num_nets,
            nets_header.num_pins,
        );
        if permissive {
            builder = builder.permissive();
        }
        let mut by_name: FxHashMap<&str, CellId> =
            FxHashMap::with_capacity_and_hasher(nodes_header.num_nodes, Default::default());
        while let Some(record) = nodes.next_node()? {
            let kind = if record.terminal {
                CellKind::Fixed
            } else {
                CellKind::Movable
            };
            let id = builder.add_cell_with_kind(
                record.name,
                record.width * scale,
                record.height * scale,
                kind,
            );
            by_name.insert(record.name, id);
        }

        // Names borrowed from `nets_text` cover named records; generated
        // default names (`net{i}`) for unnamed records go in a side map so
        // `.wts` lookups behave identically to the record-based path.
        let mut net_ids: FxHashMap<&str, tvp_netlist::NetId> =
            FxHashMap::with_capacity_and_hasher(nets_header.num_nets, Default::default());
        let mut generated_ids: FxHashMap<String, tvp_netlist::NetId> = FxHashMap::default();
        while let Some(net) = nets.next_net()? {
            let net_id = match net.name {
                Some(n) => {
                    let id = builder.add_net(n);
                    net_ids.insert(n, id);
                    id
                }
                None => {
                    let n = format!("net{}", net.index);
                    let id = builder.add_net(n.clone());
                    generated_ids.insert(n, id);
                    id
                }
            };
            let mut has_driver = false;
            for _ in 0..net.degree {
                let pin = nets.next_pin()?;
                let &cell = by_name.get(pin.node).ok_or_else(|| {
                    LoadDesignError::from(AssembleDesignError::UnknownNode(pin.node.to_string()))
                })?;
                let direction = match pin.direction {
                    Some(PinDirectionHint::Output) if !has_driver => {
                        has_driver = true;
                        PinDirection::Output
                    }
                    _ => PinDirection::Input,
                };
                builder
                    .connect_with_offset(
                        net_id,
                        cell,
                        direction,
                        pin.offset_x * scale,
                        pin.offset_y * scale,
                    )
                    .map_err(build_err)?;
            }
        }

        if let Some(text) = wts_text {
            let mut wts = crate::stream::WtsReader::new(text);
            while let Some(record) = wts.next_record()? {
                let id = net_ids
                    .get(record.name)
                    .or_else(|| generated_ids.get(record.name));
                if let Some(&net_id) = id {
                    builder
                        .set_net_weight(net_id, record.weight)
                        .map_err(build_err)?;
                }
                // Weights for nodes (some suites weight nodes) are ignored.
            }
        }

        let netlist = builder.build().map_err(build_err)?;

        let mut positions = Vec::new();
        if let Some(text) = pl_text {
            let mut pl = crate::stream::PlReader::new(text);
            positions = vec![(0.0, 0.0, 0u32); netlist.num_cells()];
            while let Some(record) = pl.next_record()? {
                let &cell = by_name.get(record.name).ok_or_else(|| {
                    LoadDesignError::from(AssembleDesignError::UnknownNode(record.name.to_string()))
                })?;
                positions[cell.index()] = (
                    record.x * scale,
                    record.y * scale,
                    record.layer.unwrap_or(0),
                );
            }
        }

        let rows = scl
            .map(|scl| {
                scl.rows
                    .iter()
                    .map(|r| {
                        (
                            r.coordinate * scale,
                            r.height * scale,
                            r.subrow_origin * scale,
                            r.right_edge() * scale,
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();

        Ok(Design {
            name: name.into(),
            netlist,
            positions,
            rows,
        })
    }
}

/// Error loading a benchmark from disk: I/O, parse, or assembly.
#[derive(Debug)]
pub enum LoadDesignError {
    /// Reading a file failed.
    Io(std::io::Error),
    /// A Bookshelf file failed to parse.
    Parse(crate::ParseBookshelfError),
    /// The parsed files do not assemble into a consistent design.
    Assemble(AssembleDesignError),
    /// The `.aux` did not reference a required file kind.
    MissingFile(&'static str),
}

impl fmt::Display for LoadDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadDesignError::Io(e) => write!(f, "i/o error: {e}"),
            LoadDesignError::Parse(e) => write!(f, "parse error: {e}"),
            LoadDesignError::Assemble(e) => write!(f, "assembly error: {e}"),
            LoadDesignError::MissingFile(kind) => {
                write!(f, "aux file lists no `.{kind}` file")
            }
        }
    }
}

impl Error for LoadDesignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadDesignError::Io(e) => Some(e),
            LoadDesignError::Parse(e) => Some(e),
            LoadDesignError::Assemble(e) => Some(e),
            LoadDesignError::MissingFile(_) => None,
        }
    }
}

impl From<std::io::Error> for LoadDesignError {
    fn from(e: std::io::Error) -> Self {
        LoadDesignError::Io(e)
    }
}

impl From<crate::ParseBookshelfError> for LoadDesignError {
    fn from(e: crate::ParseBookshelfError) -> Self {
        LoadDesignError::Parse(e)
    }
}

impl From<AssembleDesignError> for LoadDesignError {
    fn from(e: AssembleDesignError) -> Self {
        LoadDesignError::Assemble(e)
    }
}

impl Design {
    /// Loads a benchmark from a `.aux` manifest on disk, parsing every
    /// referenced file (`.wts`, `.pl`, and `.scl` are optional).
    ///
    /// # Errors
    ///
    /// Returns [`LoadDesignError`] for I/O failures, parse errors, missing
    /// `.nodes`/`.nets` references, or inconsistent contents.
    pub fn load(
        aux_path: impl AsRef<std::path::Path>,
        options: DesignBuilderOptions,
    ) -> Result<Self, LoadDesignError> {
        Self::load_with(aux_path.as_ref(), options, false)
    }

    /// [`load`](Self::load) with the netlist builder in permissive mode
    /// (see [`assemble_permissive`](Self::assemble_permissive)): designs
    /// with degenerate cell dimensions load so `tvp validate` can diagnose
    /// and repair them.
    ///
    /// # Errors
    ///
    /// Same as [`load`](Self::load), minus dimension rejections.
    pub fn load_permissive(
        aux_path: impl AsRef<std::path::Path>,
        options: DesignBuilderOptions,
    ) -> Result<Self, LoadDesignError> {
        Self::load_with(aux_path.as_ref(), options, true)
    }

    fn load_with(
        aux_path: &std::path::Path,
        options: DesignBuilderOptions,
        permissive: bool,
    ) -> Result<Self, LoadDesignError> {
        let aux = crate::parse_aux(&std::fs::read_to_string(aux_path)?)?;
        let dir = aux_path
            .parent()
            .unwrap_or_else(|| std::path::Path::new("."));
        let read = |name: &str| std::fs::read_to_string(dir.join(name));

        let nodes_name = aux
            .file_with_extension("nodes")
            .ok_or(LoadDesignError::MissingFile("nodes"))?;
        let nets_name = aux
            .file_with_extension("nets")
            .ok_or(LoadDesignError::MissingFile("nets"))?;
        let nodes_text = read(nodes_name)?;
        let nets_text = read(nets_name)?;
        let wts_text = aux.file_with_extension("wts").map(read).transpose()?;
        let pl_text = aux.file_with_extension("pl").map(read).transpose()?;
        let scl = aux
            .file_with_extension("scl")
            .map(|n| {
                read(n)
                    .map_err(LoadDesignError::from)
                    .and_then(|t| crate::parse_scl(&t).map_err(LoadDesignError::from))
            })
            .transpose()?;

        let name = aux_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "design".to_string());
        Design::assemble_streaming_with(
            name,
            &nodes_text,
            &nets_text,
            wts_text.as_deref(),
            pl_text.as_deref(),
            scl.as_ref(),
            options,
            permissive,
        )
    }

    /// Writes the design to `dir` as `<name>.aux`, `.nodes`, `.nets`,
    /// `.wts`, and (when positions are present) `.pl`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing files.
    pub fn save(
        &self,
        dir: impl AsRef<std::path::Path>,
        options: DesignBuilderOptions,
    ) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let (nodes, nets, wts, pl) = self.to_files(options);
        let base = &self.name;
        std::fs::write(
            dir.join(format!("{base}.nodes")),
            crate::write_nodes(&nodes),
        )?;
        std::fs::write(dir.join(format!("{base}.nets")), crate::write_nets(&nets))?;
        std::fs::write(dir.join(format!("{base}.wts")), crate::write_wts(&wts))?;
        let mut files = vec![
            format!("{base}.nodes"),
            format!("{base}.nets"),
            format!("{base}.wts"),
        ];
        if let Some(pl) = pl {
            std::fs::write(dir.join(format!("{base}.pl")), crate::write_pl(&pl))?;
            files.push(format!("{base}.pl"));
        }
        let aux = crate::AuxFile {
            style: "RowBasedPlacement".to_string(),
            files,
        };
        std::fs::write(dir.join(format!("{base}.aux")), crate::write_aux(&aux))?;
        Ok(())
    }

    /// Wraps an existing netlist as a design with no positions or rows.
    pub fn from_netlist(name: impl Into<String>, netlist: Netlist) -> Self {
        Self {
            name: name.into(),
            netlist,
            positions: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Converts the design back to Bookshelf file structures (the inverse
    /// of [`assemble`](Self::assemble)), scaling meters to site units.
    /// Layers are written through the 3D `.pl` extension.
    pub fn to_files(
        &self,
        options: DesignBuilderOptions,
    ) -> (
        crate::NodesFile,
        crate::NetsFile,
        crate::WtsFile,
        Option<crate::PlFile>,
    ) {
        let inv = 1.0 / options.meters_per_unit;
        let nodes = crate::NodesFile {
            nodes: self
                .netlist
                .cells()
                .iter()
                .map(|c| crate::NodeRecord {
                    name: c.name().to_string(),
                    width: c.width() * inv,
                    height: c.height() * inv,
                    terminal: !c.is_movable(),
                })
                .collect(),
        };
        let nets = crate::NetsFile {
            nets: self
                .netlist
                .iter_nets()
                .map(|(nid, n)| crate::NetRecord {
                    name: n.name().to_string(),
                    pins: self
                        .netlist
                        .net_pins(nid)
                        .iter()
                        .map(|&p| {
                            let pin = self.netlist.pin(p);
                            crate::NetPinRecord {
                                node: self.netlist.cell(pin.cell()).name().to_string(),
                                direction: Some(match pin.direction() {
                                    tvp_netlist::PinDirection::Output => {
                                        crate::PinDirectionHint::Output
                                    }
                                    tvp_netlist::PinDirection::Input => {
                                        crate::PinDirectionHint::Input
                                    }
                                }),
                                offset_x: pin.offset_x() * inv,
                                offset_y: pin.offset_y() * inv,
                            }
                        })
                        .collect(),
                })
                .collect(),
        };
        let wts = crate::WtsFile {
            records: self
                .netlist
                .nets()
                .iter()
                .map(|n| crate::WtsRecord {
                    name: n.name().to_string(),
                    weight: n.weight(),
                })
                .collect(),
        };
        let pl = (!self.positions.is_empty()).then(|| crate::PlFile {
            records: self
                .netlist
                .cells()
                .iter()
                .zip(&self.positions)
                .map(|(c, &(x, y, layer))| crate::PlRecord {
                    name: c.name().to_string(),
                    x: x * inv,
                    y: y * inv,
                    layer: Some(layer),
                    orient: "N".to_string(),
                    fixed: !c.is_movable(),
                })
                .collect(),
        });
        (nodes, nets, wts, pl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_nets, parse_nodes, parse_pl, parse_scl, parse_wts};

    fn sample() -> Design {
        let nodes =
            parse_nodes("NumNodes : 3\nNumTerminals : 1\n a 4 8\n b 2 8\n p 1 1 terminal\n")
                .unwrap();
        let nets = parse_nets(
            "NumNets : 2\nNumPins : 4\nNetDegree : 2 n0\n a O\n b I\nNetDegree : 2 n1\n b O\n p I\n",
        )
        .unwrap();
        let wts = parse_wts("n0 2\n").unwrap();
        let pl = parse_pl("a 0 0 : N\nb 4 0 : N\np 10 10 : N /FIXED\n").unwrap();
        let scl = parse_scl(
            "NumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 8\n SubrowOrigin : 0 NumSites : 20\nEnd\n",
        )
        .unwrap();
        Design::assemble(
            "sample",
            &nodes,
            &nets,
            Some(&wts),
            Some(&pl),
            Some(&scl),
            DesignBuilderOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn assembles_netlist_with_units() {
        let d = sample();
        assert_eq!(d.netlist.num_cells(), 3);
        assert_eq!(d.netlist.num_nets(), 2);
        let a = &d.netlist.cells()[0];
        assert!((a.width() - 4.0e-6).abs() < 1e-18);
        assert!(!d.netlist.cells()[2].is_movable());
    }

    #[test]
    fn maps_directions_and_weights() {
        let d = sample();
        let n0 = tvp_netlist::NetId::new(0);
        assert_eq!(
            d.netlist.net_driver_cell(n0),
            Some(tvp_netlist::CellId::new(0))
        );
        assert_eq!(d.netlist.net(n0).weight(), 2.0);
    }

    #[test]
    fn carries_positions_and_rows() {
        let d = sample();
        assert_eq!(d.positions.len(), 3);
        assert!((d.positions[1].0 - 4.0e-6).abs() < 1e-18);
        assert_eq!(d.rows.len(), 1);
        assert!((d.rows[0].3 - 20.0e-6).abs() < 1e-18);
    }

    #[test]
    fn to_files_round_trips_through_text() {
        let d = sample();
        let opts = DesignBuilderOptions::default();
        let (nodes, nets, wts, pl) = d.to_files(opts);
        let nodes2 = parse_nodes(&crate::write_nodes(&nodes)).unwrap();
        let nets2 = parse_nets(&crate::write_nets(&nets)).unwrap();
        let wts2 = parse_wts(&crate::write_wts(&wts)).unwrap();
        let pl2 = parse_pl(&crate::write_pl(&pl.unwrap())).unwrap();
        let d2 = Design::assemble(
            "sample2",
            &nodes2,
            &nets2,
            Some(&wts2),
            Some(&pl2),
            None,
            opts,
        )
        .unwrap();
        assert_eq!(d.netlist.num_cells(), d2.netlist.num_cells());
        assert_eq!(d.netlist.num_nets(), d2.netlist.num_nets());
        assert_eq!(d.netlist.num_pins(), d2.netlist.num_pins());
        for (a, b) in d.positions.iter().zip(&d2.positions) {
            assert!((a.0 - b.0).abs() < 1e-15);
            assert!((a.1 - b.1).abs() < 1e-15);
            assert_eq!(a.2, b.2);
        }
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let d = sample();
        let dir = std::env::temp_dir().join(format!("tvp_bs_{}", std::process::id()));
        let opts = DesignBuilderOptions::default();
        d.save(&dir, opts).unwrap();
        let loaded = Design::load(dir.join("sample.aux"), opts).unwrap();
        assert_eq!(loaded.name, "sample");
        assert_eq!(loaded.netlist.num_cells(), d.netlist.num_cells());
        assert_eq!(loaded.netlist.num_nets(), d.netlist.num_nets());
        assert_eq!(loaded.netlist.num_pins(), d.netlist.num_pins());
        for (a, b) in d.positions.iter().zip(&loaded.positions) {
            assert!((a.0 - b.0).abs() < 1e-15 && (a.1 - b.1).abs() < 1e-15);
            assert_eq!(a.2, b.2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_aux() {
        let err = Design::load("/nonexistent/x.aux", DesignBuilderOptions::default()).unwrap_err();
        assert!(matches!(err, LoadDesignError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_reports_missing_nodes_reference() {
        let dir = std::env::temp_dir().join(format!("tvp_bs_aux_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.aux"), "RowBasedPlacement : x.nets\n").unwrap();
        let err = Design::load(dir.join("x.aux"), DesignBuilderOptions::default()).unwrap_err();
        assert!(matches!(err, LoadDesignError::MissingFile("nodes")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permissive_load_admits_degenerate_dims_for_repair_tooling() {
        let nodes = parse_nodes("NumNodes : 2\nNumTerminals : 0\n a 0 0\n b 1 1\n").unwrap();
        let nets = parse_nets("NumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a O\n b I\n").unwrap();
        let opts = DesignBuilderOptions::default();
        let err = Design::assemble("x", &nodes, &nets, None, None, None, opts).unwrap_err();
        assert!(matches!(err, AssembleDesignError::Netlist(_)));

        let d = Design::assemble_permissive("x", &nodes, &nets, None, None, None, opts)
            .expect("permissive assembly admits zero-area cells");
        assert_eq!(d.netlist.num_cells(), 2);
        assert_eq!(d.netlist.cells()[0].width(), 0.0);

        // And the same contrast through the on-disk loader.
        let dir = std::env::temp_dir().join(format!("tvp_bs_perm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.aux"), "RowBasedPlacement : x.nodes x.nets\n").unwrap();
        std::fs::write(
            dir.join("x.nodes"),
            "NumNodes : 2\nNumTerminals : 0\n a 0 0\n b 1 1\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("x.nets"),
            "NumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a O\n b I\n",
        )
        .unwrap();
        assert!(Design::load(dir.join("x.aux"), opts).is_err());
        let loaded = Design::load_permissive(dir.join("x.aux"), opts).unwrap();
        assert_eq!(loaded.netlist.num_cells(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_netlist_wraps_without_positions() {
        let d = sample();
        let wrapped = Design::from_netlist("w", d.netlist.clone());
        assert_eq!(wrapped.name, "w");
        assert!(wrapped.positions.is_empty());
        assert!(wrapped.rows.is_empty());
    }

    #[test]
    fn unknown_node_in_nets_is_error() {
        let nodes = parse_nodes("NumNodes : 1\nNumTerminals : 0\n a 1 1\n").unwrap();
        let nets = parse_nets("NumNets : 1\nNumPins : 1\nNetDegree : 1 n0\n ghost I\n").unwrap();
        let err = Design::assemble(
            "x",
            &nodes,
            &nets,
            None,
            None,
            None,
            DesignBuilderOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, AssembleDesignError::UnknownNode(_)));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_output_pins_demoted() {
        let nodes = parse_nodes("NumNodes : 2\nNumTerminals : 0\n a 1 1\n b 1 1\n").unwrap();
        let nets = parse_nets("NumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a O\n b O\n").unwrap();
        let d = Design::assemble(
            "x",
            &nodes,
            &nets,
            None,
            None,
            None,
            DesignBuilderOptions::default(),
        )
        .unwrap();
        let net = d.netlist.net(tvp_netlist::NetId::new(0));
        assert_eq!(net.num_input_pins(), 1);
    }
}
