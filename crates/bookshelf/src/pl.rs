//! `.pl` files: node positions, with an optional 3D layer extension.
//!
//! The standard Bookshelf record is `name x y : ORIENT [/FIXED]`. For 3D
//! placements this crate writes and accepts an extended record with a third
//! coordinate — the layer index — before the colon: `name x y z : N`.

use crate::error::ParseBookshelfError;
use std::fmt::Write as _;

/// One record from a `.pl` file.
#[derive(Clone, PartialEq, Debug)]
pub struct PlRecord {
    /// Node name.
    pub name: String,
    /// X coordinate, site units.
    pub x: f64,
    /// Y coordinate, site units.
    pub y: f64,
    /// Layer index for 3D placements (`None` in standard 2D files).
    pub layer: Option<u32>,
    /// Orientation token (`N`, `S`, ... ). `N` when unspecified.
    pub orient: String,
    /// Whether the record carries the `/FIXED` attribute.
    pub fixed: bool,
}

/// Parsed contents of a `.pl` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PlFile {
    /// All placement records, in file order.
    pub records: Vec<PlRecord>,
}

/// Parses the text of a `.pl` file (2D or the 3D extension).
///
/// This materializes every record; large files are better consumed through
/// the zero-copy [`crate::stream::PlReader`] this wraps.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] for records with missing or non-numeric
/// coordinates or unknown trailing attributes.
pub fn parse_pl(text: &str) -> Result<PlFile, ParseBookshelfError> {
    let mut reader = crate::stream::PlReader::new(text);
    let mut records = Vec::new();
    while let Some(e) = reader.next_record()? {
        records.push(PlRecord {
            name: e.name.to_string(),
            x: e.x,
            y: e.y,
            layer: e.layer,
            orient: e.orient.to_string(),
            fixed: e.fixed,
        });
    }
    Ok(PlFile { records })
}

/// Renders a [`PlFile`] back to Bookshelf text.
///
/// Coordinates are written with Rust's default `f64` formatting, which
/// produces the shortest decimal string that parses back to the exact
/// same bits. `parse_pl(write_pl(f))` therefore restores every coordinate
/// *bitwise* — the property the placer's checkpoint/resume machinery
/// relies on for deterministic resumption.
pub fn write_pl(file: &PlFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA pl 1.0\n");
    for r in &file.records {
        let _ = write!(out, "{} {} {}", r.name, r.x, r.y);
        if let Some(layer) = r.layer {
            let _ = write!(out, " {layer}");
        }
        let _ = write!(out, " : {}", r.orient);
        if r.fixed {
            out.push_str(" /FIXED");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
UCLA pl 1.0
a1 12 24 : N
a2 -3 0.5 : FS /FIXED
";

    #[test]
    fn parses_2d() {
        let f = parse_pl(SAMPLE).unwrap();
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[0].x, 12.0);
        assert_eq!(f.records[0].layer, None);
        assert!(f.records[1].fixed);
        assert_eq!(f.records[1].orient, "FS");
    }

    #[test]
    fn parses_3d_extension() {
        let f = parse_pl("a 1 2 3 : N\n").unwrap();
        assert_eq!(f.records[0].layer, Some(3));
    }

    #[test]
    fn round_trips_2d_and_3d() {
        for text in [SAMPLE, "UCLA pl 1.0\na 1 2 3 : N\nb 4 5 0 : N /FIXED\n"] {
            let f = parse_pl(text).unwrap();
            assert_eq!(parse_pl(&write_pl(&f)).unwrap(), f);
        }
    }

    #[test]
    fn coordinates_round_trip_f64_bitwise() {
        // Awkward values with no short decimal representation: round-trip
        // must restore the exact bits, not an approximation.
        let values = [
            1.0 / 3.0,
            2.0f64.sqrt() * 1.0e-6,
            f64::MIN_POSITIVE,
            1.0e300,
            -7.3e-7,
            0.1 + 0.2,
        ];
        let f = PlFile {
            records: values
                .iter()
                .enumerate()
                .map(|(i, &v)| PlRecord {
                    name: format!("c{i}"),
                    x: v,
                    y: -v * 3.0,
                    layer: Some(i as u32),
                    orient: "N".to_string(),
                    fixed: false,
                })
                .collect(),
        };
        let back = parse_pl(&write_pl(&f)).unwrap();
        for (a, b) in f.records.iter().zip(&back.records) {
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "{}", a.name);
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "{}", a.name);
        }
    }

    #[test]
    fn colon_is_optional() {
        let f = parse_pl("a 1 2\n").unwrap();
        assert_eq!(f.records[0].orient, "N");
        assert!(!f.records[0].fixed);
    }

    #[test]
    fn bad_layer_is_error() {
        assert!(parse_pl("a 1 2 x : N\n").is_err());
    }

    #[test]
    fn bad_attribute_is_error() {
        assert!(parse_pl("a 1 2 : N /WEIRD\n").is_err());
    }
}
