//! `.nets` files: hyperedges with per-pin direction hints and offsets.

use crate::error::ParseBookshelfError;
use std::fmt::Write as _;

/// Direction marker on a net pin, as written in IBM-PLACE `.nets` files.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PinDirectionHint {
    /// `I`: the pin is an input of the cell (net sink).
    #[default]
    Input,
    /// `O`: the pin is an output of the cell (net driver).
    Output,
    /// `B`: bidirectional pin.
    Bidirectional,
}

impl PinDirectionHint {
    pub(crate) fn from_token(t: &str) -> Option<Self> {
        match t {
            "I" | "i" => Some(Self::Input),
            "O" | "o" => Some(Self::Output),
            "B" | "b" => Some(Self::Bidirectional),
            _ => None,
        }
    }

    fn as_token(self) -> &'static str {
        match self {
            Self::Input => "I",
            Self::Output => "O",
            Self::Bidirectional => "B",
        }
    }
}

/// One pin of a net record.
#[derive(Clone, PartialEq, Debug)]
pub struct NetPinRecord {
    /// Name of the node the pin belongs to.
    pub node: String,
    /// Direction marker, if present in the file.
    pub direction: Option<PinDirectionHint>,
    /// Pin x offset from the node center, site units (0 if unspecified).
    pub offset_x: f64,
    /// Pin y offset from the node center, site units (0 if unspecified).
    pub offset_y: f64,
}

/// One net record (`NetDegree : d name` plus `d` pin lines).
#[derive(Clone, PartialEq, Debug)]
pub struct NetRecord {
    /// Net name (IBM-PLACE numbers them `n0`, `n1`, ...).
    pub name: String,
    /// The net's pins, in file order.
    pub pins: Vec<NetPinRecord>,
}

/// Parsed contents of a `.nets` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetsFile {
    /// All net records, in file order.
    pub nets: Vec<NetRecord>,
}

impl NetsFile {
    /// Total number of pins across all nets.
    pub fn num_pins(&self) -> usize {
        self.nets.iter().map(|n| n.pins.len()).sum()
    }
}

/// Parses the text of a `.nets` file.
///
/// This materializes every record; large files are better consumed through
/// the zero-copy [`crate::stream::NetsReader`] this wraps.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] for missing/malformed counts, a
/// `NetDegree` that doesn't match the pin lines that follow, or malformed
/// pin lines. Pin lines accept the common IBM-PLACE variants:
/// `node`, `node I`, `node I : x y`.
pub fn parse_nets(text: &str) -> Result<NetsFile, ParseBookshelfError> {
    let mut reader = crate::stream::NetsReader::new(text)?;
    let mut nets: Vec<NetRecord> = Vec::with_capacity(reader.header().num_nets);
    while let Some(net) = reader.next_net()? {
        let name = net
            .name
            .map(str::to_string)
            .unwrap_or_else(|| format!("net{}", net.index));
        let mut pins = Vec::with_capacity(net.degree);
        for _ in 0..net.degree {
            let p = reader.next_pin()?;
            pins.push(NetPinRecord {
                node: p.node.to_string(),
                direction: p.direction,
                offset_x: p.offset_x,
                offset_y: p.offset_y,
            });
        }
        nets.push(NetRecord { name, pins });
    }
    Ok(NetsFile { nets })
}

/// Renders a [`NetsFile`] back to Bookshelf text.
pub fn write_nets(file: &NetsFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA nets 1.0\n");
    let _ = writeln!(out, "NumNets : {}", file.nets.len());
    let _ = writeln!(out, "NumPins : {}", file.num_pins());
    for net in &file.nets {
        let _ = writeln!(out, "NetDegree : {} {}", net.pins.len(), net.name);
        for pin in &net.pins {
            let _ = write!(out, "    {}", pin.node);
            if let Some(d) = pin.direction {
                let _ = write!(out, " {}", d.as_token());
            }
            if pin.offset_x != 0.0 || pin.offset_y != 0.0 {
                let _ = write!(out, " : {} {}", pin.offset_x, pin.offset_y);
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n0
    a1 O
    a2 I
    a3 I : 0.5 -1
NetDegree : 2 n1
    a3
    a1
";

    #[test]
    fn parses_sample() {
        let f = parse_nets(SAMPLE).unwrap();
        assert_eq!(f.nets.len(), 2);
        assert_eq!(f.num_pins(), 5);
        assert_eq!(f.nets[0].name, "n0");
        assert_eq!(f.nets[0].pins[0].direction, Some(PinDirectionHint::Output));
        assert_eq!(f.nets[0].pins[2].offset_x, 0.5);
        assert_eq!(f.nets[0].pins[2].offset_y, -1.0);
        assert_eq!(f.nets[1].pins[0].direction, None);
    }

    #[test]
    fn round_trips() {
        let f = parse_nets(SAMPLE).unwrap();
        let g = parse_nets(&write_nets(&f)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn degree_truncation_is_error() {
        let bad = "NumNets : 1\nNumPins : 3\nNetDegree : 3 n0\n a I\n b I\n";
        assert!(parse_nets(bad).is_err());
    }

    #[test]
    fn pin_count_mismatch_is_error() {
        let bad = "NumNets : 1\nNumPins : 9\nNetDegree : 2 n0\n a I\n b I\n";
        let err = parse_nets(bad).unwrap_err();
        assert!(err.to_string().contains("NumPins"));
    }

    #[test]
    fn unnamed_net_gets_default_name() {
        let text = "NumNets : 1\nNumPins : 2\nNetDegree : 2\n a\n b\n";
        let f = parse_nets(text).unwrap();
        assert_eq!(f.nets[0].name, "net0");
    }

    #[test]
    fn bad_direction_is_error() {
        let bad = "NumNets : 1\nNumPins : 1\nNetDegree : 1 n\n a X\n";
        let err = parse_nets(bad).unwrap_err();
        assert!(err.to_string().contains("direction"));
    }

    #[test]
    fn bidirectional_pins_parse() {
        let text = "NumNets : 1\nNumPins : 1\nNetDegree : 1 n\n a B\n";
        let f = parse_nets(text).unwrap();
        assert_eq!(
            f.nets[0].pins[0].direction,
            Some(PinDirectionHint::Bidirectional)
        );
    }
}
