//! `.nodes` files: cell names, dimensions, and terminal flags.

use crate::error::ParseBookshelfError;
use std::fmt::Write as _;

/// One record from a `.nodes` file.
#[derive(Clone, PartialEq, Debug)]
pub struct NodeRecord {
    /// Node (cell or terminal) name.
    pub name: String,
    /// Width in Bookshelf site units.
    pub width: f64,
    /// Height in Bookshelf site units.
    pub height: f64,
    /// Whether the node is a fixed terminal (pad or macro).
    pub terminal: bool,
}

/// Parsed contents of a `.nodes` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodesFile {
    /// All node records, in file order.
    pub nodes: Vec<NodeRecord>,
}

impl NodesFile {
    /// Number of terminal nodes.
    pub fn num_terminals(&self) -> usize {
        self.nodes.iter().filter(|n| n.terminal).count()
    }
}

/// Parses the text of a `.nodes` file.
///
/// This materializes every record; large files are better consumed through
/// the zero-copy [`crate::stream::NodesReader`] this wraps.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] when counts are missing or malformed, a
/// record has fewer than three fields, a dimension is not a number, or the
/// declared `NumNodes`/`NumTerminals` disagree with the records present.
pub fn parse_nodes(text: &str) -> Result<NodesFile, ParseBookshelfError> {
    let mut reader = crate::stream::NodesReader::new(text)?;
    let mut nodes = Vec::with_capacity(reader.header().num_nodes);
    while let Some(entry) = reader.next_node()? {
        nodes.push(NodeRecord {
            name: entry.name.to_string(),
            width: entry.width,
            height: entry.height,
            terminal: entry.terminal,
        });
    }
    Ok(NodesFile { nodes })
}

/// Renders a [`NodesFile`] back to Bookshelf text.
pub fn write_nodes(file: &NodesFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA nodes 1.0\n");
    let _ = writeln!(out, "NumNodes : {}", file.nodes.len());
    let _ = writeln!(out, "NumTerminals : {}", file.num_terminals());
    for n in &file.nodes {
        let _ = write!(out, "    {} {} {}", n.name, n.width, n.height);
        if n.terminal {
            out.push_str(" terminal");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
    a1 4 8
    a2 2 8
    p1 1 1 terminal
";

    #[test]
    fn parses_sample() {
        let f = parse_nodes(SAMPLE).unwrap();
        assert_eq!(f.nodes.len(), 3);
        assert_eq!(f.num_terminals(), 1);
        assert_eq!(f.nodes[0].name, "a1");
        assert_eq!(f.nodes[0].width, 4.0);
        assert!(f.nodes[2].terminal);
    }

    #[test]
    fn round_trips() {
        let f = parse_nodes(SAMPLE).unwrap();
        let text = write_nodes(&f);
        let g = parse_nodes(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn count_mismatch_is_error() {
        let bad = "NumNodes : 2\nNumTerminals : 0\n a 1 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert!(err.to_string().contains("NumNodes"));
    }

    #[test]
    fn terminal_count_mismatch_is_error() {
        let bad = "NumNodes : 1\nNumTerminals : 1\n a 1 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert!(err.to_string().contains("NumTerminals"));
    }

    #[test]
    fn bad_dimension_reports_line() {
        let bad = "NumNodes : 1\nNumTerminals : 0\n a x 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn unexpected_trailing_token_is_error() {
        let bad = "NumNodes : 1\nNumTerminals : 0\n a 1 1 bogus\n";
        assert!(parse_nodes(bad).is_err());
    }

    #[test]
    fn terminal_ni_accepted() {
        let ok = "NumNodes : 1\nNumTerminals : 1\n a 1 1 terminal_NI\n";
        let f = parse_nodes(ok).unwrap();
        assert!(f.nodes[0].terminal);
    }
}
