//! `.nodes` files: cell names, dimensions, and terminal flags.

use crate::error::ParseBookshelfError;
use crate::lexer::{parse_f64, Lines};
use std::fmt::Write as _;

/// One record from a `.nodes` file.
#[derive(Clone, PartialEq, Debug)]
pub struct NodeRecord {
    /// Node (cell or terminal) name.
    pub name: String,
    /// Width in Bookshelf site units.
    pub width: f64,
    /// Height in Bookshelf site units.
    pub height: f64,
    /// Whether the node is a fixed terminal (pad or macro).
    pub terminal: bool,
}

/// Parsed contents of a `.nodes` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodesFile {
    /// All node records, in file order.
    pub nodes: Vec<NodeRecord>,
}

impl NodesFile {
    /// Number of terminal nodes.
    pub fn num_terminals(&self) -> usize {
        self.nodes.iter().filter(|n| n.terminal).count()
    }
}

/// Parses the text of a `.nodes` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] when counts are missing or malformed, a
/// record has fewer than three fields, a dimension is not a number, or the
/// declared `NumNodes`/`NumTerminals` disagree with the records present.
pub fn parse_nodes(text: &str) -> Result<NodesFile, ParseBookshelfError> {
    const KIND: &str = "nodes";
    let mut lines = Lines::new(KIND, text);
    lines.skip_format_header();
    let num_nodes = lines.expect_count("NumNodes")?;
    let num_terminals = lines.expect_count("NumTerminals")?;
    let mut nodes = Vec::with_capacity(num_nodes);
    while let Some((no, line)) = lines.next_line() {
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| lines.error(no, "expected a node name"))?
            .to_string();
        let width = parse_f64(
            KIND,
            no,
            tokens
                .next()
                .ok_or_else(|| lines.error(no, "missing width"))?,
            "width",
        )?;
        let height = parse_f64(
            KIND,
            no,
            tokens
                .next()
                .ok_or_else(|| lines.error(no, "missing height"))?,
            "height",
        )?;
        let terminal = match tokens.next() {
            None => false,
            Some(t) if t.eq_ignore_ascii_case("terminal") => true,
            Some(t) if t.eq_ignore_ascii_case("terminal_NI") => true,
            Some(t) => return Err(lines.error(no, format!("unexpected token `{t}`"))),
        };
        nodes.push(NodeRecord {
            name,
            width,
            height,
            terminal,
        });
    }
    if nodes.len() != num_nodes {
        return Err(ParseBookshelfError::new(
            KIND,
            0,
            format!(
                "NumNodes says {num_nodes} but found {} records",
                nodes.len()
            ),
        ));
    }
    let terminals = nodes.iter().filter(|n| n.terminal).count();
    if terminals != num_terminals {
        return Err(ParseBookshelfError::new(
            KIND,
            0,
            format!("NumTerminals says {num_terminals} but found {terminals}"),
        ));
    }
    Ok(NodesFile { nodes })
}

/// Renders a [`NodesFile`] back to Bookshelf text.
pub fn write_nodes(file: &NodesFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA nodes 1.0\n");
    let _ = writeln!(out, "NumNodes : {}", file.nodes.len());
    let _ = writeln!(out, "NumTerminals : {}", file.num_terminals());
    for n in &file.nodes {
        let _ = write!(out, "    {} {} {}", n.name, n.width, n.height);
        if n.terminal {
            out.push_str(" terminal");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
    a1 4 8
    a2 2 8
    p1 1 1 terminal
";

    #[test]
    fn parses_sample() {
        let f = parse_nodes(SAMPLE).unwrap();
        assert_eq!(f.nodes.len(), 3);
        assert_eq!(f.num_terminals(), 1);
        assert_eq!(f.nodes[0].name, "a1");
        assert_eq!(f.nodes[0].width, 4.0);
        assert!(f.nodes[2].terminal);
    }

    #[test]
    fn round_trips() {
        let f = parse_nodes(SAMPLE).unwrap();
        let text = write_nodes(&f);
        let g = parse_nodes(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn count_mismatch_is_error() {
        let bad = "NumNodes : 2\nNumTerminals : 0\n a 1 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert!(err.to_string().contains("NumNodes"));
    }

    #[test]
    fn terminal_count_mismatch_is_error() {
        let bad = "NumNodes : 1\nNumTerminals : 1\n a 1 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert!(err.to_string().contains("NumTerminals"));
    }

    #[test]
    fn bad_dimension_reports_line() {
        let bad = "NumNodes : 1\nNumTerminals : 0\n a x 1\n";
        let err = parse_nodes(bad).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn unexpected_trailing_token_is_error() {
        let bad = "NumNodes : 1\nNumTerminals : 0\n a 1 1 bogus\n";
        assert!(parse_nodes(bad).is_err());
    }

    #[test]
    fn terminal_ni_accepted() {
        let ok = "NumNodes : 1\nNumTerminals : 1\n a 1 1 terminal_NI\n";
        let f = parse_nodes(ok).unwrap();
        assert!(f.nodes[0].terminal);
    }
}
