//! Synthetic IBM-PLACE-like benchmark generation.
//!
//! The original IBM-PLACE files are not redistributable, so experiments run
//! on synthetic circuits that reproduce each benchmark's *published*
//! statistics — cell count and total cell area from Table 1 of the DAC'07
//! paper — with hierarchical, Rent's-rule-like connectivity:
//!
//! * Net degrees follow `2 + Geometric(p)`, truncated, with `p` chosen to
//!   hit the configured average degree (IBM-PLACE averages ≈ 3.5–4.5).
//! * Net locality follows a power law: each net selects a window of
//!   consecutive cell indices whose size is `n · u^γ` for `u ~ U(0,1)`,
//!   so most nets are local and a heavy tail spans the whole design —
//!   the qualitative property Rent's rule implies and min-cut placement
//!   exploits.
//! * Each net's first pin is its driver; switching activities are drawn
//!   from a skewed distribution with mean ≈ 0.15.
//!
//! Generation is fully deterministic given [`SynthConfig::seed`].

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tvp_netlist::{BuildNetlistError, Netlist, NetlistBuilder, PinDirection};

/// Configuration for one synthetic benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct SynthConfig {
    /// Benchmark name (e.g. `ibm01`).
    pub name: String,
    /// Number of movable cells.
    pub num_cells: usize,
    /// Total cell area in square meters (Table 1 reports mm²).
    pub total_area_m2: f64,
    /// Nets per cell; IBM-PLACE designs have ≈ 0.94 nets per cell.
    pub nets_per_cell: f64,
    /// Target average net degree (pins per net).
    pub avg_net_degree: f64,
    /// Locality exponent γ: larger values make nets more local.
    pub locality_exponent: f64,
    /// RNG seed; equal configs generate identical netlists.
    pub seed: u64,
}

impl SynthConfig {
    /// Creates a config with the suite-typical connectivity defaults.
    pub fn named(name: impl Into<String>, num_cells: usize, total_area_m2: f64) -> Self {
        Self {
            name: name.into(),
            num_cells,
            total_area_m2,
            nets_per_cell: 0.94,
            avg_net_degree: 3.8,
            locality_exponent: 4.0,
            seed: 0xDAC_2007,
        }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the benchmark down (or up) while preserving its statistics.
    ///
    /// Cell count is multiplied by `factor` (minimum 16 cells) and the area
    /// shrinks proportionally so the average cell area — and therefore the
    /// process geometry — is unchanged.
    pub fn scaled(mut self, factor: f64) -> Self {
        let new_cells = ((self.num_cells as f64 * factor).round() as usize).max(16);
        self.total_area_m2 *= new_cells as f64 / self.num_cells as f64;
        self.num_cells = new_cells;
        self
    }

    /// Number of nets this config will generate.
    pub fn num_nets(&self) -> usize {
        ((self.num_cells as f64 * self.nets_per_cell).round() as usize).max(1)
    }
}

/// Table 1 of the paper: `(name, cells, area in mm²)` for ibm01–ibm18.
pub const IBM_TABLE1: [(&str, usize, f64); 18] = [
    ("ibm01", 12282, 0.060),
    ("ibm02", 19321, 0.086),
    ("ibm03", 22207, 0.090),
    ("ibm04", 26633, 0.122),
    ("ibm05", 29347, 0.150),
    ("ibm06", 32185, 0.117),
    ("ibm07", 45135, 0.197),
    ("ibm08", 50977, 0.214),
    ("ibm09", 51746, 0.221),
    ("ibm10", 67692, 0.377),
    ("ibm11", 68525, 0.287),
    ("ibm12", 69663, 0.415),
    ("ibm13", 81508, 0.326),
    ("ibm14", 146009, 0.680),
    ("ibm15", 158244, 0.634),
    ("ibm16", 182137, 0.892),
    ("ibm17", 183102, 1.040),
    ("ibm18", 210323, 0.988),
];

/// Builds configs for the full ibm01–ibm18 suite at the given scale factor
/// (`1.0` = published sizes; experiment binaries default to a reduced scale).
pub fn ibm_suite(scale: f64) -> Vec<SynthConfig> {
    IBM_TABLE1
        .iter()
        .map(|&(name, cells, area_mm2)| {
            SynthConfig::named(name, cells, area_mm2 * 1.0e-6).scaled(scale)
        })
        .collect()
}

/// Generates the synthetic netlist described by `config`.
///
/// # Errors
///
/// Returns [`BuildNetlistError`] only if the config is degenerate (e.g. a
/// non-positive total area leading to invalid cell sizes).
pub fn generate(config: &SynthConfig) -> Result<Netlist, BuildNetlistError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = config.num_cells;
    let num_nets = config.num_nets();
    let mut builder = NetlistBuilder::with_capacity(
        n,
        num_nets,
        (num_nets as f64 * config.avg_net_degree) as usize,
    );

    // Standard-cell geometry: fixed row height, widths uniform in
    // [h, 3h] so the mean width is 2h and mean area is 2h².
    let avg_area = config.total_area_m2 / n as f64;
    let height = (avg_area / 2.0).sqrt();
    let cells: Vec<_> = (0..n)
        .map(|i| {
            let width = height * rng.random_range(1.0..3.0);
            builder.add_cell(format!("c{i}"), width, height)
        })
        .collect();

    // Geometric net-degree tail tuned to the configured average.
    let extra_mean = (config.avg_net_degree - 2.0).max(0.0);
    let p = 1.0 / (1.0 + extra_mean);

    for i in 0..num_nets {
        let net = builder.add_net(format!("n{i}"));
        // Skewed activity with mean ≈ 0.15 (0.45·u² has mean 0.15).
        let activity: f64 = 0.45 * rng.random::<f64>().powi(2);
        builder.set_switching_activity(net, activity.clamp(0.0, 1.0))?;

        let mut degree = 2usize;
        while degree < 32 && rng.random::<f64>() > p {
            degree += 1;
        }
        let degree = degree.min(n);

        // Power-law window: most nets span few cells, a few span everything.
        let u: f64 = rng.random();
        let window =
            ((n as f64 * u.powf(config.locality_exponent)).ceil() as usize).clamp(degree, n);
        let start = rng.random_range(0..=(n - window));

        let mut chosen = Vec::with_capacity(degree);
        let mut guard = 0;
        while chosen.len() < degree && guard < 64 * degree {
            guard += 1;
            let c = start + rng.random_range(0..window);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        // Fall back to a dense scan if the window was tiny and collisions
        // exhausted the random attempts.
        if chosen.len() < degree {
            for c in start..start + window {
                if !chosen.contains(&c) {
                    chosen.push(c);
                    if chosen.len() == degree {
                        break;
                    }
                }
            }
        }

        for (j, &c) in chosen.iter().enumerate() {
            let dir = if j == 0 {
                PinDirection::Output
            } else {
                PinDirection::Input
            };
            // Duplicate (cell, net) pairs cannot happen: `chosen` is deduped.
            builder.connect(net, cells[c], dir)?;
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let cfg = SynthConfig::named("t", 300, 1.5e-9);
        let nl = generate(&cfg).unwrap();
        assert_eq!(nl.num_cells(), 300);
        assert_eq!(nl.num_nets(), cfg.num_nets());
        let area = nl.total_cell_area();
        assert!(
            (area - 1.5e-9).abs() < 0.25e-9,
            "area {area} should be near the target"
        );
    }

    #[test]
    fn is_deterministic_per_seed() {
        let cfg = SynthConfig::named("t", 200, 1e-9).with_seed(5);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a, b);
        let c = generate(&cfg.clone().with_seed(6)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn average_degree_near_target() {
        let cfg = SynthConfig::named("t", 2000, 1e-8);
        let nl = generate(&cfg).unwrap();
        let avg = nl.stats().avg_net_degree;
        assert!(
            (avg - cfg.avg_net_degree).abs() < 0.5,
            "avg degree {avg} should be near {}",
            cfg.avg_net_degree
        );
    }

    #[test]
    fn every_net_has_driver_and_two_pins() {
        let nl = generate(&SynthConfig::named("t", 500, 1e-9)).unwrap();
        for (_, net) in nl.iter_nets() {
            assert!(net.degree() >= 2);
            assert!(net.driver().is_some());
        }
    }

    #[test]
    fn locality_most_nets_are_short() {
        // With γ=4 most windows are a tiny fraction of the design: verify
        // that the median net index-span is much smaller than n.
        let n = 4000;
        let nl = generate(&SynthConfig::named("t", n, 1e-8)).unwrap();
        let mut spans: Vec<usize> = nl
            .iter_nets()
            .map(|(nid, _)| {
                let idx: Vec<usize> = nl
                    .net_pins(nid)
                    .iter()
                    .map(|&p| nl.pin(p).cell().index())
                    .collect();
                idx.iter().max().unwrap() - idx.iter().min().unwrap()
            })
            .collect();
        spans.sort_unstable();
        let median = spans[spans.len() / 2];
        assert!(
            median < n / 10,
            "median span {median} should be well below {n}"
        );
        // ...but the tail must contain genuinely global nets.
        assert!(*spans.last().unwrap() > n / 2);
    }

    #[test]
    fn suite_matches_table1() {
        let suite = ibm_suite(1.0);
        assert_eq!(suite.len(), 18);
        assert_eq!(suite[0].name, "ibm01");
        assert_eq!(suite[0].num_cells, 12282);
        assert!((suite[17].total_area_m2 - 0.988e-6).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_cell_area() {
        let cfg = SynthConfig::named("t", 10000, 1e-7);
        let scaled = cfg.clone().scaled(0.1);
        assert_eq!(scaled.num_cells, 1000);
        let avg_before = cfg.total_area_m2 / cfg.num_cells as f64;
        let avg_after = scaled.total_area_m2 / scaled.num_cells as f64;
        assert!((avg_before - avg_after).abs() < 1e-18);
    }

    #[test]
    fn scaling_floors_at_16_cells() {
        let cfg = SynthConfig::named("t", 100, 1e-9).scaled(0.001);
        assert_eq!(cfg.num_cells, 16);
    }
}
