//! `.aux` files: the benchmark manifest listing the other files.

use crate::error::ParseBookshelfError;

/// Parsed contents of a `.aux` file: a style tag and the referenced files.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuxFile {
    /// Style tag, typically `RowBasedPlacement`.
    pub style: String,
    /// Referenced file names, in the conventional order
    /// `.nodes .nets .wts .pl .scl`.
    pub files: Vec<String>,
}

impl AuxFile {
    /// Finds the referenced file with the given extension (e.g. `"nodes"`).
    pub fn file_with_extension(&self, ext: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|f| f.rsplit('.').next() == Some(ext))
            .map(String::as_str)
    }
}

/// Parses the text of a `.aux` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] if the file has no
/// `Style : file file ...` line.
pub fn parse_aux(text: &str) -> Result<AuxFile, ParseBookshelfError> {
    const KIND: &str = "aux";
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (style, rest) = line
            .split_once(':')
            .ok_or_else(|| ParseBookshelfError::new(KIND, i + 1, "expected `Style : files...`"))?;
        let files: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
        if files.is_empty() {
            return Err(ParseBookshelfError::new(KIND, i + 1, "no files listed"));
        }
        return Ok(AuxFile {
            style: style.trim().to_string(),
            files,
        });
    }
    Err(ParseBookshelfError::new(KIND, 0, "empty aux file"))
}

/// Renders an [`AuxFile`] back to text.
pub fn write_aux(file: &AuxFile) -> String {
    format!("{} : {}\n", file.style, file.files.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let text = "RowBasedPlacement : ibm01.nodes ibm01.nets ibm01.wts ibm01.pl ibm01.scl\n";
        let f = parse_aux(text).unwrap();
        assert_eq!(f.style, "RowBasedPlacement");
        assert_eq!(f.files.len(), 5);
        assert_eq!(f.file_with_extension("pl"), Some("ibm01.pl"));
        assert_eq!(f.file_with_extension("def"), None);
        assert_eq!(parse_aux(&write_aux(&f)).unwrap(), f);
    }

    #[test]
    fn empty_file_is_error() {
        assert!(parse_aux("# only comments\n").is_err());
    }

    #[test]
    fn missing_colon_is_error() {
        assert!(parse_aux("RowBasedPlacement ibm01.nodes\n").is_err());
    }
}
