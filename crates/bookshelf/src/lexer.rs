//! Line-oriented scanning shared by all Bookshelf parsers.
//!
//! Bookshelf files are line-based: `#` starts a comment, blank lines are
//! ignored, and the first significant line is a format header such as
//! `UCLA nodes 1.0`. [`Lines`] yields significant lines with their 1-based
//! line numbers; the helpers here parse the common `Key : value` headers.

use crate::error::ParseBookshelfError;

/// Iterator over significant (non-blank, non-comment) lines.
pub(crate) struct Lines<'a> {
    kind: &'static str,
    inner: std::iter::Peekable<LinesInner<'a>>,
}

struct LinesInner<'a> {
    raw: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Iterator for LinesInner<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<Self::Item> {
        for line in self.raw.by_ref() {
            self.line_no += 1;
            let stripped = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            };
            let trimmed = stripped.trim();
            if !trimmed.is_empty() {
                return Some((self.line_no, trimmed));
            }
        }
        None
    }
}

impl<'a> Lines<'a> {
    pub(crate) fn new(kind: &'static str, text: &'a str) -> Self {
        Self {
            kind,
            inner: LinesInner {
                raw: text.lines(),
                line_no: 0,
            }
            .peekable(),
        }
    }

    /// Next significant line, as `(line_number, text)`.
    pub(crate) fn next_line(&mut self) -> Option<(usize, &'a str)> {
        self.inner.next()
    }

    /// Peek at the next significant line without consuming it.
    pub(crate) fn peek(&mut self) -> Option<(usize, &'a str)> {
        self.inner.peek().copied()
    }

    /// Consumes the `UCLA <tag> <version>` header line.
    ///
    /// The header is conventional; some suites omit it, so a missing header
    /// is tolerated (the line is only consumed when it starts with "UCLA").
    pub(crate) fn skip_format_header(&mut self) {
        if let Some((_, line)) = self.peek() {
            if line.starts_with("UCLA") {
                self.next_line();
            }
        }
    }

    /// Parses a `Key : <integer>` line with the given key.
    pub(crate) fn expect_count(&mut self, key: &str) -> Result<usize, ParseBookshelfError> {
        let (no, line) = self.next_line().ok_or_else(|| {
            ParseBookshelfError::new(self.kind, 0, format!("missing `{key} : <count>` line"))
        })?;
        let (k, v) = split_key_value(line).ok_or_else(|| {
            ParseBookshelfError::new(
                self.kind,
                no,
                format!("expected `{key} : <count>`, got `{line}`"),
            )
        })?;
        if !k.eq_ignore_ascii_case(key) {
            return Err(ParseBookshelfError::new(
                self.kind,
                no,
                format!("expected `{key}`, got `{k}`"),
            ));
        }
        v.trim().parse().map_err(|_| {
            ParseBookshelfError::new(
                self.kind,
                no,
                format!("`{key}` value `{v}` is not an integer"),
            )
        })
    }

    /// Error constructor bound to this file kind.
    pub(crate) fn error(&self, line: usize, message: impl Into<String>) -> ParseBookshelfError {
        ParseBookshelfError::new(self.kind, line, message)
    }
}

/// Splits `Key : value`, returning trimmed key and value.
pub(crate) fn split_key_value(line: &str) -> Option<(&str, &str)> {
    let (k, v) = line.split_once(':')?;
    Some((k.trim(), v.trim()))
}

/// Parses one whitespace token as `f64`.
pub(crate) fn parse_f64(
    kind: &'static str,
    line_no: usize,
    token: &str,
    what: &str,
) -> Result<f64, ParseBookshelfError> {
    token.parse().map_err(|_| {
        ParseBookshelfError::new(kind, line_no, format!("{what} `{token}` is not a number"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header comment\n\nUCLA nodes 1.0\n  # indented comment\nNumNodes : 3\n";
        let mut lines = Lines::new("nodes", text);
        lines.skip_format_header();
        assert_eq!(lines.expect_count("NumNodes").unwrap(), 3);
        assert!(lines.next_line().is_none());
    }

    #[test]
    fn strips_trailing_comments() {
        let mut lines = Lines::new("nodes", "a 1 2 # trailing\n");
        assert_eq!(lines.next_line(), Some((1, "a 1 2")));
    }

    #[test]
    fn header_is_optional() {
        let mut lines = Lines::new("nodes", "NumNodes : 5\n");
        lines.skip_format_header();
        assert_eq!(lines.expect_count("NumNodes").unwrap(), 5);
    }

    #[test]
    fn count_errors_carry_line_numbers() {
        let mut lines = Lines::new("nodes", "UCLA nodes 1.0\nNumNodes : x\n");
        lines.skip_format_header();
        let err = lines.expect_count("NumNodes").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut lines = Lines::new("nets", "NumNodes : 4\n");
        let err = lines.expect_count("NumNets").unwrap_err();
        assert!(err.to_string().contains("NumNets"));
    }

    #[test]
    fn key_value_split() {
        assert_eq!(split_key_value("A : b c"), Some(("A", "b c")));
        assert_eq!(split_key_value("no colon"), None);
    }
}
