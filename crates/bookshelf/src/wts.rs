//! `.wts` files: net weights.

use crate::error::ParseBookshelfError;
use crate::lexer::{parse_f64, Lines};
use std::fmt::Write as _;

/// One record from a `.wts` file.
#[derive(Clone, PartialEq, Debug)]
pub struct WtsRecord {
    /// Net (or node, in some suites) name.
    pub name: String,
    /// Weight value.
    pub weight: f64,
}

/// Parsed contents of a `.wts` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WtsFile {
    /// All weight records, in file order.
    pub records: Vec<WtsRecord>,
}

/// Parses the text of a `.wts` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] for records without exactly a name and a
/// numeric weight.
pub fn parse_wts(text: &str) -> Result<WtsFile, ParseBookshelfError> {
    const KIND: &str = "wts";
    let mut lines = Lines::new(KIND, text);
    lines.skip_format_header();
    let mut records = Vec::new();
    while let Some((no, line)) = lines.next_line() {
        let mut tokens = line.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| lines.error(no, "expected a name"))?
            .to_string();
        let weight = parse_f64(
            KIND,
            no,
            tokens
                .next()
                .ok_or_else(|| lines.error(no, "missing weight"))?,
            "weight",
        )?;
        if let Some(t) = tokens.next() {
            return Err(lines.error(no, format!("unexpected token `{t}`")));
        }
        records.push(WtsRecord { name, weight });
    }
    Ok(WtsFile { records })
}

/// Renders a [`WtsFile`] back to Bookshelf text.
pub fn write_wts(file: &WtsFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA wts 1.0\n");
    for r in &file.records {
        let _ = writeln!(out, "{} {}", r.name, r.weight);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let text = "UCLA wts 1.0\nn0 1\nn1 2.5\n";
        let f = parse_wts(text).unwrap();
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[1].weight, 2.5);
        assert_eq!(parse_wts(&write_wts(&f)).unwrap(), f);
    }

    #[test]
    fn missing_weight_is_error() {
        assert!(parse_wts("n0\n").is_err());
    }

    #[test]
    fn extra_token_is_error() {
        assert!(parse_wts("n0 1 2\n").is_err());
    }
}
