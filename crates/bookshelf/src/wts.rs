//! `.wts` files: net weights.

use crate::error::ParseBookshelfError;
use std::fmt::Write as _;

/// One record from a `.wts` file.
#[derive(Clone, PartialEq, Debug)]
pub struct WtsRecord {
    /// Net (or node, in some suites) name.
    pub name: String,
    /// Weight value.
    pub weight: f64,
}

/// Parsed contents of a `.wts` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WtsFile {
    /// All weight records, in file order.
    pub records: Vec<WtsRecord>,
}

/// Parses the text of a `.wts` file.
///
/// This materializes every record; large files are better consumed through
/// the zero-copy [`crate::stream::WtsReader`] this wraps.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] for records without exactly a name and a
/// numeric weight.
pub fn parse_wts(text: &str) -> Result<WtsFile, ParseBookshelfError> {
    let mut reader = crate::stream::WtsReader::new(text);
    let mut records = Vec::new();
    while let Some(e) = reader.next_record()? {
        records.push(WtsRecord {
            name: e.name.to_string(),
            weight: e.weight,
        });
    }
    Ok(WtsFile { records })
}

/// Renders a [`WtsFile`] back to Bookshelf text.
pub fn write_wts(file: &WtsFile) -> String {
    let mut out = String::new();
    out.push_str("UCLA wts 1.0\n");
    for r in &file.records {
        let _ = writeln!(out, "{} {}", r.name, r.weight);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let text = "UCLA wts 1.0\nn0 1\nn1 2.5\n";
        let f = parse_wts(text).unwrap();
        assert_eq!(f.records.len(), 2);
        assert_eq!(f.records[1].weight, 2.5);
        assert_eq!(parse_wts(&write_wts(&f)).unwrap(), f);
    }

    #[test]
    fn missing_weight_is_error() {
        assert!(parse_wts("n0\n").is_err());
    }

    #[test]
    fn extra_token_is_error() {
        assert!(parse_wts("n0 1 2\n").is_err());
    }
}
