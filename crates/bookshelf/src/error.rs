//! Parse errors with file-kind and line context.

use std::error::Error;
use std::fmt;

/// Error produced while parsing a Bookshelf file.
///
/// Carries the file kind (e.g. `"nodes"`), the 1-based line number, and a
/// human-readable description of what was expected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseBookshelfError {
    kind: &'static str,
    line: usize,
    message: String,
}

impl ParseBookshelfError {
    pub(crate) fn new(kind: &'static str, line: usize, message: impl Into<String>) -> Self {
        Self {
            kind,
            line,
            message: message.into(),
        }
    }

    /// The file kind this error came from (`"nodes"`, `"nets"`, ...).
    pub fn file_kind(&self) -> &'static str {
        self.kind
    }

    /// 1-based line number of the offending record (0 for file-level errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseBookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{} file: {}", self.kind, self.message)
        } else {
            write!(
                f,
                "{} file, line {}: {}",
                self.kind, self.line, self.message
            )
        }
    }
}

impl Error for ParseBookshelfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseBookshelfError::new("nodes", 12, "expected a number");
        let s = e.to_string();
        assert!(s.contains("nodes"));
        assert!(s.contains("12"));
        assert!(s.contains("expected a number"));
        assert_eq!(e.file_kind(), "nodes");
        assert_eq!(e.line(), 12);
    }

    #[test]
    fn file_level_error_omits_line() {
        let e = ParseBookshelfError::new("aux", 0, "empty file");
        assert_eq!(e.to_string(), "aux file: empty file");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<ParseBookshelfError>();
    }
}
